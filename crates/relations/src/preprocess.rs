//! Stage 1 preprocessing (§6.1.3): coauthor-network projection, temporal
//! correlation measures, filter rules, advising-interval estimation and
//! local likelihoods.

use crate::RelError;
use lesm_corpus::synth::GenPaper;
use std::collections::HashMap;

/// Which measure defines the local likelihood `l_ij` (ablated in §6.1.6).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LocalLikelihood {
    /// Average Kulczynski over the advising interval.
    Kulczynski,
    /// Average imbalance ratio over the advising interval.
    ImbalanceRatio,
    /// Average of both (eq. 6.3).
    Average,
}

/// How the advising end year is estimated (§6.1.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum YearRule {
    /// The year the Kulczynski sequence starts to decrease.
    Year1,
    /// The year maximizing the before/after Kulczynski contrast.
    Year2,
    /// The earlier of YEAR1 and YEAR2.
    Year,
}

/// Configuration of the preprocessing stage.
#[derive(Debug, Clone)]
pub struct PreprocessConfig {
    /// Apply rule R1: reject if the imbalance ratio ever goes negative
    /// during the collaboration period.
    pub rule_ir: bool,
    /// Apply rule R2: reject if the Kulczynski sequence never increases.
    pub rule_kulc_increase: bool,
    /// Apply rule R3: reject single-year collaborations.
    pub rule_min_years: bool,
    /// Apply rule R4: reject unless the advisor published at least 2 years
    /// before the first collaboration.
    pub rule_head_start: bool,
    /// Minimum total co-publications for a pair to be considered at all.
    pub min_copubs: u32,
    /// Local-likelihood measure.
    pub likelihood: LocalLikelihood,
    /// Advising end-year estimator.
    pub year_rule: YearRule,
}

impl Default for PreprocessConfig {
    fn default() -> Self {
        Self {
            rule_ir: true,
            rule_kulc_increase: true,
            rule_min_years: true,
            rule_head_start: true,
            min_copubs: 2,
            likelihood: LocalLikelihood::Average,
            year_rule: YearRule::Year,
        }
    }
}

/// One candidate advisor for an author.
#[derive(Debug, Clone, PartialEq)]
pub struct Candidate {
    /// The potential advisor's id.
    pub advisor: u32,
    /// Estimated advising interval `[st, ed]`.
    pub interval: (i32, i32),
    /// Local likelihood `l_ij`.
    pub likelihood: f64,
    /// Feature vector for supervised methods: `[avg kulc, avg IR,
    /// collaboration years, total co-pubs (log), start-year gap]`.
    pub features: [f64; 5],
}

/// The candidate DAG `G'` (§6.1.3): per-author candidate advisor lists.
#[derive(Debug, Clone)]
pub struct CandidateGraph {
    /// `candidates[i]` — candidate advisors of author `i`, sorted by
    /// descending likelihood.
    pub candidates: Vec<Vec<Candidate>>,
    /// First publication year of every author (`i32::MAX` if none).
    pub first_year: Vec<i32>,
    /// Number of authors.
    pub n_authors: usize,
}

/// Per-pair yearly collaboration profile.
struct PairProfile {
    years: Vec<i32>,
    /// cumulative co-publications by the end of `years[t]`
    cum_pair: Vec<f64>,
    cum_a: Vec<f64>,
    cum_b: Vec<f64>,
}

impl CandidateGraph {
    /// Builds the candidate graph from paper records.
    pub fn build(
        papers: &[GenPaper],
        n_authors: usize,
        config: &PreprocessConfig,
    ) -> Result<Self, RelError> {
        if n_authors == 0 {
            return Err(RelError::InvalidConfig("need at least one author".into()));
        }
        // Per-author yearly publication counts and per-pair yearly co-counts.
        let mut per_author: Vec<HashMap<i32, f64>> = vec![HashMap::new(); n_authors];
        let mut per_pair: HashMap<(u32, u32), HashMap<i32, f64>> = HashMap::new();
        let mut first_year = vec![i32::MAX; n_authors];
        for p in papers {
            for &a in &p.authors {
                let a_us = a as usize;
                if a_us >= n_authors {
                    return Err(RelError::InvalidConfig(format!("author {a} out of range")));
                }
                *per_author[a_us].entry(p.year).or_insert(0.0) += 1.0;
                if p.year < first_year[a_us] {
                    first_year[a_us] = p.year;
                }
            }
            for (ai, &a) in p.authors.iter().enumerate() {
                for &b in &p.authors[ai + 1..] {
                    if a == b {
                        continue;
                    }
                    let key = if a < b { (a, b) } else { (b, a) };
                    *per_pair.entry(key).or_default().entry(p.year).or_insert(0.0) += 1.0;
                }
            }
        }
        let mut candidates: Vec<Vec<Candidate>> = vec![Vec::new(); n_authors];
        // Fix the pair order before emitting candidates: HashMap iteration
        // order varies per process, and the per-advisee candidate lists
        // (and their float features) must not inherit that arbitrariness.
        let mut pair_list: Vec<_> = per_pair.iter().map(|(&k, v)| (k, v)).collect();
        pair_list.sort_unstable_by_key(|&(k, _)| k);
        for &((a, b), pair_years) in &pair_list {
            let total: f64 = year_sum(pair_years);
            if (total as u32) < config.min_copubs {
                continue;
            }
            // Potential directions: x advised by y requires y publishing
            // strictly earlier (Assumption 6.2).
            for (advisee, advisor) in [(a, b), (b, a)] {
                if first_year[advisor as usize] >= first_year[advisee as usize] {
                    continue;
                }
                if let Some(c) =
                    evaluate_pair(advisee, advisor, pair_years, &per_author, &first_year, config)
                {
                    candidates[advisee as usize].push(c);
                }
            }
        }
        for list in &mut candidates {
            list.sort_by(|x, y| {
                y.likelihood.total_cmp(&x.likelihood).then_with(|| x.advisor.cmp(&y.advisor))
            });
        }
        if candidates.iter().all(Vec::is_empty) {
            return Err(RelError::NoCandidates);
        }
        Ok(Self { candidates, first_year, n_authors })
    }

    /// Verifies the candidate graph is a DAG (always true: every candidate
    /// edge points to an author with a strictly earlier first year).
    pub fn is_dag(&self) -> bool {
        self.candidates.iter().enumerate().all(|(i, list)| {
            list.iter().all(|c| self.first_year[c.advisor as usize] < self.first_year[i])
        })
    }

    /// Total number of candidate edges.
    pub fn num_edges(&self) -> usize {
        self.candidates.iter().map(Vec::len).sum()
    }
}

fn evaluate_pair(
    advisee: u32,
    advisor: u32,
    pair_years: &HashMap<i32, f64>,
    per_author: &[HashMap<i32, f64>],
    first_year: &[i32],
    config: &PreprocessConfig,
) -> Option<Candidate> {
    let profile = profile_pair(advisee, advisor, pair_years, per_author);
    let (&first, &last) = profile.years.first().zip(profile.years.last())?;
    // Years are raw user input (TSV), so spans and head starts are
    // computed in i64: `i32::MAX - i32::MIN` style extremes must degrade
    // to a rule decision, not an overflow panic.
    // Rule R3: single-year collaborations.
    let span = i64::from(last) - i64::from(first) + 1;
    if config.rule_min_years && span < 2 {
        return None;
    }
    // Rule R4: advisor head start before first collaboration.
    if config.rule_head_start && i64::from(first_year[advisor as usize]) + 2 > i64::from(first) {
        return None;
    }
    let kulc: Vec<f64> = (0..profile.years.len()).map(|t| kulc_at(&profile, t)).collect();
    let ir: Vec<f64> = (0..profile.years.len()).map(|t| ir_at(&profile, t)).collect();
    // Rule R1: negative imbalance during the collaboration period.
    if config.rule_ir && ir.iter().any(|&v| v < 0.0) {
        return None;
    }
    // Rule R2: Kulczynski must increase at least once.
    if config.rule_kulc_increase
        && kulc.len() >= 2
        && !kulc.windows(2).any(|w| w[1] > w[0] + 1e-12)
    {
        return None;
    }
    // Interval estimation.
    let st = profile.years[0];
    let ed_idx = end_index(&kulc, config.year_rule);
    let ed = profile.years[ed_idx].max(st.saturating_add(1));
    // Local likelihood over [st, ed].
    let in_range: Vec<usize> =
        (0..profile.years.len()).filter(|&t| profile.years[t] <= ed).collect();
    let avg = |xs: &[f64]| -> f64 {
        let v: Vec<f64> = in_range.iter().map(|&t| xs[t]).collect();
        if v.is_empty() {
            0.0
        } else {
            v.iter().sum::<f64>() / v.len() as f64
        }
    };
    let avg_kulc = avg(&kulc);
    let avg_ir = avg(&ir);
    let likelihood = match config.likelihood {
        LocalLikelihood::Kulczynski => avg_kulc,
        LocalLikelihood::ImbalanceRatio => avg_ir.max(0.0),
        LocalLikelihood::Average => (avg_kulc + avg_ir.max(0.0)) / 2.0,
    };
    let total_copubs: f64 = year_sum(pair_years);
    let gap =
        (i64::from(first_year[advisee as usize]) - i64::from(first_year[advisor as usize])) as f64;
    Some(Candidate {
        advisor,
        interval: (st, ed),
        likelihood,
        features: [avg_kulc, avg_ir, span as f64, total_copubs.ln_1p(), gap],
    })
}

fn profile_pair(
    advisee: u32,
    advisor: u32,
    pair_years: &HashMap<i32, f64>,
    per_author: &[HashMap<i32, f64>],
) -> PairProfile {
    let mut years: Vec<i32> = pair_years.keys().copied().collect();
    years.sort_unstable();
    let mut cum_pair = Vec::with_capacity(years.len());
    let mut cum_a = Vec::with_capacity(years.len());
    let mut cum_b = Vec::with_capacity(years.len());
    let (mut cp, mut ca, mut cb) = (0.0, 0.0, 0.0);
    let mut prev_year = i32::MIN;
    for &y in &years {
        cp += pair_years[&y];
        // Accumulate the authors' own publications over (prev_year, y].
        ca += range_sum(&per_author[advisee as usize], prev_year, y);
        cb += range_sum(&per_author[advisor as usize], prev_year, y);
        cum_pair.push(cp);
        cum_a.push(ca);
        cum_b.push(cb);
        prev_year = y;
    }
    PairProfile { years, cum_pair, cum_a, cum_b }
}

fn range_sum(counts: &HashMap<i32, f64>, after: i32, upto: i32) -> f64 {
    let mut entries: Vec<(i32, f64)> = counts.iter().map(|(&y, &c)| (y, c)).collect();
    entries.sort_unstable_by_key(|&(y, _)| y);
    entries.iter().filter(|&&(y, _)| y > after && y <= upto).map(|&(_, c)| c).sum()
}

/// Sum of a yearly-count map, accumulated in ascending year order so the
/// float result cannot depend on `HashMap` iteration order.
fn year_sum(counts: &HashMap<i32, f64>) -> f64 {
    let mut entries: Vec<(i32, f64)> = counts.iter().map(|(&y, &c)| (y, c)).collect();
    entries.sort_unstable_by_key(|&(y, _)| y);
    entries.iter().map(|&(_, c)| c).sum()
}

/// Kulczynski measure at time index `t` (eq. 6.1).
fn kulc_at(p: &PairProfile, t: usize) -> f64 {
    let cp = p.cum_pair[t];
    let (ca, cb) = (p.cum_a[t].max(1.0), p.cum_b[t].max(1.0));
    0.5 * cp * (1.0 / ca + 1.0 / cb)
}

/// Imbalance ratio at time index `t` (eq. 6.2).
fn ir_at(p: &PairProfile, t: usize) -> f64 {
    let cp = p.cum_pair[t];
    let (ca, cb) = (p.cum_a[t], p.cum_b[t]);
    let denom = ca + cb - cp;
    if denom <= 0.0 {
        0.0
    } else {
        (cb - ca) / denom
    }
}

/// Index of the estimated advising end year within the Kulczynski sequence.
fn end_index(kulc: &[f64], rule: YearRule) -> usize {
    let n = kulc.len();
    if n <= 1 {
        return 0;
    }
    let year1 = || -> usize {
        // First decrease after the peak so far.
        for t in 1..n {
            if kulc[t] < kulc[t - 1] - 1e-12 {
                return t - 1;
            }
        }
        n - 1
    };
    let year2 = || -> usize {
        // Split maximizing mean(before) - mean(after).
        let mut best = n - 1;
        let mut best_diff = f64::NEG_INFINITY;
        for split in 0..n - 1 {
            let before: f64 = kulc[..=split].iter().sum::<f64>() / (split + 1) as f64;
            let after: f64 = kulc[split + 1..].iter().sum::<f64>() / (n - split - 1) as f64;
            let diff = before - after;
            if diff > best_diff {
                best_diff = diff;
                best = split;
            }
        }
        best
    };
    match rule {
        YearRule::Year1 => year1(),
        YearRule::Year2 => year2(),
        YearRule::Year => year1().min(year2()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lesm_corpus::synth::{Genealogy, GenealogyConfig};

    fn papers_for(pairs: &[(i32, Vec<u32>)]) -> Vec<GenPaper> {
        pairs.iter().map(|(y, a)| GenPaper { year: *y, authors: a.clone() }).collect()
    }

    /// Author 1 starts 1990 (advisor-like), author 0 starts 2000 and
    /// co-publishes with 1 at rising rate 2000-2003.
    fn advising_papers() -> Vec<GenPaper> {
        let mut p = Vec::new();
        for y in 1990..2005 {
            p.push(GenPaper { year: y, authors: vec![1] });
            p.push(GenPaper { year: y, authors: vec![1] });
        }
        for (y, n) in [(2000, 1), (2001, 2), (2002, 3), (2003, 3)] {
            for _ in 0..n {
                p.push(GenPaper { year: y, authors: vec![0, 1] });
            }
            p.push(GenPaper { year: y, authors: vec![0] });
        }
        p
    }

    #[test]
    fn builds_candidate_in_correct_direction() {
        let g = CandidateGraph::build(&advising_papers(), 2, &PreprocessConfig::default()).unwrap();
        assert!(g.is_dag());
        assert_eq!(g.candidates[1].len(), 0, "senior author has no candidates");
        assert_eq!(g.candidates[0].len(), 1);
        let c = &g.candidates[0][0];
        assert_eq!(c.advisor, 1);
        assert_eq!(c.interval.0, 2000);
        assert!(c.likelihood > 0.0);
    }

    #[test]
    fn rule_r4_rejects_simultaneous_starters() {
        // Advisor-like author starts only 1 year before collaborating.
        let p = papers_for(&[
            (1999, vec![1]),
            (2000, vec![0, 1]),
            (2001, vec![0, 1]),
            (2002, vec![0, 1]),
        ]);
        let r = CandidateGraph::build(&p, 2, &PreprocessConfig::default());
        assert!(matches!(r, Err(RelError::NoCandidates)));
        // Relaxing R4 admits the pair.
        let relaxed = PreprocessConfig { rule_head_start: false, ..Default::default() };
        let g = CandidateGraph::build(&p, 2, &relaxed).unwrap();
        assert_eq!(g.candidates[0].len(), 1);
    }

    #[test]
    fn rule_r3_rejects_single_year() {
        let p = papers_for(&[
            (1990, vec![1]),
            (1991, vec![1]),
            (2000, vec![0, 1]),
            (2000, vec![0, 1]),
        ]);
        let r = CandidateGraph::build(&p, 2, &PreprocessConfig::default());
        assert!(matches!(r, Err(RelError::NoCandidates)));
    }

    #[test]
    fn rule_r1_rejects_inverted_imbalance() {
        // "Advisor" publishes once; advisee out-publishes massively.
        let mut p = vec![GenPaper { year: 1990, authors: vec![1] }];
        for y in 2000..2004 {
            p.push(GenPaper { year: y, authors: vec![0, 1] });
            for _ in 0..10 {
                p.push(GenPaper { year: y, authors: vec![0] });
            }
        }
        let strict = PreprocessConfig::default();
        assert!(matches!(CandidateGraph::build(&p, 2, &strict), Err(RelError::NoCandidates)));
    }

    #[test]
    fn interval_estimation_detects_graduation() {
        // Collaboration peaks 2000-2003 then trails off 2004-2006.
        let mut p = Vec::new();
        for y in 1990..2008 {
            p.push(GenPaper { year: y, authors: vec![1] });
            p.push(GenPaper { year: y, authors: vec![1] });
        }
        for (y, n) in [(2000, 1), (2001, 2), (2002, 3), (2003, 3), (2004, 1), (2006, 1)] {
            for _ in 0..n {
                p.push(GenPaper { year: y, authors: vec![0, 1] });
            }
            p.push(GenPaper { year: y, authors: vec![0] });
        }
        let g = CandidateGraph::build(&p, 2, &PreprocessConfig::default()).unwrap();
        let c = &g.candidates[0][0];
        assert!(c.interval.1 >= 2002 && c.interval.1 <= 2004, "ed = {}", c.interval.1);
    }

    #[test]
    fn synthetic_genealogy_keeps_most_true_edges() {
        let gen = Genealogy::generate(&GenealogyConfig {
            n_authors: 120,
            ..GenealogyConfig::default()
        })
        .unwrap();
        let g = CandidateGraph::build(&gen.papers, gen.n_authors, &PreprocessConfig::default())
            .unwrap();
        assert!(g.is_dag());
        let mut kept = 0usize;
        let mut total = 0usize;
        for (i, adv) in gen.advisor.iter().enumerate() {
            if let Some(a) = adv {
                total += 1;
                if g.candidates[i].iter().any(|c| c.advisor == *a) {
                    kept += 1;
                }
            }
        }
        let recall = kept as f64 / total as f64;
        assert!(recall > 0.8, "candidate recall too low: {recall:.3} ({kept}/{total})");
    }
}
