//! Property-based tests for relation-mining invariants.

use lesm_corpus::synth::{Genealogy, GenealogyConfig};
use lesm_relations::preprocess::{CandidateGraph, PreprocessConfig};
use lesm_relations::tpfg::{Tpfg, TpfgConfig};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn candidate_graph_is_always_a_dag(n in 20usize..80, seed in 0u64..100) {
        let gen = Genealogy::generate(&GenealogyConfig {
            n_authors: n,
            seed,
            ..GenealogyConfig::default()
        }).unwrap();
        if let Ok(g) = CandidateGraph::build(&gen.papers, gen.n_authors, &PreprocessConfig::default()) {
            prop_assert!(g.is_dag());
            // Candidates are sorted by descending likelihood.
            for cands in &g.candidates {
                for w in cands.windows(2) {
                    prop_assert!(w[0].likelihood >= w[1].likelihood);
                }
                for c in cands {
                    prop_assert!(c.likelihood.is_finite());
                    prop_assert!(c.interval.0 <= c.interval.1);
                }
            }
        }
    }

    #[test]
    fn relaxing_rules_never_shrinks_the_candidate_set(n in 20usize..60, seed in 0u64..50) {
        let gen = Genealogy::generate(&GenealogyConfig {
            n_authors: n,
            seed,
            ..GenealogyConfig::default()
        }).unwrap();
        let strict = CandidateGraph::build(&gen.papers, gen.n_authors, &PreprocessConfig::default());
        let relaxed_cfg = PreprocessConfig {
            rule_ir: false,
            rule_kulc_increase: false,
            rule_min_years: false,
            rule_head_start: false,
            ..PreprocessConfig::default()
        };
        let relaxed = CandidateGraph::build(&gen.papers, gen.n_authors, &relaxed_cfg);
        if let (Ok(s), Ok(r)) = (strict, relaxed) {
            prop_assert!(r.num_edges() >= s.num_edges());
            // Every strict candidate survives relaxation.
            for (i, cands) in s.candidates.iter().enumerate() {
                for c in cands {
                    prop_assert!(
                        r.candidates[i].iter().any(|rc| rc.advisor == c.advisor),
                        "strict candidate lost under relaxation"
                    );
                }
            }
        }
    }

    #[test]
    fn tpfg_beliefs_are_probabilities(n in 30usize..80, seed in 0u64..50, damping in 0.0f64..0.8) {
        let gen = Genealogy::generate(&GenealogyConfig {
            n_authors: n,
            seed,
            ..GenealogyConfig::default()
        }).unwrap();
        let Ok(g) = CandidateGraph::build(&gen.papers, gen.n_authors, &PreprocessConfig::default()) else {
            return Ok(());
        };
        let r = Tpfg::infer(&g, &TpfgConfig { damping, ..TpfgConfig::default() }).unwrap();
        for i in 0..g.n_authors {
            if g.candidates[i].is_empty() {
                continue;
            }
            let s: f64 = r.ranking[i].iter().map(|&(_, p)| p).sum::<f64>() + r.root_prob[i];
            prop_assert!((s - 1.0).abs() < 1e-6);
            for &(_, p) in &r.ranking[i] {
                prop_assert!((0.0..=1.0 + 1e-9).contains(&p));
            }
            // Rankings sorted descending.
            for w in r.ranking[i].windows(2) {
                prop_assert!(w[0].1 >= w[1].1 - 1e-12);
            }
        }
    }

    #[test]
    fn stricter_thresholds_predict_fewer_advisors(n in 40usize..80, seed in 0u64..30) {
        let gen = Genealogy::generate(&GenealogyConfig {
            n_authors: n,
            seed,
            ..GenealogyConfig::default()
        }).unwrap();
        let Ok(g) = CandidateGraph::build(&gen.papers, gen.n_authors, &PreprocessConfig::default()) else {
            return Ok(());
        };
        let r = Tpfg::infer(&g, &TpfgConfig::default()).unwrap();
        let loose = r.predict(3, 0.1);
        let strict = r.predict(3, 0.6);
        let count = |p: &Vec<Option<u32>>| p.iter().filter(|x| x.is_some()).count();
        prop_assert!(count(&strict) <= count(&loose));
        // Every strict prediction also appears in the loose set.
        for (s, l) in strict.iter().zip(&loose) {
            if s.is_some() {
                prop_assert_eq!(s, l);
            }
        }
    }
}
