//! The full adversarial matrix (ISSUE 4 acceptance: >= 256 cases across
//! the mine → export → snapshot → load → serve/search chain, zero panics,
//! zero non-finite emitted floats, only typed errors).

use lesm_fuzz::{
    run_batch, run_case, run_cli_arg_cases, run_nonfinite_snapshot_cases, run_server_case,
    run_tsv_cases, CaseOutcome, NUM_CASES, NUM_CONFIGS,
};

#[test]
#[allow(clippy::assertions_on_constants)] // NUM_CASES is the documented acceptance floor
fn full_case_matrix_holds_the_contract() {
    assert!(NUM_CASES >= 256, "the matrix must cover at least 256 cases, has {NUM_CASES}");
    let (completed, typed, failures) = run_batch(0..NUM_CASES);
    assert!(
        failures.is_empty(),
        "{} of {NUM_CASES} adversarial cases violated the contract:\n{}",
        failures.len(),
        failures.iter().map(|f| format!("  {f}")).collect::<Vec<_>>().join("\n")
    );
    assert_eq!(completed + typed, NUM_CASES);
    // The matrix must actually exercise both outcomes: plenty of corpora
    // mine fine, and at least the auto-k-empty-range column errors.
    assert!(completed > 0, "no case completed — the generator is broken");
    assert!(typed > 0, "no case produced a typed error — the matrix lost its error column");
}

#[test]
fn snapshots_round_trip_nonfinite_bits() {
    let failures = run_nonfinite_snapshot_cases();
    assert!(
        failures.is_empty(),
        "non-finite snapshot round-trips failed:\n{}",
        failures.iter().map(|f| format!("  {f}")).collect::<Vec<_>>().join("\n")
    );
}

#[test]
fn cli_parser_never_panics_on_hostile_args() {
    let failures = run_cli_arg_cases();
    assert!(
        failures.is_empty(),
        "CLI parsing panicked:\n{}",
        failures.iter().map(|f| format!("  {f}")).collect::<Vec<_>>().join("\n")
    );
}

#[test]
fn tsv_loader_never_panics_on_hostile_input() {
    let failures = run_tsv_cases();
    assert!(
        failures.is_empty(),
        "TSV loading panicked:\n{}",
        failures.iter().map(|f| format!("  {f}")).collect::<Vec<_>>().join("\n")
    );
}

/// One server case per corpus shape (the config column is fixed to the
/// default mutation): mine → snapshot → serve → hostile requests.
#[test]
fn served_snapshots_answer_hostile_requests() {
    let mut served = 0;
    for shape in 0..lesm_fuzz::NUM_SHAPES {
        let id = shape * NUM_CONFIGS; // config 0 = default
        match run_server_case(id) {
            Ok(responses) => {
                if responses.is_empty() {
                    continue; // typed mine error — nothing to serve
                }
                served += 1;
                for resp in &responses {
                    assert!(resp.starts_with("HTTP/1.1 "), "malformed response: {resp:?}");
                }
            }
            Err(f) => panic!("server case failed: {f}"),
        }
    }
    assert!(served > 0, "no shape produced a servable snapshot");
}

/// Valid, well-clustered input must still complete end-to-end (the
/// harness is not allowed to pass by rejecting everything).
#[test]
fn healthy_input_completes() {
    // shape 14 (two-communities) with config 0 (default).
    let id = 14 * NUM_CONFIGS;
    match run_case(id) {
        Ok(CaseOutcome::Completed) => {}
        other => panic!("two-communities/default should complete, got {other:?}"),
    }
}

#[test]
fn query_engine_never_panics_on_hostile_programs() {
    let failures = lesm_fuzz::run_query_cases();
    assert!(
        failures.is_empty(),
        "hostile query programs violated the contract:\n{}",
        failures.iter().map(|f| format!("  {f}")).collect::<Vec<_>>().join("\n")
    );
}

/// Hostile delta TSVs through the full `update → snapshot → serve` chain
/// (incremental mining, DESIGN.md §15): no panics, typed errors only, and
/// any produced artifact loads with its lineage intact and serves.
#[test]
fn incremental_update_chain_holds_the_contract() {
    let failures = lesm_fuzz::run_update_cases();
    assert!(
        failures.is_empty(),
        "hostile deltas violated the update contract:\n{}",
        failures.iter().map(|f| format!("  {f}")).collect::<Vec<_>>().join("\n")
    );
}

#[test]
fn advisors_path_never_panics() {
    let failures = lesm_fuzz::run_advisors_cases();
    assert!(
        failures.is_empty(),
        "advisors mining panicked:\n{}",
        failures.iter().map(|f| format!("  {f}")).collect::<Vec<_>>().join("\n")
    );
}
