//! Deterministic adversarial input generators.
//!
//! Every case is addressed by a plain integer id: `case(id)` maps it to a
//! (corpus shape, miner config) pair via `id = shape * NUM_CONFIGS + cfg`.
//! Nothing here draws randomness — the same id always produces the same
//! hostile input, so a failing case number is a complete reproducer.

use lesm_core::pipeline::MinerConfig;
use lesm_corpus::Corpus;
use lesm_hier::em::{EmConfig, WeightMode};
use lesm_hier::hierarchy::{CathyConfig, ChildCount};

/// Number of adversarial corpus shapes.
pub const NUM_SHAPES: usize = 16;
/// Number of adversarial config mutations.
pub const NUM_CONFIGS: usize = 18;
/// Total distinct `(shape, config)` cases.
pub const NUM_CASES: usize = NUM_SHAPES * NUM_CONFIGS;

/// One fully specified adversarial case.
pub struct Case {
    /// Human-readable reproducer label, e.g. `one-word-vocab/k-exceeds-nodes`.
    pub label: String,
    /// The hostile corpus.
    pub corpus: Corpus,
    /// The (possibly hostile) miner configuration.
    pub config: MinerConfig,
}

/// Builds the adversarial case for `id` (wraps modulo [`NUM_CASES`]).
pub fn case(id: usize) -> Case {
    let id = id % NUM_CASES;
    let (shape, cfg) = (id / NUM_CONFIGS, id % NUM_CONFIGS);
    let (corpus_label, corpus) = corpus_shape(shape);
    let (config_label, config) = config_mutation(cfg);
    Case { label: format!("{corpus_label}/{config_label}"), corpus, config }
}

/// The adversarial corpus shapes. Each targets an assumption somewhere in
/// the chain: non-empty corpora, multi-word vocabularies, distinct
/// documents, segmentable text, present entity types, sane years.
pub fn corpus_shape(shape: usize) -> (&'static str, Corpus) {
    let mut c = Corpus::new();
    match shape % NUM_SHAPES {
        0 => ("empty-corpus", c),
        1 => {
            c.push_text("");
            ("single-empty-doc", c)
        }
        2 => {
            c.push_text("solitary");
            ("single-one-word-doc", c)
        }
        3 => {
            for _ in 0..8 {
                c.push_text("word word word");
            }
            ("one-word-vocab", c)
        }
        4 => {
            for _ in 0..10 {
                c.push_text("alpha beta gamma");
            }
            ("all-duplicate-docs", c)
        }
        5 => {
            c.push_text("left side tokens");
            c.push_text("right half words");
            ("two-disjoint-docs", c)
        }
        6 => {
            let long: String = (0..40).map(|i| format!("tok{} ", i % 7)).collect();
            c.push_text(&long);
            ("single-long-doc", c)
        }
        7 => {
            for i in 0..6 {
                c.push_text(&format!("pair{} tail{}", i, i));
            }
            ("two-token-docs", c)
        }
        8 => {
            let author = c.entities.add_type("author");
            for i in 0..6 {
                let d = c.push_text("");
                let _ = c.link_entity(d, author, &format!("auth{}", i % 2));
            }
            ("entities-without-text", c)
        }
        9 => {
            let author = c.entities.add_type("author");
            let venue = c.entities.add_type("venue");
            for i in 0..10 {
                let d = c.push_text(if i % 2 == 0 {
                    "query database index"
                } else {
                    "ranking retrieval search"
                });
                let _ = c.link_entity(d, author, if i % 2 == 0 { "alice" } else { "bob" });
                let _ = c.link_entity(d, venue, "vldb");
                c.docs[d].year = Some(2000 + i);
            }
            ("two-type-entities", c)
        }
        10 => {
            let author = c.entities.add_type("author");
            for _ in 0..4 {
                let d = c.push_text("brace { quote \" backslash \\ tab \t");
                let _ = c.link_entity(d, author, "{\"}\\\u{1}");
            }
            ("hostile-strings", c)
        }
        11 => {
            let author = c.entities.add_type("author");
            for i in 0..12 {
                let d = c.push_text(if i < 6 { "data mining graphs" } else { "neural nets layers" });
                let _ = c.link_entity(d, author, "hub");
                c.docs[d].year = Some(1990 + i);
            }
            ("single-author-hub", c)
        }
        12 => {
            // Extreme years on a *collaborating* pair, so TPFG's year
            // arithmetic (spans, head starts) actually runs over them.
            let author = c.entities.add_type("author");
            for (i, year) in
                [i32::MIN, i32::MIN + 1, -1, 0, 9999, i32::MAX - 1, i32::MAX].into_iter().enumerate()
            {
                let d = c.push_text("chrono stamp words");
                let _ = c.link_entity(d, author, "elder");
                let _ = c.link_entity(d, author, &format!("pupil{}", i % 2));
                c.docs[d].year = Some(year);
            }
            ("extreme-years", c)
        }
        13 => {
            for i in 0..30 {
                c.push_text(if i % 2 == 0 { "ping" } else { "pong" });
            }
            ("many-docs-two-words", c)
        }
        14 => {
            let author = c.entities.add_type("author");
            for i in 0..20 {
                let d = c.push_text(if i % 2 == 0 {
                    "storage engine commit log buffer"
                } else {
                    "relevance feedback ranking query terms"
                });
                let _ = c.link_entity(d, author, if i % 2 == 0 { "sys" } else { "ir" });
                c.docs[d].year = Some(2005 + (i % 4));
            }
            ("two-communities", c)
        }
        _ => {
            c.push_text("echo echo echo echo echo echo echo echo");
            ("one-doc-repeated-token", c)
        }
    }
}

/// A fast base config the mutations perturb: tiny EM budgets keep 250+
/// cases cheap while still exercising every stage.
fn base_config() -> MinerConfig {
    MinerConfig {
        hierarchy: CathyConfig {
            children: ChildCount::Fixed(2),
            max_depth: 2,
            em: EmConfig {
                iters: 12,
                restarts: 2,
                seed: 7,
                background: true,
                weights: WeightMode::Learned,
                ..EmConfig::default()
            },
            min_links: 4,
            subnet_threshold: 0.5,
        },
        phrase_min_support: 2,
        phrase_max_len: 4,
        seg_alpha: 2.0,
        phrases_per_topic: 10,
        entities_per_topic: 10,
        min_topic_freq: 1.0,
        threads: 1,
        em_tol: 0.0,
    }
}

/// The adversarial config mutations. Each targets a user-controlled knob
/// the CLI exposes (`--k`, `--depth`, `--em-tol`, `--threads`) or an
/// internal bound the paper's algorithms assume.
pub fn config_mutation(cfg: usize) -> (&'static str, MinerConfig) {
    let mut m = base_config();
    match cfg % NUM_CONFIGS {
        0 => ("default", m),
        1 => {
            m.hierarchy.children = ChildCount::Fixed(1);
            ("k-one", m)
        }
        2 => {
            m.hierarchy.children = ChildCount::Fixed(9);
            m.hierarchy.min_links = 0;
            ("k-exceeds-nodes", m)
        }
        3 => {
            m.hierarchy.children = ChildCount::Fixed(33);
            m.hierarchy.min_links = 1;
            ("k-far-exceeds-nodes", m)
        }
        4 => {
            m.hierarchy.max_depth = 1;
            m.phrases_per_topic = 0;
            m.entities_per_topic = 0;
            ("depth-one-zero-top-n", m)
        }
        5 => {
            m.hierarchy.max_depth = 6;
            ("depth-exceeds-splittable", m)
        }
        6 => {
            m.hierarchy.min_links = 0;
            m.hierarchy.max_depth = 3;
            ("min-links-zero", m)
        }
        7 => {
            m.phrase_min_support = 0;
            ("zero-min-support", m)
        }
        8 => {
            m.phrase_max_len = 1;
            ("phrase-max-len-one", m)
        }
        9 => {
            m.phrase_max_len = 64;
            m.phrase_min_support = 1;
            ("phrase-longer-than-docs", m)
        }
        10 => {
            m.min_topic_freq = 0.0;
            ("zero-min-topic-freq", m)
        }
        11 => {
            m.seg_alpha = -5.0;
            ("negative-seg-alpha", m)
        }
        12 => {
            m.seg_alpha = f64::MAX;
            ("huge-seg-alpha", m)
        }
        13 => {
            m.em_tol = 1e30;
            ("immediate-em-exit", m)
        }
        14 => {
            m.threads = 3;
            ("three-threads", m)
        }
        15 => {
            m.hierarchy.em.iters = 0;
            m.hierarchy.em.restarts = 0;
            ("zero-em-budget", m)
        }
        16 => {
            m.hierarchy.children = ChildCount::Auto { min: 3, max: 2 };
            ("auto-k-empty-range", m)
        }
        _ => {
            m.hierarchy.em.background = false;
            m.hierarchy.em.weights = WeightMode::Equal;
            m.hierarchy.em.weight_rounds = 0;
            m.hierarchy.em.background_cap = 0.0;
            m.hierarchy.subnet_threshold = -1.0;
            ("no-background-negative-subnet", m)
        }
    }
}
