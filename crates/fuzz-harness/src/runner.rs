//! The chain driver: runs one adversarial case end-to-end under
//! `catch_unwind` and classifies the outcome.

use crate::check::{check_export, check_finite, check_snapshot_roundtrip};
use crate::gen::{case, Case};
use lesm_core::pipeline::{LatentStructureMiner, MinedStructure};
use lesm_corpus::Corpus;
use lesm_eval::pmi::{pmi_topic, CoOccurrenceStats};
use std::io::{Read, Write};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// How one adversarial case ended. Both variants satisfy the contract;
/// everything else is a [`CaseFailure`].
#[derive(Debug)]
pub enum CaseOutcome {
    /// The chain ran to completion and every invariant held.
    Completed,
    /// The miner rejected the input with a typed error (rendered here).
    TypedError(String),
}

/// A contract violation: the case id, its reproducer label, and what broke.
#[derive(Debug)]
pub struct CaseFailure {
    /// The failing case id (feed back to [`case`] to reproduce).
    pub id: usize,
    /// Human-readable shape/config label.
    pub label: String,
    /// What went wrong (panic payload or violated invariant).
    pub detail: String,
}

impl std::fmt::Display for CaseFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "case {} [{}]: {}", self.id, self.label, self.detail)
    }
}

/// Extracts a printable message from a `catch_unwind` payload.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        format!("panicked: {s}")
    } else if let Some(s) = payload.downcast_ref::<String>() {
        format!("panicked: {s}")
    } else {
        "panicked: <non-string payload>".into()
    }
}

/// Silences the default panic hook while `f` runs, so expected-panic
/// probing does not spray backtraces over test output. The hook is global
/// to the process: call this once around a whole batch, not per case.
pub fn with_quiet_panics<T>(f: impl FnOnce() -> T) -> T {
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let out = f();
    std::panic::set_hook(prev);
    out
}

/// Runs adversarial case `id` through the full
/// `mine → export → snapshot → load → search` chain.
///
/// Invariants checked:
/// 1. no stage panics (typed `Err` returns are fine),
/// 2. every float in the mined structure is finite,
/// 3. the JSON export is balanced, before and after a snapshot round-trip,
/// 4. `save → load → save` is byte-identical,
/// 5. search/render over hostile queries neither panics nor emits
///    non-finite scores.
pub fn run_case(id: usize) -> Result<CaseOutcome, CaseFailure> {
    let Case { label, corpus, config } = case(id);
    let fail = |detail: String| CaseFailure { id, label: label.clone(), detail };

    let mined = match catch_unwind(AssertUnwindSafe(|| LatentStructureMiner::mine(&corpus, &config)))
    {
        Err(payload) => return Err(fail(panic_message(payload))),
        Ok(Err(e)) => return Ok(CaseOutcome::TypedError(e.to_string())),
        Ok(Ok(mined)) => mined,
    };

    let rest = catch_unwind(AssertUnwindSafe(|| drive_mined(&corpus, &mined)));
    match rest {
        Err(payload) => Err(fail(panic_message(payload))),
        Ok(Err(detail)) => Err(fail(detail)),
        Ok(Ok(())) => Ok(CaseOutcome::Completed),
    }
}

/// Post-mine stages (export, snapshot, search, render, eval) — everything
/// here must succeed on any structure `mine` was willing to produce.
fn drive_mined(corpus: &Corpus, mined: &MinedStructure) -> Result<(), String> {
    check_finite(mined)?;
    let json = check_export(corpus, mined)?;
    check_snapshot_roundtrip(corpus, mined, &json)?;

    // Hostile queries: empty, unknown vocabulary, JSON metacharacters, and
    // (when available) a real vocabulary term.
    let mut queries: Vec<String> =
        ["", "zzz unseen terms", "{\"]\\ \u{1}"].iter().map(|s| s.to_string()).collect();
    if !corpus.vocab.is_empty() {
        queries.push(corpus.vocab.render(&[0]));
    }
    for q in &queries {
        let hits = lesm_core::search::search(corpus, mined, q, 10);
        if let Some(h) = hits.iter().find(|h| !h.score.is_finite()) {
            return Err(format!("search({q:?}) hit doc {} has score {}", h.doc, h.score));
        }
        let lines = lesm_core::search::render_hits(corpus, mined, &hits);
        if lines.len() != hits.len() {
            return Err("render_hits dropped or invented lines".into());
        }
    }

    // Render every topic, plus an out-of-range probe through the public
    // length check the server uses.
    for t in 0..mined.hierarchy.len() {
        let _ = mined.render_topic(corpus, t, 10);
    }

    // Coherence eval over the top phrases: finite even on empty corpora.
    let stats = CoOccurrenceStats::from_corpus(corpus);
    let tt = stats.term_type();
    let items: Vec<(usize, u32)> = mined
        .topic_phrases
        .first()
        .map(|l| l.iter().flat_map(|p| p.tokens.iter().map(|&w| (tt, w))).take(6).collect())
        .unwrap_or_default();
    let coherence = pmi_topic(&stats, &items);
    if !coherence.is_finite() {
        return Err(format!("pmi_topic over top phrases = {coherence}"));
    }
    Ok(())
}

/// Runs a batch of cases, returning `(completed, typed_errors, failures)`.
pub fn run_batch(ids: impl Iterator<Item = usize>) -> (usize, usize, Vec<CaseFailure>) {
    let mut completed = 0;
    let mut typed = 0;
    let mut failures = Vec::new();
    with_quiet_panics(|| {
        for id in ids {
            match run_case(id) {
                Ok(CaseOutcome::Completed) => completed += 1,
                Ok(CaseOutcome::TypedError(_)) => typed += 1,
                Err(f) => failures.push(f),
            }
        }
    });
    (completed, typed, failures)
}

/// Mines case `id`, snapshots it, serves the snapshot on an ephemeral
/// port, and exercises every endpoint with hostile requests. Returns the
/// raw responses for inspection; any panic, hung worker, or malformed
/// response is a failure. Cases whose mine ends in a typed error are
/// reported as `Ok(vec![])`.
pub fn run_server_case(id: usize) -> Result<Vec<String>, CaseFailure> {
    let Case { label, corpus, config } = case(id);
    let fail = |detail: String| CaseFailure { id, label: label.clone(), detail };

    let mined = match catch_unwind(AssertUnwindSafe(|| LatentStructureMiner::mine(&corpus, &config)))
    {
        Err(payload) => return Err(fail(panic_message(payload))),
        Ok(Err(_)) => return Ok(Vec::new()),
        Ok(Ok(m)) => m,
    };
    let bytes = match lesm_serve::save_snapshot(&corpus, &mined) {
        Ok(b) => b,
        Err(e) => return Err(fail(format!("save_snapshot: {e}"))),
    };
    let snap = match lesm_serve::load_snapshot(&bytes) {
        Ok(s) => s,
        Err(e) => return Err(fail(format!("load_snapshot: {e}"))),
    };
    let server_config = lesm_serve::ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        cache_capacity: 4,
        ..lesm_serve::ServerConfig::default()
    };
    let handle = match lesm_serve::Server::start(snap, server_config) {
        Ok(h) => h,
        Err(e) => return Err(fail(format!("Server::start: {e}"))),
    };
    let addr = handle.addr();
    let targets = [
        "/search?q=word",
        "/search?q=",
        "/search?q=%7B%22%5C",
        "/search?q=word&top=0",
        "/topics/0",
        "/topics/999999",
        "/topics/NaN",
        "/hierarchy",
        "/healthz",
        "/metrics",
        "/no-such-endpoint",
    ];
    let mut responses = Vec::new();
    for target in targets {
        match http_get(&addr.to_string(), target) {
            Ok(resp) => {
                if !resp.starts_with("HTTP/1.1 ") {
                    handle.shutdown();
                    return Err(fail(format!("{target}: malformed response {resp:?}")));
                }
                responses.push(resp);
            }
            Err(e) => {
                handle.shutdown();
                return Err(fail(format!("{target}: {e}")));
            }
        }
    }
    handle.shutdown();
    Ok(responses)
}

/// Minimal HTTP/1.1 GET returning the raw response text.
fn http_get(addr: &str, target: &str) -> Result<String, String> {
    let mut stream = std::net::TcpStream::connect(addr).map_err(|e| e.to_string())?;
    stream
        .set_read_timeout(Some(std::time::Duration::from_secs(10)))
        .map_err(|e| e.to_string())?;
    stream
        .write_all(format!("GET {target} HTTP/1.1\r\nHost: fuzz\r\n\r\n").as_bytes())
        .map_err(|e| e.to_string())?;
    let mut out = String::new();
    stream.read_to_string(&mut out).map_err(|e| e.to_string())?;
    Ok(out)
}

/// Round-trips structures whose floats are raw non-finite bit patterns
/// (NaN, ±inf, signaling-NaN payloads) through the snapshot store: save →
/// load → save must be byte-identical (floats travel as raw bits) and the
/// JSON export of the loaded structure must stay balanced, with every
/// non-finite score rendered as `null`, never as a bare `NaN`/`inf` token.
pub fn run_nonfinite_snapshot_cases() -> Vec<CaseFailure> {
    use lesm_hier::hierarchy::{HierTopic, TopicHierarchy};
    use lesm_phrases::TopicalPhrase;

    let bit_patterns: [u64; 8] = [
        f64::NAN.to_bits(),
        f64::INFINITY.to_bits(),
        f64::NEG_INFINITY.to_bits(),
        0x7ff0_0000_0000_0001, // signaling NaN
        0xfff8_dead_beef_0001, // negative NaN with payload
        (-0.0f64).to_bits(),
        f64::MIN_POSITIVE.to_bits() - 1, // largest subnormal
        1.0f64.to_bits(),
    ];
    let mut failures = Vec::new();
    for (id, &bits) in bit_patterns.iter().enumerate() {
        let x = f64::from_bits(bits);
        let mut corpus = Corpus::new();
        let w = corpus.vocab.intern("word");
        let hierarchy = TopicHierarchy {
            type_names: vec![],
            topics: vec![HierTopic {
                parent: None,
                children: vec![],
                level: 0,
                path: "o".into(),
                phi: vec![vec![x]],
                rho: x,
                network: lesm_net::TypedNetwork::new(vec![], vec![]),
            }],
            fits: vec![None],
            alphas: vec![None],
        };
        let mined = MinedStructure {
            hierarchy,
            topic_phrases: vec![vec![TopicalPhrase {
                tokens: vec![w],
                score: x,
                topic_freq: x,
            }]],
            topic_entities: vec![vec![]],
            phrase_topic_freq: vec![std::collections::HashMap::from([(vec![w], x)])],
            segments: vec![],
            doc_topic: vec![],
        };
        let fail = |detail: String| CaseFailure {
            id,
            label: format!("nonfinite-snapshot bits={bits:#018x}"),
            detail,
        };
        let bytes = match lesm_serve::save_snapshot(&corpus, &mined) {
            Ok(b) => b,
            Err(e) => {
                failures.push(fail(format!("save_snapshot: {e}")));
                continue;
            }
        };
        let snap = match lesm_serve::load_snapshot(&bytes) {
            Ok(s) => s,
            Err(e) => {
                failures.push(fail(format!("load_snapshot: {e}")));
                continue;
            }
        };
        let again = match lesm_serve::save_snapshot(&snap.corpus, &snap.mined) {
            Ok(b) => b,
            Err(e) => {
                failures.push(fail(format!("save_snapshot (re-save): {e}")));
                continue;
            }
        };
        if again != bytes {
            failures.push(fail("re-save not byte-identical".into()));
            continue;
        }
        let json = lesm_core::export::hierarchy_to_json(&snap.corpus, &snap.mined, 10);
        if !lesm_core::export::is_balanced_json(&json) {
            failures.push(fail("unbalanced JSON after round-trip".into()));
            continue;
        }
        // The vocabulary is a single tame word, so a bare non-finite token
        // can only come from a float that leaked past json_number.
        if json.contains("NaN") || json.contains("inf") {
            failures.push(fail(format!("non-finite token leaked into JSON: {json}")));
        }
    }
    failures
}

/// Feeds hostile argument vectors through the CLI parser; parsing must
/// return `Ok`/`Err(String)` and never panic. Returns the failure list.
pub fn run_cli_arg_cases() -> Vec<CaseFailure> {
    let commands = ["mine", "snapshot", "serve", "search", "synth", "advisors", "", "–mine"];
    let flags = ["--k", "--depth", "--em-tol", "--threads", "--workers", "--cache", "--docs", "--bogus"];
    let values = ["0", "-1", "NaN", "inf", "18446744073709551616", "1e309", "", "x", "\u{0}"];
    let mut failures = Vec::new();
    let mut id = 0;
    with_quiet_panics(|| {
        for cmd in commands {
            for flag in flags {
                for value in values {
                    let args: Vec<String> =
                        ["input.tsv", flag, value].iter().map(|s| s.to_string()).collect();
                    let mut full = vec![cmd.to_string()];
                    full.extend(args);
                    if let Err(payload) =
                        catch_unwind(AssertUnwindSafe(|| lesm_cli::parse_args(&full)))
                    {
                        failures.push(CaseFailure {
                            id,
                            label: format!("cli-args {full:?}"),
                            detail: panic_message(payload),
                        });
                    }
                    id += 1;
                }
            }
        }
    });
    failures
}

/// Drives the `advisors` CLI path (TPFG preprocessing + inference) over
/// every corpus shape. Years are user-controlled TSV input, so extreme
/// values must produce a typed error or a result — never an arithmetic
/// panic.
pub fn run_advisors_cases() -> Vec<CaseFailure> {
    let mut failures = Vec::new();
    with_quiet_panics(|| {
        for shape in 0..crate::gen::NUM_SHAPES {
            let (label, corpus) = crate::gen::corpus_shape(shape);
            let run = catch_unwind(AssertUnwindSafe(|| lesm_cli::run_advisors(&corpus)));
            if let Err(payload) = run {
                failures.push(CaseFailure {
                    id: shape,
                    label: format!("advisors/{label}"),
                    detail: panic_message(payload),
                });
            }
        }
    });
    failures
}

/// Feeds hostile query programs through the `lesm-query` engine over two
/// adversarial indexes (a dense well-formed model and one whose topic
/// metadata contains a parent/child cycle). Contract (DESIGN.md §14):
/// every body yields a response or a typed *request-class* error — never
/// a panic, never an `Internal` error — and running the same body twice
/// produces byte-identical outcomes.
pub fn run_query_cases() -> Vec<CaseFailure> {
    use lesm_query::{run_query, DocRecord, IndexParts, QueryIndex, TopicMeta};

    // Two entity types, a root with two leaf topics, six docs with years
    // and repeated co-occurrences — enough structure that every edge kind
    // and rank criterion has work to do.
    let dense = IndexParts {
        type_names: vec!["author".into(), "venue".into()],
        entity_names: vec![
            vec!["alice".into(), "bob".into(), "carol".into()],
            vec!["vldb".into()],
        ],
        topics: vec![
            TopicMeta { parent: None, children: vec![1, 2], path: "o".into() },
            TopicMeta { parent: Some(0), children: vec![], path: "o/1".into() },
            TopicMeta { parent: Some(0), children: vec![], path: "o/2".into() },
        ],
        docs: (0..6u64)
            .map(|g| DocRecord {
                gid: g,
                year: Some(2000 + g as i32),
                leaf: 1 + (g as usize % 2),
                entities: vec![(0, (g % 3) as u32), (0, ((g + 1) % 3) as u32), (1, 0)],
            })
            .collect(),
    };
    // Topic 1 and 2 point at each other: subtree walks must terminate.
    let mut cyclic = dense.clone();
    cyclic.topics[1].children = vec![2];
    cyclic.topics[2].children = vec![1];
    cyclic.topics[2].parent = Some(1);
    let indexes =
        vec![
        ("dense", QueryIndex::build(dense).expect("build dense index")),
        ("cyclic-topics", QueryIndex::build(cyclic).expect("build cyclic index")),
    ];

    let over_steps = format!(
        r#"{{"steps":[{{"filter":{{"type":"author"}}}}{}]}}"#,
        r#",{"traverse":{"edge":"coauthor"}}"#.repeat(20)
    );
    let deep_nest = format!(r#"{{"steps":{}1{}}}"#, "[".repeat(40), "]".repeat(40));
    // (body, must_fail): true ⇒ the engine must reject it.
    let bodies: Vec<(&str, bool)> = vec![
        // Malformed JSON.
        ("", true),
        ("{", true),
        ("null", true),
        ("[]", true),
        (r#"{"steps":[{"filter":{"type":"author"}}]"#, true),
        (r#"{"steps":[{"filter":{"type":"author"}}],"page":1,"page":2}"#, true),
        (r#"{"steps":[{"filter":{"type":"author"}}],"page":01}"#, true),
        (r#"{"steps":[{"filter":{"type":"author"}}],"page":NaN}"#, true),
        ("{\"steps\":\u{1}}", true),
        (&deep_nest, true),
        // Unknown steps / fields / caps.
        (r#"{"steps":[{"warp":{}}]}"#, true),
        (r#"{"steps":[{"filter":{"type":"author","bogus":1}}]}"#, true),
        (r#"{"steps":[{"filter":{"type":"author"}}],"page":0}"#, true),
        (r#"{"steps":[{"filter":{"type":"author"}}],"page":100000}"#, true),
        (&over_steps, true),
        // Depth/limit extremes on path.
        (
            r#"{"steps":[{"filter":{"type":"author"}},{"path":{"to":{"type":"author"},"edges":["coauthor"],"max_depth":9}}]}"#,
            true,
        ),
        (
            r#"{"steps":[{"filter":{"type":"author"}},{"path":{"to":{"type":"author"},"edges":["coauthor"],"max_depth":1,"limit":0}}]}"#,
            true,
        ),
        (
            r#"{"steps":[{"filter":{"type":"author"}},{"path":{"to":{"type":"author"},"edges":["coauthor"],"max_depth":1,"limit":100000}}]}"#,
            true,
        ),
        // Invalid cursors.
        (r#"{"steps":[{"filter":{"type":"author"}}],"cursor":""}"#, true),
        (r#"{"steps":[{"filter":{"type":"author"}}],"cursor":"q2.0.0.1"}"#, true),
        (r#"{"steps":[{"filter":{"type":"author"}}],"cursor":"q1.zzzz.0.1"}"#, true),
        (r#"{"steps":[{"filter":{"type":"author"}}],"cursor":"q1.0000000000000000.0.1"}"#, true),
        (
            r#"{"steps":[{"filter":{"type":"author"}}],"cursor":"q1.0000000000000000.99999999999999999999.1"}"#,
            true,
        ),
        // Resolution failures are typed request errors too.
        (r#"{"steps":[{"filter":{"type":"nosuchtype"}}]}"#, true),
        (r#"{"steps":[{"filter":{"type":"author","topic":"no/such"}}]}"#, true),
        // Cyclic traversals and heavy-but-capped programs must finish.
        (
            r#"{"steps":[{"filter":{"type":"author"}},{"traverse":{"edge":"coauthor"}},{"traverse":{"edge":"coauthor"}},{"traverse":{"edge":"coauthor"}},{"traverse":{"edge":"topics"}},{"traverse":{"edge":"entities"}},{"traverse":{"edge":"docs"}}]}"#,
            false,
        ),
        (
            r#"{"steps":[{"filter":{"type":"author"}},{"path":{"to":{"type":"author","name":"carol"},"edges":["coauthor"],"max_depth":8,"mode":"paths","limit":1000}}]}"#,
            false,
        ),
        (
            r#"{"steps":[{"filter":{"type":"author"}},{"rank":{"by":"combined","topic":"o/1","limit":1000}}]}"#,
            false,
        ),
        (r#"{"steps":[{"filter":{"type":"author"}}],"page":1000}"#, false),
        (
            r#"{"steps":[{"filter":{"type":"topic","topic":"o"}},{"traverse":{"edge":"children"}},{"traverse":{"edge":"children"}},{"traverse":{"edge":"children"}},{"traverse":{"edge":"parent"}}]}"#,
            false,
        ),
    ];

    let mut failures = Vec::new();
    with_quiet_panics(|| {
        let mut id = 0;
        for (index_label, index) in &indexes {
            for (body, must_fail) in &bodies {
                let fail = |detail: String| CaseFailure {
                    id,
                    label: format!("query/{index_label} {body:?}"),
                    detail,
                };
                let run_once = || run_query(index, body);
                let first = match catch_unwind(AssertUnwindSafe(run_once)) {
                    Err(payload) => {
                        failures.push(fail(panic_message(payload)));
                        id += 1;
                        continue;
                    }
                    Ok(r) => r,
                };
                match &first {
                    Ok(_) if *must_fail => {
                        failures.push(fail("hostile body was accepted".into()));
                    }
                    Ok(_) => {}
                    Err(e) if !e.is_request_error() => {
                        failures.push(fail(format!("internal (not request-class) error: {e}")));
                    }
                    Err(_) => {}
                }
                // Determinism probe: same body, same outcome bytes.
                let second = catch_unwind(AssertUnwindSafe(run_once));
                let render = |r: &Result<String, lesm_query::QueryError>| match r {
                    Ok(s) => format!("ok:{s}"),
                    Err(e) => format!("err:{e}"),
                };
                match second {
                    Err(payload) => failures.push(fail(panic_message(payload))),
                    Ok(second) => {
                        if render(&second) != render(&first) {
                            failures.push(fail("re-running the body changed the outcome".into()));
                        }
                    }
                }
                id += 1;
            }
        }
    });
    failures
}

/// Drives hostile delta TSVs through the full incremental-mining chain:
/// `append_tsv → LatentStructureMiner::update (warm-start EM) → v2
/// snapshot with delta lineage → load → serve`. Contract: every stage
/// either completes or returns a typed error (`CorpusError`/`CoreError`/
/// `SnapshotError`) — never a panic — and any artifact the chain does
/// produce must load, carry its lineage intact, and answer requests.
pub fn run_update_cases() -> Vec<CaseFailure> {
    use lesm_corpus::synth::{PapersConfig, SyntheticPapers};

    // One healthy base model, mined once and shared by every delta case.
    let base_corpus = match SyntheticPapers::generate(&PapersConfig::dblp(60, 11)) {
        Ok(p) => p.corpus,
        Err(e) => {
            return vec![CaseFailure {
                id: 0,
                label: "update/base-synth".into(),
                detail: format!("base corpus generation failed: {e}"),
            }]
        }
    };
    let mut config = lesm_core::pipeline::MinerConfig::default();
    config.hierarchy.max_depth = 1;
    config.phrase_min_support = 2;
    config.threads = 2;
    let base = match LatentStructureMiner::mine(&base_corpus, &config) {
        Ok(m) => m,
        Err(e) => {
            return vec![CaseFailure {
                id: 0,
                label: "update/base-mine".into(),
                detail: format!("base mine failed: {e}"),
            }]
        }
    };

    // A base document re-encoded as a TSV line, for duplicate-doc deltas.
    let mut base_tsv = Vec::new();
    let _ = lesm_corpus::io::write_tsv(&base_corpus, &mut base_tsv);
    let base_line = String::from_utf8_lossy(&base_tsv)
        .lines()
        .next()
        .unwrap_or("")
        .to_string();
    // A token already interned in the base vocabulary, for collisions.
    let known = base_corpus.vocab.render(&[0]);

    let deltas: Vec<(&str, String)> = vec![
        ("empty-delta", String::new()),
        ("blank-lines", "\n\n\n".into()),
        ("duplicate-docs", format!("{base_line}\n{base_line}\n{base_line}\n")),
        (
            "vocab-collisions",
            format!("{known} {known} brand new term\tauthor={known}|author={known}\t2009\n"),
        ),
        ("year-overflow", "some delta text\tauthor=a\t99999999999999999999\n".into()),
        ("year-extremes", "tok\tauthor=x\t-2147483648\ntok\tauthor=x\t2147483647\n".into()),
        ("malformed-extra-fields", "a\tb\tc\td\te\n".into()),
        ("new-entity-type", "tok tok tok\tspaceship=zorp\t2001\n".into()),
    ];

    let mut failures = Vec::new();
    with_quiet_panics(|| {
        for (id, (label, tsv)) in deltas.iter().enumerate() {
            let fail = |detail: String| CaseFailure {
                id,
                label: format!("update/{label}"),
                detail,
            };
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                drive_update(&base_corpus, &base, tsv)
            }));
            match outcome {
                Err(payload) => failures.push(fail(panic_message(payload))),
                Ok(Err(detail)) => failures.push(fail(detail)),
                Ok(Ok(_typed_or_completed)) => {}
            }
        }
    });
    failures
}

/// One hostile-delta chain. `Ok(true)` = completed end to end, `Ok(false)`
/// = a stage rejected the delta with a typed error (also within contract),
/// `Err` = contract violation.
fn drive_update(
    base_corpus: &Corpus,
    base: &MinedStructure,
    delta_tsv: &str,
) -> Result<bool, String> {
    let mut merged = base_corpus.clone();
    let base_docs = merged.num_docs();
    let appended =
        match lesm_corpus::append_tsv(&mut merged, delta_tsv.as_bytes(), &lesm_corpus::LoadOptions::default()) {
            Ok(n) => n,
            Err(_) => return Ok(false), // typed CorpusError
        };

    let mut config = lesm_core::pipeline::MinerConfig::default();
    config.hierarchy.max_depth = 1;
    config.phrase_min_support = 2;
    config.threads = 2;
    let budget = lesm_core::UpdateBudget { iters: 5, tol: 1e-3 };
    let updated =
        match LatentStructureMiner::update(&merged, base, base_docs, &config, &budget) {
            Ok(u) => u,
            Err(_) => return Ok(false), // typed CoreError
        };
    check_finite(&updated)?;

    let lineage = lesm_serve::DeltaInfo {
        base_artifact: "fuzz-base.lesm".into(),
        base_docs: base_docs as u64,
        base_words: base_corpus.num_words() as u64,
        base_entities: (0..base_corpus.entities.num_types())
            .map(|t| base_corpus.entities.count(t) as u64)
            .collect(),
        chain_depth: 1,
    };
    let bytes = lesm_serve::save_snapshot_v2_with_lineage(&merged, &updated, None, Some(&lineage))
        .map_err(|e| format!("save_snapshot_v2_with_lineage: {e}"))?;
    let mapped = lesm_serve::MappedSnapshot::from_bytes(&bytes)
        .map_err(|e| format!("artifact produced by update does not load: {e}"))?;
    if mapped.delta_info() != Some(&lineage) {
        return Err("delta lineage did not round-trip through the artifact".into());
    }
    if mapped.num_docs() != merged.num_docs() {
        return Err(format!(
            "artifact has {} docs, the merged corpus ({} base + {appended} appended) has {}",
            mapped.num_docs(),
            base_docs,
            merged.num_docs()
        ));
    }

    // Serve the updated artifact and poke it with hostile requests.
    let server_config = lesm_serve::ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        cache_capacity: 4,
        ..lesm_serve::ServerConfig::default()
    };
    let handle = lesm_serve::Server::start_model(
        lesm_serve::Model::Mapped(Box::new(mapped)),
        server_config,
    )
    .map_err(|e| format!("Server::start_model: {e}"))?;
    let addr = handle.addr();
    for target in ["/healthz", "/hierarchy", "/search?q=word", "/search?q=", "/topics/999999"] {
        match http_get(&addr.to_string(), target) {
            Ok(resp) if resp.starts_with("HTTP/1.1 ") => {}
            Ok(resp) => {
                handle.shutdown();
                return Err(format!("{target}: malformed response {resp:?}"));
            }
            Err(e) => {
                handle.shutdown();
                return Err(format!("{target}: {e}"));
            }
        }
    }
    handle.shutdown();
    Ok(true)
}

/// Feeds hostile TSV bytes through the corpus loader; loading must return
/// a typed `CorpusError` or a corpus, never panic.
pub fn run_tsv_cases() -> Vec<CaseFailure> {
    let inputs: &[&str] = &[
        "",
        "\n\n\n",
        "\t\t\t",
        "just text no tabs",
        "text\tauthor=\t2001",
        "text\t=name\t2001",
        "text\tauthor=a|author=a\tnot-a-year",
        "text\tauthor=a\t99999999999999999999",
        "\ttab first\t",
        "a\tb\tc\td\te",
        "tok\tauthor=\u{0}\t-2147483648",
        "x\ty=z\t2001\nx\ty=z\t2001\nx\ty=z\t2001",
    ];
    let mut failures = Vec::new();
    with_quiet_panics(|| {
        for (id, tsv) in inputs.iter().enumerate() {
            let run = catch_unwind(AssertUnwindSafe(|| {
                lesm_corpus::load_tsv(tsv.as_bytes(), &lesm_corpus::LoadOptions::default())
                    .map(|c| c.num_docs())
            }));
            if let Err(payload) = run {
                failures.push(CaseFailure {
                    id,
                    label: format!("tsv {tsv:?}"),
                    detail: panic_message(payload),
                });
            }
        }
    });
    failures
}
