//! Invariant checks shared by the harness test suite and the smoke binary.

use lesm_core::export::{hierarchy_to_json, is_balanced_json};
use lesm_core::pipeline::MinedStructure;
use lesm_corpus::Corpus;

/// Walks every float the pipeline emits and reports the first non-finite
/// one as `Err(site)`. "Emitted" means reachable through the public
/// structure: hierarchy parameters, phrase/entity scores, topical
/// frequency tables, and document-topic attributions.
pub fn check_finite(mined: &MinedStructure) -> Result<(), String> {
    for (t, topic) in mined.hierarchy.topics.iter().enumerate() {
        if !topic.rho.is_finite() {
            return Err(format!("hierarchy.topics[{t}].rho = {}", topic.rho));
        }
        for (x, row) in topic.phi.iter().enumerate() {
            if let Some(v) = row.iter().find(|v| !v.is_finite()) {
                return Err(format!("hierarchy.topics[{t}].phi[{x}] contains {v}"));
            }
        }
    }
    for (t, fit) in mined.hierarchy.fits.iter().enumerate() {
        let Some(fit) = fit else { continue };
        if let Some(v) = fit.rho.iter().find(|v| !v.is_finite()) {
            return Err(format!("fits[{t}].rho contains {v}"));
        }
        if let Some(v) = fit.alpha.iter().find(|v| !v.is_finite()) {
            return Err(format!("fits[{t}].alpha contains {v}"));
        }
        for (x, per_z) in fit.phi.iter().enumerate() {
            for row in per_z {
                if let Some(v) = row.iter().find(|v| !v.is_finite()) {
                    return Err(format!("fits[{t}].phi[{x}] contains {v}"));
                }
            }
        }
    }
    for (t, list) in mined.topic_phrases.iter().enumerate() {
        for p in list {
            if !p.score.is_finite() || !p.topic_freq.is_finite() {
                return Err(format!(
                    "topic_phrases[{t}] has score {} / topic_freq {}",
                    p.score, p.topic_freq
                ));
            }
        }
    }
    for (t, per_type) in mined.topic_entities.iter().enumerate() {
        for list in per_type {
            if let Some((id, s)) = list.iter().find(|(_, s)| !s.is_finite()) {
                return Err(format!("topic_entities[{t}] entity {id} score {s}"));
            }
        }
    }
    for (t, table) in mined.phrase_topic_freq.iter().enumerate() {
        if let Some((_, f)) = table.iter().find(|(_, f)| !f.is_finite()) {
            return Err(format!("phrase_topic_freq[{t}] contains {f}"));
        }
    }
    for (d, row) in mined.doc_topic.iter().enumerate() {
        if let Some(v) = row.iter().find(|v| !v.is_finite()) {
            return Err(format!("doc_topic[{d}] contains {v}"));
        }
    }
    Ok(())
}

/// Exports the structure and checks the JSON is structurally balanced.
pub fn check_export(corpus: &Corpus, mined: &MinedStructure) -> Result<String, String> {
    let json = hierarchy_to_json(corpus, mined, 10);
    if !is_balanced_json(&json) {
        return Err("hierarchy_to_json produced unbalanced JSON".into());
    }
    Ok(json)
}

/// Round-trips the structure through the snapshot store and checks
/// `save(load(save(x))) == save(x)` byte-for-byte plus export equality of
/// the reloaded structure.
pub fn check_snapshot_roundtrip(
    corpus: &Corpus,
    mined: &MinedStructure,
    json: &str,
) -> Result<(), String> {
    let bytes = lesm_serve::save_snapshot(corpus, mined).map_err(|e| format!("save_snapshot: {e}"))?;
    let snap = lesm_serve::load_snapshot(&bytes).map_err(|e| format!("load_snapshot: {e}"))?;
    let again = lesm_serve::save_snapshot(&snap.corpus, &snap.mined)
        .map_err(|e| format!("save_snapshot (re-save): {e}"))?;
    if again != bytes {
        return Err(format!(
            "snapshot re-save differs: {} vs {} bytes",
            again.len(),
            bytes.len()
        ));
    }
    let json2 = check_export(&snap.corpus, &snap.mined)?;
    if json2 != json {
        return Err("reloaded snapshot exports different JSON".into());
    }
    Ok(())
}
