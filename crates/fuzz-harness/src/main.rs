//! Bounded smoke entry point for the adversarial harness
//! (`scripts/fuzz_smoke.sh`). Runs `--cases N` chain cases plus the CLI,
//! TSV, non-finite-snapshot and hostile-query batteries, prints a
//! one-line JSON summary, and exits non-zero on any contract violation.

use lesm_fuzz::{
    run_batch, run_cli_arg_cases, run_nonfinite_snapshot_cases, run_query_cases, run_tsv_cases,
    run_update_cases,
};

fn main() {
    let mut cases = 64usize;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--cases" => {
                let raw = args.next().unwrap_or_default();
                cases = match raw.parse() {
                    Ok(n) => n,
                    Err(_) => {
                        eprintln!("error: --cases got {raw:?}, which is not a valid case count");
                        std::process::exit(2);
                    }
                };
            }
            other => {
                eprintln!("error: unknown flag {other}\nusage: lesm-fuzz [--cases N]");
                std::process::exit(2);
            }
        }
    }

    let (completed, typed, mut failures) = run_batch(0..cases);
    failures.extend(run_nonfinite_snapshot_cases());
    failures.extend(run_cli_arg_cases());
    failures.extend(run_tsv_cases());
    failures.extend(run_query_cases());
    failures.extend(run_update_cases());

    println!(
        "{{\"chain_cases\": {cases}, \"completed\": {completed}, \"typed_errors\": {typed}, \
         \"failures\": {}}}",
        failures.len()
    );
    if !failures.is_empty() {
        for f in &failures {
            eprintln!("FAIL {f}");
        }
        std::process::exit(1);
    }
}
