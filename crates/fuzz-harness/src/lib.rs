//! `lesm-fuzz` — the reusable adversarial-corpus harness (DESIGN.md §10).
//!
//! The dissertation's pipeline is a chain (CATHY/CATHYHIN → ToPMine →
//! ranking → snapshot → serve), so one degenerate input can surface as a
//! panic or a NaN several layers downstream. This crate pins the
//! end-to-end contract instead:
//!
//! * **garbage in → typed error out**: hostile corpora and configs either
//!   mine successfully or fail with `CoreError`/`SnapshotError`/CLI
//!   `String` — never a panic;
//! * **every emitted float is finite** and every JSON export balanced;
//! * **snapshots round-trip byte-identically**, including structures whose
//!   floats carry non-finite bit patterns.
//!
//! Cases are addressed by plain integers (see [`gen::case`]), so a failing
//! case id is a complete reproducer. The `tests/adversarial.rs` suite runs
//! the full case matrix; the `lesm-fuzz` binary runs a bounded batch for
//! smoke flows (`scripts/fuzz_smoke.sh`). Future PRs extend the shape or
//! mutation tables in [`gen`] rather than re-deriving a harness.

#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod check;
pub mod gen;
pub mod runner;

pub use check::{check_export, check_finite, check_snapshot_roundtrip};
pub use gen::{case, Case, NUM_CASES, NUM_CONFIGS, NUM_SHAPES};
pub use runner::{
    run_advisors_cases,
    run_batch, run_case, run_cli_arg_cases, run_nonfinite_snapshot_cases, run_query_cases,
    run_server_case,
    run_tsv_cases, run_update_cases, CaseFailure, CaseOutcome,
};
