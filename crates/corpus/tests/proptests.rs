//! Property-based tests for the corpus substrate and the synthetic
//! generators.

use lesm_corpus::synth::{
    Genealogy, GenealogyConfig, GroundTruthHierarchy, HierarchySpec, PapersConfig,
    SyntheticPapers, Zipf,
};
use lesm_corpus::text::{is_stopword, stem, tokenize};
use lesm_corpus::{Corpus, Vocabulary};
use proptest::prelude::*;

proptest! {
    #[test]
    fn vocabulary_roundtrips(names in proptest::collection::vec("[a-z]{1,8}", 1..30)) {
        let mut v = Vocabulary::new();
        let ids: Vec<u32> = names.iter().map(|n| v.intern(n)).collect();
        for (name, &id) in names.iter().zip(&ids) {
            prop_assert_eq!(v.name(id), Some(name.as_str()));
            prop_assert_eq!(v.get(name), Some(id));
        }
        prop_assert!(v.len() <= names.len());
    }

    #[test]
    fn tokenize_yields_alphanumeric_tokens(text in ".{0,120}") {
        for tok in tokenize(&text) {
            prop_assert!(!tok.is_empty());
            prop_assert!(tok.chars().all(|c| c.is_ascii_alphanumeric()));
        }
    }

    #[test]
    fn stem_never_grows_words(word in "[a-z]{1,15}") {
        let s = stem(&word);
        prop_assert!(s.len() <= word.len() + 2, "{word} -> {s}"); // 'ies'->'y' can add relative to base
        prop_assert!(!s.is_empty());
    }

    #[test]
    fn stopwords_are_lowercase(_x in 0..1) {
        for w in lesm_corpus::text::STOPWORDS {
            prop_assert!(is_stopword(w));
            prop_assert_eq!(&w.to_ascii_lowercase(), w);
        }
    }

    #[test]
    fn zipf_pmf_is_a_decreasing_distribution(n in 1usize..40, s in 0.0f64..3.0) {
        let z = Zipf::new(n, s);
        let total: f64 = (0..n).map(|r| z.pmf(r)).sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
        for r in 1..n {
            prop_assert!(z.pmf(r - 1) >= z.pmf(r) - 1e-12);
        }
    }

    #[test]
    fn doc_freq_bounded_by_num_docs(texts in proptest::collection::vec("[a-z ]{0,40}", 1..15)) {
        let mut c = Corpus::new();
        for t in &texts {
            c.push_text(t);
        }
        let df = c.doc_freq();
        for &f in &df {
            prop_assert!((f as usize) <= c.num_docs());
        }
        let tf = c.term_freq();
        for (f, t) in df.iter().zip(&tf) {
            prop_assert!((*f as u64) <= *t, "doc freq exceeds term freq");
        }
    }

    #[test]
    fn hierarchy_generation_invariants(b1 in 2usize..5, b2 in 1usize..4, words in 4usize..20) {
        let h = GroundTruthHierarchy::generate(&HierarchySpec {
            branching: vec![b1, b2],
            words_per_topic: words,
            phrases_per_topic: 3,
            background_words: 5,
            zipf_s: 1.0,
        }).unwrap();
        prop_assert_eq!(h.leaves.len(), b1 * b2);
        prop_assert_eq!(h.len(), 1 + b1 + b1 * b2);
        // Every leaf's path has exactly 3 nodes ending at the leaf.
        for &l in &h.leaves {
            let p = h.path_nodes(l);
            prop_assert_eq!(p.len(), 3);
            prop_assert_eq!(p[0], 0);
            prop_assert_eq!(*p.last().unwrap(), l);
        }
    }

    #[test]
    fn papers_generator_counts_consistent(n_docs in 20usize..120, seed in 0u64..500) {
        let mut cfg = PapersConfig::dblp(n_docs, seed);
        cfg.hierarchy.branching = vec![2, 2];
        cfg.hierarchy.words_per_topic = 8;
        cfg.entity_specs[0].pool_per_node = 4;
        cfg.entity_specs[1].pool_per_node = 2;
        let s = SyntheticPapers::generate(&cfg).unwrap();
        prop_assert_eq!(s.corpus.num_docs(), n_docs);
        prop_assert_eq!(s.truth.doc_leaf.len(), n_docs);
        for (d, doc) in s.corpus.docs.iter().enumerate() {
            // Every doc's leaf is an actual leaf of the hierarchy.
            prop_assert!(s.truth.hierarchy.leaves.contains(&s.truth.doc_leaf[d]));
            // Entity refs are valid.
            for e in &doc.entities {
                prop_assert!(e.etype < s.corpus.entities.num_types());
                prop_assert!((e.id as usize) < s.corpus.entities.count(e.etype));
            }
        }
        // Entity-leaf counts agree with document links.
        for etype in 0..2 {
            let total_links: u32 = s.truth.entity_leaf_counts[etype]
                .iter()
                .flat_map(|l| l.iter().map(|&(_, c)| c))
                .sum();
            let doc_links: usize = s.corpus.docs.iter().map(|d| d.entities_of(etype).count()).sum();
            prop_assert_eq!(total_links as usize, doc_links);
        }
    }

    #[test]
    fn genealogy_invariants(n in 10usize..80, seed in 0u64..200) {
        let g = Genealogy::generate(&GenealogyConfig {
            n_authors: n,
            seed,
            ..GenealogyConfig::default()
        }).unwrap();
        prop_assert!(g.is_acyclic());
        for i in 0..n {
            if let Some(a) = g.advisor[i] {
                prop_assert!((a as usize) < n);
                prop_assert!(g.start_year[a as usize] < g.start_year[i]);
                let (st, ed) = g.interval[i].unwrap();
                prop_assert!(st <= ed);
                prop_assert_eq!(st, g.start_year[i]);
            } else {
                prop_assert!(g.interval[i].is_none());
            }
        }
        // Papers are year-sorted.
        for w in g.papers.windows(2) {
            prop_assert!(w[0].year <= w[1].year);
        }
    }
}
