//! Document model, vocabulary interning, tokenization, and synthetic data
//! generators for the `lesm` workspace.
//!
//! The dissertation's experiments run on DBLP titles, Google News crawls,
//! labeled arXiv titles and academic-genealogy ground truth — none of which
//! can ship with an offline reproduction. This crate provides
//! *behaviour-preserving* synthetic substitutes (module [`synth`]): every
//! generator draws from an explicit ground-truth structure (a topic
//! hierarchy, entity→topic affinities, an advisor forest) so downstream
//! experiments can score methods against exact truth. See `DESIGN.md` §3 for
//! the substitution table.

// DESIGN.md §10: library code must surface typed errors, not unwraps.
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod doc;
pub mod io;
pub mod synth;
pub mod text;
pub mod vocab;

pub use doc::{Corpus, Doc, EntityCatalog, EntityRef};
pub use io::{append_tsv, load_tsv, LoadOptions};
pub use vocab::Vocabulary;

/// Errors produced by corpus construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CorpusError {
    /// An entity type index was out of range for the catalog.
    UnknownEntityType(usize),
    /// A document index was out of range.
    DocOutOfRange(usize),
    /// A generator was configured with impossible parameters.
    InvalidConfig(String),
}

impl std::fmt::Display for CorpusError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CorpusError::UnknownEntityType(t) => write!(f, "unknown entity type {t}"),
            CorpusError::DocOutOfRange(d) => write!(f, "document index {d} out of range"),
            CorpusError::InvalidConfig(msg) => write!(f, "invalid generator config: {msg}"),
        }
    }
}

impl std::error::Error for CorpusError {}
