//! Tokenization, stopword filtering and light stemming.
//!
//! The dissertation's pipelines (§4.4) minimally preprocess text: lowercase,
//! split on punctuation, drop English stopwords, and (for ToPMine) Porter
//! stemming. We implement a compact suffix-stripping stemmer that covers the
//! inflection classes our generators and examples produce; it is not a full
//! Porter implementation but preserves the merge-inflections behaviour the
//! experiments rely on.

/// Tokenizes text: lowercases and splits on any non-alphanumeric character.
///
/// Returns borrowed slices when a word is already lowercase ASCII; otherwise
/// the iterator yields owned lowercase forms via an internal buffer, so the
/// function returns owned `String`-free `&str` only for the easy case — to
/// keep the API simple we yield `&str` into a leaked-free internal `Vec`.
/// (In practice callers intern immediately; see [`crate::Corpus::push_text`].)
pub fn tokenize(text: &str) -> impl Iterator<Item = &str> {
    text.split(|c: char| !c.is_ascii_alphanumeric())
        .filter(|w| !w.is_empty())
}

/// Returns the lowercase form of a token (allocates only when needed).
pub fn lowercase(token: &str) -> std::borrow::Cow<'_, str> {
    if token.chars().all(|c| !c.is_ascii_uppercase()) {
        std::borrow::Cow::Borrowed(token)
    } else {
        std::borrow::Cow::Owned(token.to_ascii_lowercase())
    }
}

/// A minimal English stopword list covering the function words that appear
/// in scholarly titles and news ledes.
pub const STOPWORDS: &[&str] = &[
    "a", "an", "the", "of", "for", "and", "or", "in", "on", "to", "with",
    "by", "at", "from", "into", "as", "is", "are", "was", "were", "be",
    "been", "that", "this", "these", "those", "it", "its", "their", "his",
    "her", "our", "your", "we", "you", "they", "he", "she", "i", "not",
    "but", "if", "then", "than", "so", "such", "via", "using", "based",
    "toward", "towards", "over", "under", "between", "among", "can", "do",
    "does", "did", "has", "have", "had", "will", "would", "about", "after",
    "before", "more", "most", "other", "some", "what", "when", "which",
    "who", "how", "new",
];

/// Whether `w` (assumed lowercase) is a stopword.
pub fn is_stopword(w: &str) -> bool {
    // The list is tiny; linear scan beats a HashSet for these lengths.
    STOPWORDS.contains(&w)
}

/// Light suffix-stripping stemmer (Porter-inspired step-1 rules).
///
/// Handles plural `-s`/`-es`/`-ies`, gerund `-ing`, past `-ed`, and
/// `-ation`/`-ations`. Words of length <= 3 are returned unchanged.
pub fn stem(w: &str) -> String {
    let w = w.to_ascii_lowercase();
    let n = w.len();
    if n <= 3 {
        return w;
    }
    if let Some(base) = w.strip_suffix("ations") {
        if base.len() >= 3 {
            return format!("{base}ation");
        }
    }
    if let Some(base) = w.strip_suffix("ies") {
        if base.len() >= 2 {
            return format!("{base}y");
        }
    }
    if let Some(base) = w.strip_suffix("sses") {
        return format!("{base}ss");
    }
    if let Some(base) = w.strip_suffix("es") {
        // "indexes" -> "index", but keep "queries" handled above.
        if base.ends_with('x') || base.ends_with("ch") || base.ends_with("sh") || base.ends_with('s')
        {
            return base.to_owned();
        }
    }
    if w.ends_with("ss") {
        return w;
    }
    if let Some(base) = w.strip_suffix("ing") {
        if base.len() >= 3 {
            return undouble(base);
        }
    }
    if let Some(base) = w.strip_suffix("ed") {
        if base.len() >= 3 {
            return undouble(base);
        }
    }
    if let Some(base) = w.strip_suffix('s') {
        if !base.ends_with('s') && !base.ends_with('u') && !base.ends_with('i') {
            return base.to_owned();
        }
    }
    w
}

/// Collapses a doubled final consonant ("mapp" -> "map").
fn undouble(base: &str) -> String {
    let bytes = base.as_bytes();
    let n = bytes.len();
    if n >= 2 && bytes[n - 1] == bytes[n - 2] && !b"aeiou".contains(&bytes[n - 1]) {
        base[..n - 1].to_owned()
    } else {
        base.to_owned()
    }
}

/// Full preprocessing used by examples: tokenize, lowercase, drop stopwords,
/// optionally stem.
pub fn preprocess(text: &str, do_stem: bool) -> Vec<String> {
    tokenize(text)
        .map(|t| lowercase(t).into_owned())
        .filter(|t| !is_stopword(t))
        .map(|t| if do_stem { stem(&t) } else { t })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenize_splits_punctuation() {
        let toks: Vec<_> = tokenize("Mining frequent patterns: a tree-approach!").collect();
        assert_eq!(toks, vec!["Mining", "frequent", "patterns", "a", "tree", "approach"]);
    }

    #[test]
    fn stopwords_filtered() {
        assert!(is_stopword("the"));
        assert!(!is_stopword("database"));
    }

    #[test]
    fn stemming_merges_inflections() {
        assert_eq!(stem("patterns"), "pattern");
        assert_eq!(stem("queries"), "query");
        assert_eq!(stem("mining"), "min"); // suffix-stripper, matches 'mined'
        assert_eq!(stem("mined"), "min");
        assert_eq!(stem("indexes"), "index");
        assert_eq!(stem("processes"), "process");
        assert_eq!(stem("mapping"), "map");
        assert_eq!(stem("classifications"), "classification");
        assert_eq!(stem("class"), "class");
    }

    #[test]
    fn short_words_unchanged() {
        assert_eq!(stem("as"), "as");
        assert_eq!(stem("gas"), "gas");
    }

    #[test]
    fn preprocess_pipeline() {
        let out = preprocess("The Queries of a Database", true);
        assert_eq!(out, vec!["query", "database"]);
    }
}
