//! String interning for words and entity names.

use std::collections::HashMap;

/// An interning table mapping strings to dense `u32` ids.
///
/// Ids are assigned in first-seen order, so a vocabulary built from a
/// deterministic token stream is itself deterministic.
#[derive(Debug, Clone, Default)]
pub struct Vocabulary {
    by_name: HashMap<String, u32>,
    names: Vec<String>,
}

impl Vocabulary {
    /// Creates an empty vocabulary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `name`, returning its id (existing or freshly assigned).
    pub fn intern(&mut self, name: &str) -> u32 {
        if let Some(&id) = self.by_name.get(name) {
            return id;
        }
        let id = self.names.len() as u32;
        self.names.push(name.to_owned());
        self.by_name.insert(name.to_owned(), id);
        id
    }

    /// Looks up an existing id without interning.
    pub fn get(&self, name: &str) -> Option<u32> {
        self.by_name.get(name).copied()
    }

    /// The string for `id`, or `None` if out of range.
    pub fn name(&self, id: u32) -> Option<&str> {
        self.names.get(id as usize).map(String::as_str)
    }

    /// The string for `id`, or `"<unk>"` when out of range (display paths).
    pub fn name_or_unk(&self, id: u32) -> &str {
        self.name(id).unwrap_or("<unk>")
    }

    /// Number of interned strings.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the vocabulary is empty.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates `(id, name)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &str)> {
        self.names.iter().enumerate().map(|(i, n)| (i as u32, n.as_str()))
    }

    /// Renders a token-id sequence as a space-joined string.
    pub fn render(&self, ids: &[u32]) -> String {
        ids.iter().map(|&i| self.name_or_unk(i)).collect::<Vec<_>>().join(" ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let mut v = Vocabulary::new();
        let a = v.intern("query");
        let b = v.intern("processing");
        assert_eq!(v.intern("query"), a);
        assert_eq!(v.len(), 2);
        assert_eq!(v.name(a), Some("query"));
        assert_eq!(v.name(b), Some("processing"));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn render_joins_names() {
        let mut v = Vocabulary::new();
        let q = v.intern("query");
        let p = v.intern("processing");
        assert_eq!(v.render(&[q, p]), "query processing");
        assert_eq!(v.render(&[q, 99]), "query <unk>");
    }

    #[test]
    fn iter_in_id_order() {
        let mut v = Vocabulary::new();
        v.intern("b");
        v.intern("a");
        let pairs: Vec<_> = v.iter().collect();
        assert_eq!(pairs, vec![(0, "b"), (1, "a")]);
    }
}
