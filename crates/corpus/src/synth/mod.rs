//! Synthetic data generators with explicit ground truth.
//!
//! Each generator substitutes for a dataset the dissertation evaluates on
//! (DESIGN.md §3). The generators are *structure-first*: they first draw a
//! latent structure (topic hierarchy, entity affinities, advisor forest) and
//! then emit observable data from it, so experiments can score any mining
//! method against exact truth.

pub mod genealogy;
pub mod hierarchy;
pub mod labeled;
pub mod papers;
pub mod zipf;

pub use genealogy::{Genealogy, GenealogyConfig, GenPaper};
pub use hierarchy::{GroundTruthHierarchy, HierarchySpec, TopicNode};
pub use labeled::{LabeledConfig, LabeledCorpus};
pub use papers::{EntitySpec, PapersConfig, PapersGroundTruth, SyntheticPapers};
pub use zipf::Zipf;
