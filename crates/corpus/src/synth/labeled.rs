//! Labeled flat-category corpora (the arXiv-physics stand-in of §4.4.1).
//!
//! The MI_K experiment (Figure 4.2) needs documents carrying gold category
//! labels whose vocabulary correlates with the label. [`LabeledCorpus`]
//! reuses the hierarchical generator with a single-level tree and keeps the
//! leaf index as the document label.

use crate::synth::hierarchy::HierarchySpec;
use crate::synth::papers::{PapersConfig, PapersGroundTruth, SyntheticPapers};
use crate::Corpus;
use crate::CorpusError;

/// Configuration for [`LabeledCorpus::generate`].
#[derive(Debug, Clone)]
pub struct LabeledConfig {
    /// Number of categories (arXiv uses 5 physics subfields).
    pub n_categories: usize,
    /// Number of documents.
    pub n_docs: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for LabeledConfig {
    fn default() -> Self {
        Self { n_categories: 5, n_docs: 2_000, seed: 7 }
    }
}

/// A flat labeled corpus plus ground truth.
#[derive(Debug, Clone)]
pub struct LabeledCorpus {
    /// The observable data; `Doc::label` is the gold category.
    pub corpus: Corpus,
    /// Generator ground truth (category = leaf index).
    pub truth: PapersGroundTruth,
}

impl LabeledCorpus {
    /// Generates a labeled corpus with `config.n_categories` categories.
    pub fn generate(config: &LabeledConfig) -> Result<Self, CorpusError> {
        if config.n_categories == 0 {
            return Err(CorpusError::InvalidConfig("need at least one category".into()));
        }
        let papers_cfg = PapersConfig {
            hierarchy: HierarchySpec {
                branching: vec![config.n_categories],
                words_per_topic: 60,
                phrases_per_topic: 12,
                background_words: 80,
                zipf_s: 1.0,
            },
            n_docs: config.n_docs,
            title_len: (6, 12),
            phrase_prob: 0.5,
            background_prob: 0.15,
            mix_noise: 0.06,
            root_phrase_prob: 0.0,
            entity_specs: vec![],
            years: (2010, 2013),
            seed: config.seed,
        };
        let papers = SyntheticPapers::generate(&papers_cfg)?;
        Ok(Self { corpus: papers.corpus, truth: papers.truth })
    }

    /// Number of categories.
    pub fn n_categories(&self) -> usize {
        self.truth.hierarchy.leaves.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_cover_all_categories() {
        let lc = LabeledCorpus::generate(&LabeledConfig { n_categories: 5, n_docs: 500, seed: 3 })
            .unwrap();
        assert_eq!(lc.n_categories(), 5);
        let mut seen = [false; 5];
        for d in &lc.corpus.docs {
            let l = d.label.expect("every doc labeled") as usize;
            assert!(l < 5);
            seen[l] = true;
        }
        assert!(seen.iter().all(|&s| s), "all categories represented");
    }

    #[test]
    fn zero_categories_rejected() {
        assert!(LabeledCorpus::generate(&LabeledConfig {
            n_categories: 0,
            n_docs: 10,
            seed: 1
        })
        .is_err());
    }

    #[test]
    fn label_correlates_with_vocabulary() {
        let lc = LabeledCorpus::generate(&LabeledConfig::default()).unwrap();
        // For each doc, the plurality of topical words should belong to the
        // doc's own category.
        let mut correct = 0usize;
        let mut total = 0usize;
        for d in &lc.corpus.docs {
            let label_leaf = lc.truth.hierarchy.leaves[d.label.unwrap() as usize];
            let mut own = 0;
            let mut topical = 0;
            for &w in &d.tokens {
                if let Some(t) = lc.truth.word_topic(w) {
                    topical += 1;
                    if t == label_leaf {
                        own += 1;
                    }
                }
            }
            if topical > 0 {
                total += 1;
                if own * 2 >= topical {
                    correct += 1;
                }
            }
        }
        let frac = correct as f64 / total as f64;
        assert!(frac > 0.7, "label/vocabulary correlation too weak: {frac:.3}");
    }
}
