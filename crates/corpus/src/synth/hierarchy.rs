//! Ground-truth topic hierarchies.
//!
//! A [`GroundTruthHierarchy`] plays the role of the real-world latent
//! structure the dissertation mines: a topic tree where each node owns a
//! set of unigrams and multi-word phrases, and each leaf has a full word
//! distribution. Generators sample documents from it; evaluation code
//! scores recovered structures against it.

use crate::synth::zipf::Zipf;
use crate::vocab::Vocabulary;
use crate::CorpusError;

/// One node of the ground-truth topic tree.
#[derive(Debug, Clone)]
pub struct TopicNode {
    /// Parent node index (`None` for the root).
    pub parent: Option<usize>,
    /// Child node indices.
    pub children: Vec<usize>,
    /// Depth (root = 0).
    pub level: usize,
    /// Human-readable path such as `"o/1/2"`.
    pub path: String,
}

/// Configuration for [`GroundTruthHierarchy::generate`].
#[derive(Debug, Clone)]
pub struct HierarchySpec {
    /// Children per node at each level; e.g. `[5, 4]` builds a root with 5
    /// children, each with 4 children (25 leaves + 6 internal nodes).
    pub branching: Vec<usize>,
    /// Topic-specific unigrams owned by every node.
    pub words_per_topic: usize,
    /// Multi-word phrases owned by every node (built from its own words).
    pub phrases_per_topic: usize,
    /// Background (topic-neutral) words shared across the corpus.
    pub background_words: usize,
    /// Zipf exponent for within-topic word popularity.
    pub zipf_s: f64,
}

impl Default for HierarchySpec {
    fn default() -> Self {
        Self {
            branching: vec![5, 4],
            words_per_topic: 40,
            phrases_per_topic: 8,
            background_words: 60,
            zipf_s: 1.05,
        }
    }
}

/// A fully materialized ground-truth hierarchy.
#[derive(Debug, Clone)]
pub struct GroundTruthHierarchy {
    /// Tree nodes; node 0 is the root.
    pub nodes: Vec<TopicNode>,
    /// Indices of leaf nodes.
    pub leaves: Vec<usize>,
    /// Words owned by each node (ids into [`Self::vocab`]).
    pub own_words: Vec<Vec<u32>>,
    /// Phrases owned by each node, as token-id sequences.
    pub phrases: Vec<Vec<Vec<u32>>>,
    /// Background word ids.
    pub background: Vec<u32>,
    /// The word vocabulary (generators share it with the emitted corpus).
    pub vocab: Vocabulary,
    /// Zipf sampler over a node's own words.
    pub word_zipf: Zipf,
}

impl GroundTruthHierarchy {
    /// Generates a hierarchy per `spec`. Word names are synthetic but
    /// readable (`"t3w7"`, `"bg12"`); phrase words are drawn from each
    /// node's own words so ground-truth phrases are perfectly concordant.
    pub fn generate(spec: &HierarchySpec) -> Result<Self, CorpusError> {
        if spec.branching.is_empty() {
            return Err(CorpusError::InvalidConfig("branching must be non-empty".into()));
        }
        if spec.branching.contains(&0) {
            return Err(CorpusError::InvalidConfig("branching factors must be >= 1".into()));
        }
        if spec.words_per_topic < 4 {
            return Err(CorpusError::InvalidConfig("need at least 4 words per topic".into()));
        }
        let mut nodes = vec![TopicNode { parent: None, children: vec![], level: 0, path: "o".into() }];
        let mut frontier = vec![0usize];
        for &b in &spec.branching {
            let mut next = Vec::new();
            for &p in &frontier {
                for c in 0..b {
                    let id = nodes.len();
                    let path = format!("{}/{}", nodes[p].path, c + 1);
                    nodes.push(TopicNode {
                        parent: Some(p),
                        children: vec![],
                        level: nodes[p].level + 1,
                        path,
                    });
                    nodes[p].children.push(id);
                    next.push(id);
                }
            }
            frontier = next;
        }
        let leaves = frontier;
        let mut vocab = Vocabulary::new();
        let mut own_words = Vec::with_capacity(nodes.len());
        for t in 0..nodes.len() {
            let words: Vec<u32> =
                (0..spec.words_per_topic).map(|i| vocab.intern(&format!("t{t}w{i}"))).collect();
            own_words.push(words);
        }
        let background: Vec<u32> =
            (0..spec.background_words).map(|i| vocab.intern(&format!("bg{i}"))).collect();
        // Phrases: node t's i-th phrase uses consecutive own words so that
        // the words co-occur far above chance (the concordance criterion).
        let mut phrases = Vec::with_capacity(nodes.len());
        for words in &own_words {
            let mut ps = Vec::with_capacity(spec.phrases_per_topic);
            for i in 0..spec.phrases_per_topic {
                let len = 2 + (i % 2); // alternate bigrams and trigrams
                let start = (i * 2) % (words.len().saturating_sub(len).max(1));
                let phrase: Vec<u32> = (0..len).map(|j| words[(start + j) % words.len()]).collect();
                ps.push(phrase);
            }
            phrases.push(ps);
        }
        let word_zipf = Zipf::new(spec.words_per_topic, spec.zipf_s);
        Ok(Self { nodes, leaves, own_words, phrases, background, vocab, word_zipf })
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the hierarchy is trivial (never true after `generate`).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Ancestors of `t` from parent to root (exclusive of `t`).
    pub fn ancestors(&self, t: usize) -> Vec<usize> {
        let mut out = Vec::new();
        let mut cur = self.nodes[t].parent;
        while let Some(p) = cur {
            out.push(p);
            cur = self.nodes[p].parent;
        }
        out
    }

    /// The leaf-index (position in `self.leaves`) of node `t`, if a leaf.
    pub fn leaf_index(&self, t: usize) -> Option<usize> {
        self.leaves.iter().position(|&l| l == t)
    }

    /// Depth-first check that a word belongs to the subtree rooted at `t`.
    pub fn subtree_owns_word(&self, t: usize, w: u32) -> bool {
        if self.own_words[t].contains(&w) {
            return true;
        }
        self.nodes[t].children.iter().any(|&c| self.subtree_owns_word(c, w))
    }

    /// The set of topic nodes on the root-to-leaf path for leaf node `t`
    /// (root first, `t` last).
    pub fn path_nodes(&self, t: usize) -> Vec<usize> {
        let mut anc = self.ancestors(t);
        anc.reverse();
        anc.push(t);
        anc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> GroundTruthHierarchy {
        GroundTruthHierarchy::generate(&HierarchySpec {
            branching: vec![3, 2],
            words_per_topic: 10,
            phrases_per_topic: 4,
            background_words: 5,
            zipf_s: 1.0,
        })
        .unwrap()
    }

    #[test]
    fn tree_shape() {
        let h = small();
        // 1 root + 3 + 6 = 10 nodes, 6 leaves.
        assert_eq!(h.len(), 10);
        assert_eq!(h.leaves.len(), 6);
        assert_eq!(h.nodes[0].children.len(), 3);
        for &l in &h.leaves {
            assert_eq!(h.nodes[l].level, 2);
            assert!(h.nodes[l].children.is_empty());
        }
    }

    #[test]
    fn paths_follow_parents() {
        let h = small();
        let first_child = h.nodes[0].children[0];
        assert_eq!(h.nodes[first_child].path, "o/1");
        let grandchild = h.nodes[first_child].children[1];
        assert_eq!(h.nodes[grandchild].path, "o/1/2");
        assert_eq!(h.ancestors(grandchild), vec![first_child, 0]);
        assert_eq!(h.path_nodes(grandchild), vec![0, first_child, grandchild]);
    }

    #[test]
    fn words_are_disjoint_across_topics() {
        let h = small();
        for t in 0..h.len() {
            for u in (t + 1)..h.len() {
                for w in &h.own_words[t] {
                    assert!(!h.own_words[u].contains(w));
                }
            }
        }
    }

    #[test]
    fn phrases_use_own_words() {
        let h = small();
        for t in 0..h.len() {
            for p in &h.phrases[t] {
                assert!(p.len() >= 2);
                for w in p {
                    assert!(h.own_words[t].contains(w), "phrase word outside topic");
                }
            }
        }
    }

    #[test]
    fn invalid_specs_rejected() {
        assert!(GroundTruthHierarchy::generate(&HierarchySpec {
            branching: vec![],
            ..HierarchySpec::default()
        })
        .is_err());
        assert!(GroundTruthHierarchy::generate(&HierarchySpec {
            branching: vec![0],
            ..HierarchySpec::default()
        })
        .is_err());
        assert!(GroundTruthHierarchy::generate(&HierarchySpec {
            words_per_topic: 2,
            ..HierarchySpec::default()
        })
        .is_err());
    }
}
