//! Zipf-distributed sampling over ranked items.

use rand::Rng;

/// A precomputed Zipf sampler over ranks `0..n` with exponent `s`:
/// `P(rank r) ∝ 1 / (r + 1)^s`.
///
/// Natural-language word frequencies, author productivity and venue sizes
/// are all approximately Zipfian, which is why every synthetic generator in
/// this crate draws ranks through this sampler.
///
/// ```
/// use lesm_corpus::synth::Zipf;
///
/// let z = Zipf::new(10, 1.2);
/// assert!(z.pmf(0) > z.pmf(5));
/// let total: f64 = (0..10).map(|r| z.pmf(r)).sum();
/// assert!((total - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct Zipf {
    cumulative: Vec<f64>,
}

impl Zipf {
    /// Builds a sampler over `n` ranks with exponent `s` (`s >= 0`).
    ///
    /// Panics if `n == 0` or `s` is not finite.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one rank");
        assert!(s.is_finite() && s >= 0.0, "Zipf exponent must be finite and non-negative");
        let mut cumulative = Vec::with_capacity(n);
        let mut total = 0.0;
        for r in 0..n {
            total += 1.0 / ((r + 1) as f64).powf(s);
            cumulative.push(total);
        }
        for c in &mut cumulative {
            *c /= total;
        }
        Self { cumulative }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    /// Whether the sampler has zero ranks (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.cumulative.is_empty()
    }

    /// Samples a rank in `0..len()`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        // partition_point returns the first rank whose cumulative mass >= u.
        self.cumulative.partition_point(|&c| c < u).min(self.cumulative.len() - 1)
    }

    /// Probability of rank `r`.
    pub fn pmf(&self, r: usize) -> f64 {
        if r == 0 {
            self.cumulative[0]
        } else {
            self.cumulative[r] - self.cumulative[r - 1]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn pmf_sums_to_one() {
        let z = Zipf::new(10, 1.2);
        let total: f64 = (0..10).map(|r| z.pmf(r)).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rank_zero_is_most_likely() {
        let z = Zipf::new(5, 1.0);
        for r in 1..5 {
            assert!(z.pmf(0) > z.pmf(r));
        }
    }

    #[test]
    fn uniform_when_s_is_zero() {
        let z = Zipf::new(4, 0.0);
        for r in 0..4 {
            assert!((z.pmf(r) - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn samples_follow_ordering() {
        let z = Zipf::new(20, 1.5);
        let mut rng = StdRng::seed_from_u64(42);
        let mut counts = [0usize; 20];
        for _ in 0..20_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[5]);
        assert!(counts[1] > counts[10]);
        assert_eq!(counts.iter().sum::<usize>(), 20_000);
    }
}
