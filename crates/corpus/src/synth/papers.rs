//! Synthetic DBLP-like and NEWS-like corpora.
//!
//! [`SyntheticPapers::generate`] draws a ground-truth topic hierarchy and
//! emits short documents ("titles") plus typed entity links from it. The
//! generator reproduces the statistical signals the dissertation's methods
//! exploit:
//!
//! * topical words and *contiguous* topical phrases (for CATHY / ToPMine);
//! * entity pools attached at a configurable tree level — venues at the top
//!   level (discriminative for areas, useless for subareas, cf. Fig 3.8),
//!   authors at the leaves;
//! * "prolific" shared entities spanning many topics (the stars that purity
//!   must demote in Table 5.3);
//! * background words and cross-topic mixing noise.

use crate::doc::{Corpus, Doc, EntityRef};
use crate::synth::hierarchy::{GroundTruthHierarchy, HierarchySpec};
use crate::synth::zipf::Zipf;
use crate::CorpusError;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of one entity type in the generator.
#[derive(Debug, Clone)]
pub struct EntitySpec {
    /// Display name ("author", "venue", "person", "location").
    pub name: String,
    /// Tree level the pools attach to (0 = root, `branching.len()` = leaves).
    pub level: usize,
    /// Dedicated entities per node at `level`.
    pub pool_per_node: usize,
    /// Prolific entities shared across all topics.
    pub shared_pool: usize,
    /// Min/max entities of this type linked to a document.
    pub per_doc: (usize, usize),
    /// Probability an entity is drawn from the document's own-topic pool.
    pub dedication: f64,
    /// Zipf exponent over the pool (entity productivity skew).
    pub zipf_s: f64,
}

/// Configuration for [`SyntheticPapers::generate`].
#[derive(Debug, Clone)]
pub struct PapersConfig {
    /// Topic tree shape and vocabulary sizes.
    pub hierarchy: HierarchySpec,
    /// Number of documents to emit.
    pub n_docs: usize,
    /// Min/max title length in tokens.
    pub title_len: (usize, usize),
    /// Probability each emission step produces a phrase (contiguous tokens).
    pub phrase_prob: f64,
    /// Probability a unigram is a background word.
    pub background_prob: f64,
    /// Probability a unigram leaks from a random other leaf topic.
    pub mix_noise: f64,
    /// Probability that a phrase emission sourced at the *root* actually
    /// produces a phrase (vs falling back to a unigram). Stopword-filtered
    /// title corpora have almost no corpus-wide phrases, so flat labeled
    /// corpora set this to 0.
    pub root_phrase_prob: f64,
    /// Entity types to attach.
    pub entity_specs: Vec<EntitySpec>,
    /// Publication-year range (inclusive).
    pub years: (i32, i32),
    /// RNG seed.
    pub seed: u64,
}

impl PapersConfig {
    /// DBLP-like preset: 2-level hierarchy (areas / subareas), authors at the
    /// leaves, venues at level 1 — matching the schema of §3.3.
    pub fn dblp(n_docs: usize, seed: u64) -> Self {
        Self {
            hierarchy: HierarchySpec { branching: vec![5, 4], ..HierarchySpec::default() },
            n_docs,
            title_len: (6, 12),
            phrase_prob: 0.55,
            background_prob: 0.12,
            mix_noise: 0.05,
            root_phrase_prob: 1.0,
            entity_specs: vec![
                EntitySpec {
                    name: "author".into(),
                    level: 2,
                    pool_per_node: 30,
                    shared_pool: 12,
                    per_doc: (2, 4),
                    dedication: 0.85,
                    zipf_s: 1.1,
                },
                EntitySpec {
                    name: "venue".into(),
                    level: 1,
                    pool_per_node: 4,
                    shared_pool: 1,
                    per_doc: (1, 1),
                    dedication: 0.92,
                    zipf_s: 0.8,
                },
            ],
            years: (2000, 2013),
            seed,
        }
    }

    /// Serving-scale DBLP-like preset: a wider, richer tree (8 areas × 4
    /// subareas) with larger per-topic vocabularies and entity pools, so
    /// corpora in the tens of thousands of documents stay topically
    /// diverse instead of saturating a small vocabulary. Used by the
    /// serve/replay benchmarks together with
    /// `lesm_core::model_from_truth`, which skips EM entirely.
    pub fn dblp_large(n_docs: usize, seed: u64) -> Self {
        let mut cfg = Self::dblp(n_docs, seed);
        cfg.hierarchy = HierarchySpec {
            branching: vec![8, 4],
            words_per_topic: 40,
            phrases_per_topic: 12,
            background_words: 200,
            zipf_s: 1.0,
        };
        cfg.entity_specs[0].pool_per_node = 60; // authors per subarea
        cfg.entity_specs[0].shared_pool = 40;
        cfg.entity_specs[1].pool_per_node = 6; // venues per area
        cfg.entity_specs[1].shared_pool = 2;
        cfg
    }

    /// NEWS-like preset: 16 flat top stories, noisy automatically-extracted
    /// person/location links — matching the NEWS dataset of §3.3.
    pub fn news(n_docs: usize, seed: u64) -> Self {
        Self {
            hierarchy: HierarchySpec {
                branching: vec![16],
                words_per_topic: 50,
                phrases_per_topic: 10,
                background_words: 80,
                zipf_s: 1.0,
            },
            n_docs,
            title_len: (8, 16),
            phrase_prob: 0.45,
            background_prob: 0.2,
            mix_noise: 0.08,
            root_phrase_prob: 0.5,
            entity_specs: vec![
                EntitySpec {
                    name: "person".into(),
                    level: 1,
                    pool_per_node: 20,
                    shared_pool: 10,
                    per_doc: (1, 3),
                    dedication: 0.7,
                    zipf_s: 1.0,
                },
                EntitySpec {
                    name: "location".into(),
                    level: 1,
                    pool_per_node: 15,
                    shared_pool: 8,
                    per_doc: (1, 3),
                    dedication: 0.65,
                    zipf_s: 1.0,
                },
            ],
            years: (2012, 2013),
            seed,
        }
    }
}

/// Ground truth emitted alongside the corpus.
#[derive(Debug, Clone)]
pub struct PapersGroundTruth {
    /// The latent topic hierarchy documents were sampled from.
    pub hierarchy: GroundTruthHierarchy,
    /// Leaf topic (node index) of every document.
    pub doc_leaf: Vec<usize>,
    /// Home node per entity, per type (`None` for shared/prolific entities).
    pub entity_home: Vec<Vec<Option<usize>>>,
    /// Empirical entity→leaf link counts, per type: `counts[etype][id]` is a
    /// sparse `(leaf node, count)` list.
    pub entity_leaf_counts: Vec<Vec<Vec<(usize, u32)>>>,
}

impl PapersGroundTruth {
    /// The ground-truth topic node owning word `w`, if any (background words
    /// return `None`).
    pub fn word_topic(&self, w: u32) -> Option<usize> {
        for (t, words) in self.hierarchy.own_words.iter().enumerate() {
            if words.contains(&w) {
                return Some(t);
            }
        }
        None
    }

    /// Normalized leaf distribution for an entity.
    pub fn entity_leaf_dist(&self, etype: usize, id: u32) -> Vec<(usize, f64)> {
        let counts = &self.entity_leaf_counts[etype][id as usize];
        let total: u32 = counts.iter().map(|&(_, c)| c).sum();
        if total == 0 {
            return Vec::new();
        }
        counts.iter().map(|&(l, c)| (l, c as f64 / total as f64)).collect()
    }
}

/// A generated corpus plus its ground truth.
#[derive(Debug, Clone)]
pub struct SyntheticPapers {
    /// The observable data.
    pub corpus: Corpus,
    /// The latent structure it was sampled from.
    pub truth: PapersGroundTruth,
}

impl SyntheticPapers {
    /// Generates a corpus per `config`.
    pub fn generate(config: &PapersConfig) -> Result<Self, CorpusError> {
        if config.n_docs == 0 {
            return Err(CorpusError::InvalidConfig("n_docs must be positive".into()));
        }
        if config.title_len.0 < 2 || config.title_len.0 > config.title_len.1 {
            return Err(CorpusError::InvalidConfig("bad title_len range".into()));
        }
        let max_level = config.hierarchy.branching.len();
        for es in &config.entity_specs {
            if es.level > max_level {
                return Err(CorpusError::InvalidConfig(format!(
                    "entity type {} attaches at level {} but tree depth is {max_level}",
                    es.name, es.level
                )));
            }
            if es.per_doc.0 > es.per_doc.1 {
                return Err(CorpusError::InvalidConfig("bad per_doc range".into()));
            }
        }
        let hierarchy = GroundTruthHierarchy::generate(&config.hierarchy)?;
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut corpus = Corpus::new();
        corpus.vocab = hierarchy.vocab.clone();

        // --- Entity pools -------------------------------------------------
        // pools[etype][node-at-level index] = Vec<entity id>; shared ids too.
        let mut pools: Vec<Vec<Vec<u32>>> = Vec::new();
        let mut shared: Vec<Vec<u32>> = Vec::new();
        let mut entity_home: Vec<Vec<Option<usize>>> = Vec::new();
        let mut level_nodes: Vec<Vec<usize>> = Vec::new();
        for (t_idx, es) in config.entity_specs.iter().enumerate() {
            let etype = corpus.entities.add_type(&es.name);
            debug_assert_eq!(etype, t_idx);
            let nodes_at: Vec<usize> =
                (0..hierarchy.len()).filter(|&n| hierarchy.nodes[n].level == es.level).collect();
            let mut type_pools = Vec::with_capacity(nodes_at.len());
            let mut homes = Vec::new();
            for &node in &nodes_at {
                let mut pool = Vec::with_capacity(es.pool_per_node);
                for i in 0..es.pool_per_node {
                    let e = corpus
                        .entities
                        .intern(etype, &format!("{}_{}_{}", es.name, hierarchy.nodes[node].path, i))?;
                    pool.push(e.id);
                    homes.push(Some(node));
                }
                type_pools.push(pool);
            }
            let mut shared_pool = Vec::with_capacity(es.shared_pool);
            for i in 0..es.shared_pool {
                let e = corpus.entities.intern(etype, &format!("{}_shared_{}", es.name, i))?;
                shared_pool.push(e.id);
                homes.push(None);
            }
            pools.push(type_pools);
            shared.push(shared_pool);
            entity_home.push(homes);
            level_nodes.push(nodes_at);
        }

        // --- Documents -----------------------------------------------------
        let n_leaves = hierarchy.leaves.len();
        let leaf_zipf = Zipf::new(n_leaves, 0.3); // mild popularity skew over topics
        let mut doc_leaf = Vec::with_capacity(config.n_docs);
        let mut entity_leaf_counts: Vec<Vec<Vec<(usize, u32)>>> = config
            .entity_specs
            .iter()
            .enumerate()
            .map(|(t, _)| vec![Vec::new(); corpus.entities.count(t)])
            .collect();

        for _ in 0..config.n_docs {
            let leaf = hierarchy.leaves[leaf_zipf.sample(&mut rng)];
            let path = hierarchy.path_nodes(leaf);
            let target_len = rng.gen_range(config.title_len.0..=config.title_len.1);
            let mut tokens = Vec::with_capacity(target_len + 2);
            while tokens.len() < target_len {
                let node = sample_path_node(&path, &mut rng);
                let phrase_allowed = node != 0 || rng.gen_bool(config.root_phrase_prob);
                if phrase_allowed && rng.gen_bool(config.phrase_prob) {
                    let ps = &hierarchy.phrases[node];
                    if !ps.is_empty() {
                        let p = &ps[rng.gen_range(0..ps.len())];
                        tokens.extend_from_slice(p);
                        continue;
                    }
                }
                // Unigram emission.
                let w = if rng.gen_bool(config.background_prob) && !hierarchy.background.is_empty()
                {
                    hierarchy.background[rng.gen_range(0..hierarchy.background.len())]
                } else if rng.gen_bool(config.mix_noise) {
                    let other = hierarchy.leaves[rng.gen_range(0..n_leaves)];
                    let words = &hierarchy.own_words[other];
                    words[hierarchy.word_zipf.sample(&mut rng)]
                } else {
                    let words = &hierarchy.own_words[node];
                    words[hierarchy.word_zipf.sample(&mut rng)]
                };
                tokens.push(w);
            }
            let year = rng.gen_range(config.years.0..=config.years.1);
            let mut doc = Doc::from_tokens(tokens);
            doc.year = Some(year);
            doc.label = hierarchy.leaf_index(leaf).map(|l| l as u32);

            // Entities.
            for (etype, es) in config.entity_specs.iter().enumerate() {
                let count = rng.gen_range(es.per_doc.0..=es.per_doc.1);
                // The document's ancestor node at this type's level.
                let own_node = path[es.level.min(path.len() - 1)];
                let own_pool_idx =
                    level_nodes[etype].iter().position(|&n| n == own_node).unwrap_or(0);
                let pool_zipf = Zipf::new(es.pool_per_node.max(1), es.zipf_s);
                let mut chosen = Vec::with_capacity(count);
                let mut guard = 0;
                while chosen.len() < count && guard < count * 10 {
                    guard += 1;
                    let id = if rng.gen_bool(es.dedication) {
                        pools[etype][own_pool_idx][pool_zipf.sample(&mut rng)]
                    } else if !shared[etype].is_empty() && rng.gen_bool(0.5) {
                        shared[etype][rng.gen_range(0..shared[etype].len())]
                    } else {
                        let other = rng.gen_range(0..pools[etype].len());
                        pools[etype][other][pool_zipf.sample(&mut rng)]
                    };
                    if !chosen.contains(&id) {
                        chosen.push(id);
                    }
                }
                for id in chosen {
                    doc.entities.push(EntityRef::new(etype, id));
                    bump(&mut entity_leaf_counts[etype][id as usize], leaf);
                }
            }
            doc_leaf.push(leaf);
            corpus.docs.push(doc);
        }

        Ok(Self {
            corpus,
            truth: PapersGroundTruth { hierarchy, doc_leaf, entity_home, entity_leaf_counts },
        })
    }
}

/// Samples a node from a root-to-leaf path, biased toward the leaf
/// (leaf 60%, its parent 30%, remaining mass split among higher ancestors).
///
/// The 30% parent share is the hierarchical "glue": sibling leaves share
/// their parent's vocabulary the way DBLP subareas share area terminology,
/// which is what makes top-down construction recover coarse topics first.
fn sample_path_node<R: Rng + ?Sized>(path: &[usize], rng: &mut R) -> usize {
    let n = path.len();
    if n == 1 {
        return path[0];
    }
    let u: f64 = rng.gen();
    if n == 2 {
        // Flat hierarchy: the root is pure background glue. Stopword-
        // filtered titles carry little corpus-wide vocabulary, so the glue
        // share is small (the labeled-corpus / MI_K setting).
        return if u < 0.88 { path[1] } else { path[0] };
    }
    if u < 0.6 {
        path[n - 1]
    } else if u < 0.9 {
        path[n - 2]
    } else {
        path[rng.gen_range(0..n - 2)]
    }
}

/// Increments the count for `leaf` in a sparse `(leaf, count)` list.
fn bump(counts: &mut Vec<(usize, u32)>, leaf: usize) {
    if let Some(entry) = counts.iter_mut().find(|(l, _)| *l == leaf) {
        entry.1 += 1;
    } else {
        counts.push((leaf, 1));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> SyntheticPapers {
        let mut cfg = PapersConfig::dblp(300, 11);
        cfg.hierarchy.branching = vec![3, 2];
        cfg.hierarchy.words_per_topic = 12;
        cfg.hierarchy.phrases_per_topic = 4;
        cfg.entity_specs[0].pool_per_node = 8;
        cfg.entity_specs[1].pool_per_node = 2;
        SyntheticPapers::generate(&cfg).unwrap()
    }

    #[test]
    fn shapes_are_consistent() {
        let s = tiny();
        assert_eq!(s.corpus.num_docs(), 300);
        assert_eq!(s.truth.doc_leaf.len(), 300);
        assert_eq!(s.corpus.entities.num_types(), 2);
        for d in &s.corpus.docs {
            assert!(d.tokens.len() >= 6);
            assert!(d.year.is_some());
            // Exactly one venue.
            assert_eq!(d.entities_of(1).count(), 1);
            let na = d.entities_of(0).count();
            assert!((2..=4).contains(&na), "got {na} authors");
        }
    }

    #[test]
    fn deterministic_for_same_seed() {
        let a = tiny();
        let b = tiny();
        assert_eq!(a.corpus.docs[7].tokens, b.corpus.docs[7].tokens);
        assert_eq!(a.truth.doc_leaf, b.truth.doc_leaf);
    }

    #[test]
    fn doc_words_mostly_from_doc_topic_path() {
        let s = tiny();
        let mut on_path = 0usize;
        let mut total = 0usize;
        for (d, &leaf) in s.corpus.docs.iter().zip(&s.truth.doc_leaf) {
            let path = s.truth.hierarchy.path_nodes(leaf);
            for &w in &d.tokens {
                total += 1;
                match s.truth.word_topic(w) {
                    Some(t) if path.contains(&t) => on_path += 1,
                    None => on_path += 1, // background words don't violate topicality
                    _ => {}
                }
            }
        }
        let frac = on_path as f64 / total as f64;
        assert!(frac > 0.85, "only {frac:.3} of tokens on-topic");
    }

    #[test]
    fn dedicated_entities_concentrate_on_home_subtree() {
        let s = tiny();
        let mut consistent = 0usize;
        let mut checked = 0usize;
        for (id, home) in s.truth.entity_home[0].iter().enumerate() {
            let Some(home) = home else { continue };
            let dist = s.truth.entity_leaf_dist(0, id as u32);
            if dist.is_empty() {
                continue;
            }
            checked += 1;
            // The modal leaf should be the home leaf for most dedicated authors.
            let (best_leaf, _) = dist
                .iter()
                .copied()
                .max_by(|a, b| a.1.total_cmp(&b.1))
                .unwrap();
            if best_leaf == *home {
                consistent += 1;
            }
        }
        assert!(checked > 10);
        assert!(
            consistent as f64 / checked as f64 > 0.7,
            "only {consistent}/{checked} authors concentrated at home"
        );
    }

    #[test]
    fn invalid_configs_rejected() {
        let mut cfg = PapersConfig::dblp(10, 1);
        cfg.n_docs = 0;
        assert!(SyntheticPapers::generate(&cfg).is_err());
        let mut cfg = PapersConfig::dblp(10, 1);
        cfg.entity_specs[0].level = 9;
        assert!(SyntheticPapers::generate(&cfg).is_err());
        let mut cfg = PapersConfig::dblp(10, 1);
        cfg.title_len = (5, 3);
        assert!(SyntheticPapers::generate(&cfg).is_err());
    }

    #[test]
    fn phrases_appear_contiguously() {
        let s = tiny();
        // Pick a ground-truth leaf phrase and verify it occurs contiguously
        // somewhere in the corpus.
        let leaf = s.truth.hierarchy.leaves[0];
        let phrase = &s.truth.hierarchy.phrases[leaf][0];
        let mut found = false;
        for d in &s.corpus.docs {
            if d.tokens.windows(phrase.len()).any(|w| w == phrase.as_slice()) {
                found = true;
                break;
            }
        }
        assert!(found, "ground-truth phrase never emitted contiguously");
    }
}
