//! Synthetic academic genealogy (the Mathematics-Genealogy stand-in for the
//! TPFG experiments of §6.1.6).
//!
//! The generator first draws an advisor forest with per-author career
//! timelines, then emits paper records that carry the temporal signals TPFG
//! exploits:
//!
//! * an advisor always starts publishing years before the advisee
//!   (Assumption 6.2);
//! * during the advising interval the pair's co-publication count rises
//!   (rule R2's Kulczynski increase) and the advisor out-publishes the
//!   advisee (positive imbalance ratio, rule R1);
//! * after graduation the collaboration decays;
//! * noise collaborations with contemporaries create false candidates.

use crate::CorpusError;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One synthetic paper: a year and its author list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GenPaper {
    /// Publication year.
    pub year: i32,
    /// Author ids (indices in `0..n_authors`).
    pub authors: Vec<u32>,
}

/// Configuration for [`Genealogy::generate`].
#[derive(Debug, Clone)]
pub struct GenealogyConfig {
    /// Number of authors.
    pub n_authors: usize,
    /// Career-start era (inclusive years).
    pub era: (i32, i32),
    /// Advising duration range in years.
    pub advising_years: (u32, u32),
    /// Expected random (non-advising) collaborations per author-year.
    pub coauthor_noise: f64,
    /// Maximum simultaneous advisees per advisor.
    pub max_advisees: usize,
    /// Probability an author also gets a *confounder*: a senior
    /// collaborator (not the advisor) with a sustained multi-year
    /// co-publication burst that passes the R1–R4 filters. Confounders are
    /// what makes the task non-trivial (postdoc hosts, senior co-authors).
    pub confounder_prob: f64,
    /// Probability the advisor's co-publications are dropped from the
    /// record (simulating incomplete bibliographies; bounds every method's
    /// achievable recall).
    pub missing_prob: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for GenealogyConfig {
    fn default() -> Self {
        Self {
            n_authors: 300,
            era: (1970, 2010),
            advising_years: (4, 6),
            coauthor_noise: 0.35,
            max_advisees: 6,
            confounder_prob: 0.6,
            missing_prob: 0.05,
            seed: 17,
        }
    }
}

/// A generated genealogy: observable papers plus the latent advisor forest.
#[derive(Debug, Clone)]
pub struct Genealogy {
    /// Number of authors.
    pub n_authors: usize,
    /// All generated papers (ascending year order).
    pub papers: Vec<GenPaper>,
    /// Ground-truth advisor of each author (`None` for roots).
    pub advisor: Vec<Option<u32>>,
    /// Ground-truth advising interval `[start, end]` per author.
    pub interval: Vec<Option<(i32, i32)>>,
    /// Career start (first publication year) per author.
    pub start_year: Vec<i32>,
    /// Whether the advising co-publications were dropped from the record
    /// (such authors' advisors are unrecoverable from the data).
    pub missing: Vec<bool>,
}

impl Genealogy {
    /// Generates a genealogy per `config`.
    pub fn generate(config: &GenealogyConfig) -> Result<Self, CorpusError> {
        if config.n_authors < 2 {
            return Err(CorpusError::InvalidConfig("need at least 2 authors".into()));
        }
        if config.era.0 >= config.era.1 {
            return Err(CorpusError::InvalidConfig("era must span at least 2 years".into()));
        }
        if config.advising_years.0 < 1 || config.advising_years.0 > config.advising_years.1 {
            return Err(CorpusError::InvalidConfig("bad advising_years range".into()));
        }
        let n = config.n_authors;
        let mut rng = StdRng::seed_from_u64(config.seed);

        // Career starts, sorted so that author ids increase with start year;
        // this makes "advisor has smaller id" a convenient (not required)
        // invariant for tests.
        let mut start_year: Vec<i32> =
            (0..n).map(|_| rng.gen_range(config.era.0..=config.era.1)).collect();
        start_year.sort_unstable();

        // Advisor forest.
        let mut advisor: Vec<Option<u32>> = vec![None; n];
        let mut interval: Vec<Option<(i32, i32)>> = vec![None; n];
        let mut advisee_count = vec![0usize; n];
        for i in 0..n {
            let s_i = start_year[i];
            // Eligible advisors: started >= 6 years earlier, still active,
            // not over-subscribed.
            let eligible: Vec<usize> = (0..i)
                .filter(|&j| {
                    start_year[j] + 6 <= s_i
                        && start_year[j] + 40 >= s_i
                        && advisee_count[j] < config.max_advisees
                })
                .collect();
            if eligible.is_empty() {
                continue; // a root
            }
            let j = eligible[rng.gen_range(0..eligible.len())];
            advisor[i] = Some(j as u32);
            advisee_count[j] += 1;
            let dur = rng.gen_range(config.advising_years.0..=config.advising_years.1) as i32;
            interval[i] = Some((s_i, s_i + dur - 1));
        }

        // Confounders: a senior non-advisor collaborator with a sustained
        // burst; its intensity is randomized so local measures are
        // sometimes fooled. For authors who later advise students, the
        // burst is placed to overlap their first advisee's start year, so
        // the Assumption 6.1 time constraint (not local evidence) is what
        // rules the confounder out — the signal TPFG exploits and IndMAX
        // cannot.
        let mut first_advisee_start = vec![i32::MAX; n];
        for i in 0..n {
            if let (Some(a), Some((st, _))) = (advisor[i], interval[i]) {
                let a = a as usize;
                first_advisee_start[a] = first_advisee_start[a].min(st);
            }
        }
        let mut confounder: Vec<Option<(u32, i32, i32, u32)>> = vec![None; n]; // (who, st, ed, rate)
        for i in 0..n {
            if advisor[i].is_none() || !rng.gen_bool(config.confounder_prob.clamp(0.0, 1.0)) {
                continue;
            }
            let s_i = start_year[i];
            let candidates: Vec<usize> = (0..n)
                .filter(|&j| {
                    j != i
                        && Some(j as u32) != advisor[i]
                        && start_year[j] + 6 <= s_i
                        && start_year[j] + 40 >= s_i
                })
                .collect();
            if candidates.is_empty() {
                continue;
            }
            let j = candidates[rng.gen_range(0..candidates.len())];
            let dur = rng.gen_range(3..=4);
            let st = if first_advisee_start[i] < i32::MAX {
                (first_advisee_start[i] - rng.gen_range(0..dur)).max(s_i + 1)
            } else {
                s_i + rng.gen_range(1..=8)
            };
            let rate = rng.gen_range(1..=3u32);
            confounder[i] = Some((j as u32, st, st + dur - 1, rate));
        }
        // Missing advisors: the record drops the advising co-publications.
        let missing: Vec<bool> =
            (0..n).map(|_| rng.gen_bool(config.missing_prob.clamp(0.0, 1.0))).collect();

        // Papers.
        let horizon = config.era.1 + 10;
        let mut papers: Vec<GenPaper> = Vec::new();
        for i in 0..n {
            let s_i = start_year[i];
            let active_end = (s_i + 35).min(horizon);
            for y in s_i..=active_end {
                // Confounder co-publications (rising like an advisor's,
                // with yearly jitter).
                if let Some((j, cst, ced, rate)) = confounder[i] {
                    if y >= cst && y <= ced {
                        let base = (1 + (y - cst) as u32).min(rate);
                        let count = base + rng.gen_range(0..=1);
                        for _ in 0..count {
                            papers.push(GenPaper { year: y, authors: vec![i as u32, j] });
                        }
                    }
                }
                // Advising-period co-publications with rising (jittered)
                // count; the first year always produces at least one paper.
                if let (Some(a), Some((st, ed))) = (advisor[i], interval[i]) {
                    if missing[i] {
                        // dropped from the record
                    } else if y >= st && y <= ed {
                        let base = (1 + (y - st)).min(3) as u32;
                        let jitter = rng.gen_range(0..=1u32);
                        let count = if y == st { base.max(1) } else { (base + jitter).saturating_sub(1).max(1) };
                        for _ in 0..count {
                            papers.push(GenPaper { year: y, authors: vec![i as u32, a] });
                        }
                    } else if y > ed && y <= ed + 2 {
                        // Post-graduation decay: occasional joint paper.
                        if rng.gen_bool(0.4) {
                            papers.push(GenPaper { year: y, authors: vec![i as u32, a] });
                        }
                    }
                }
                // Solo output: modest while being advised, larger afterwards.
                let being_advised =
                    matches!(interval[i], Some((st, ed)) if y >= st && y <= ed) && advisor[i].is_some();
                let solo = if being_advised { 1 } else { 2 + ((y - s_i) / 8).clamp(0, 3) };
                for _ in 0..solo {
                    papers.push(GenPaper { year: y, authors: vec![i as u32] });
                }
                // Advisors with current students publish extra (keeps the
                // imbalance ratio positive during advising).
                let has_students = (0..n).any(|k| {
                    advisor[k] == Some(i as u32)
                        && matches!(interval[k], Some((st, ed)) if y >= st && y <= ed)
                });
                if has_students {
                    for _ in 0..2 {
                        papers.push(GenPaper { year: y, authors: vec![i as u32] });
                    }
                }
                // Noise collaborations with contemporaries.
                if rng.gen_bool(config.coauthor_noise.clamp(0.0, 1.0)) {
                    let contemporaries: Vec<usize> = (0..n)
                        .filter(|&k| k != i && start_year[k] <= y && y <= start_year[k] + 35)
                        .collect();
                    if !contemporaries.is_empty() {
                        let k = contemporaries[rng.gen_range(0..contemporaries.len())];
                        papers.push(GenPaper { year: y, authors: vec![i as u32, k as u32] });
                    }
                }
            }
        }
        papers.sort_by_key(|p| p.year);
        Ok(Self { n_authors: n, papers, advisor, interval, start_year, missing })
    }

    /// Number of ground-truth advisor edges.
    pub fn num_relations(&self) -> usize {
        self.advisor.iter().filter(|a| a.is_some()).count()
    }

    /// Verifies the forest is acyclic (always true by construction; used by
    /// property tests).
    pub fn is_acyclic(&self) -> bool {
        for mut cur in 0..self.n_authors {
            let mut steps = 0;
            while let Some(a) = self.advisor[cur] {
                cur = a as usize;
                steps += 1;
                if steps > self.n_authors {
                    return false;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Genealogy {
        Genealogy::generate(&GenealogyConfig { n_authors: 80, ..GenealogyConfig::default() })
            .unwrap()
    }

    #[test]
    fn forest_properties() {
        let g = small();
        assert!(g.is_acyclic());
        assert!(g.num_relations() > 20, "most authors should have advisors");
        for (i, adv) in g.advisor.iter().enumerate() {
            if let Some(a) = adv {
                assert!(
                    g.start_year[*a as usize] + 6 <= g.start_year[i],
                    "advisor must start >= 6 years earlier"
                );
            }
        }
    }

    #[test]
    fn papers_sorted_and_well_formed() {
        let g = small();
        assert!(!g.papers.is_empty());
        for w in g.papers.windows(2) {
            assert!(w[0].year <= w[1].year);
        }
        for p in &g.papers {
            assert!(!p.authors.is_empty());
            for &a in &p.authors {
                assert!((a as usize) < g.n_authors);
            }
        }
    }

    #[test]
    fn advising_pairs_copublish_with_rising_counts() {
        let g = small();
        let mut checked = 0;
        for i in 0..g.n_authors {
            let (Some(a), Some((st, ed))) = (g.advisor[i], g.interval[i]) else { continue };
            if ed - st < 2 || g.missing[i] {
                continue;
            }
            let count_in = |y: i32| {
                g.papers
                    .iter()
                    .filter(|p| {
                        p.year == y
                            && p.authors.contains(&(i as u32))
                            && p.authors.contains(&a)
                    })
                    .count()
            };
            assert!(count_in(st) >= 1);
            assert!(count_in(st + 2) >= count_in(st), "co-publication should not shrink early");
            checked += 1;
        }
        assert!(checked > 5);
    }

    #[test]
    fn deterministic() {
        let a = small();
        let b = small();
        assert_eq!(a.advisor, b.advisor);
        assert_eq!(a.papers.len(), b.papers.len());
    }

    #[test]
    fn invalid_configs_rejected() {
        assert!(Genealogy::generate(&GenealogyConfig {
            n_authors: 1,
            ..GenealogyConfig::default()
        })
        .is_err());
        assert!(Genealogy::generate(&GenealogyConfig {
            era: (2000, 2000),
            ..GenealogyConfig::default()
        })
        .is_err());
        assert!(Genealogy::generate(&GenealogyConfig {
            advising_years: (5, 3),
            ..GenealogyConfig::default()
        })
        .is_err());
    }
}
