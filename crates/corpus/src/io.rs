//! Loading corpora from delimited text — the entry point for users with
//! real data files rather than the synthetic generators.
//!
//! The format is one document per line:
//!
//! ```text
//! title text<TAB>etype=name|etype=name|...<TAB>year
//! ```
//!
//! The entity and year fields are optional; `etype` names are registered
//! on first sight. Example line:
//!
//! ```text
//! query processing in database systems\tauthor=alice|author=bob|venue=SIGMOD\t2004
//! ```

use crate::doc::Corpus;
use crate::CorpusError;
use std::io::BufRead;

/// Options for [`load_tsv`].
#[derive(Debug, Clone)]
pub struct LoadOptions {
    /// Drop stopwords during tokenization.
    pub remove_stopwords: bool,
    /// Apply the light stemmer.
    pub stem: bool,
}

impl Default for LoadOptions {
    fn default() -> Self {
        Self { remove_stopwords: true, stem: false }
    }
}

/// Loads a corpus from tab-separated lines (see module docs for the
/// format). Blank lines and `#` comments are skipped.
pub fn load_tsv<R: BufRead>(reader: R, options: &LoadOptions) -> Result<Corpus, CorpusError> {
    let mut corpus = Corpus::new();
    append_tsv(&mut corpus, reader, options)?;
    Ok(corpus)
}

/// Appends TSV documents to an existing corpus — the incremental-update
/// ingest path. Interning is append-only, so every word, entity, and
/// entity-type id the base corpus assigned stays stable; new surface
/// forms receive fresh ids after the existing ranges. Returns the number
/// of documents appended.
///
/// On error the corpus may retain documents appended before the failing
/// line; callers that need all-or-nothing semantics should append into a
/// clone.
pub fn append_tsv<R: BufRead>(
    corpus: &mut Corpus,
    reader: R,
    options: &LoadOptions,
) -> Result<usize, CorpusError> {
    let docs_before = corpus.docs.len();
    for (lineno, line) in reader.lines().enumerate() {
        let line = line.map_err(|e| {
            CorpusError::InvalidConfig(format!("I/O error at line {}: {e}", lineno + 1))
        })?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut fields = line.split('\t');
        let text = fields.next().unwrap_or("");
        let tokens: Vec<u32> = crate::text::tokenize(text)
            .map(|t| crate::text::lowercase(t).into_owned())
            .filter(|t| !options.remove_stopwords || !crate::text::is_stopword(t))
            .map(|t| if options.stem { crate::text::stem(&t) } else { t })
            .map(|t| corpus.vocab.intern(&t))
            .collect();
        corpus.docs.push(crate::doc::Doc::from_tokens(tokens));
        let d = corpus.docs.len() - 1;
        if let Some(entities) = fields.next() {
            for spec in entities.split('|').filter(|s| !s.is_empty()) {
                let Some((etype_name, name)) = spec.split_once('=') else {
                    return Err(CorpusError::InvalidConfig(format!(
                        "line {}: entity spec '{spec}' is not etype=name",
                        lineno + 1
                    )));
                };
                let etype = match (0..corpus.entities.num_types())
                    .find(|&t| corpus.entities.type_name(t) == Some(etype_name))
                {
                    Some(t) => t,
                    None => corpus.entities.add_type(etype_name),
                };
                corpus.link_entity(d, etype, name)?;
            }
        }
        if let Some(year) = fields.next() {
            if !year.is_empty() {
                let y: i32 = year.trim().parse().map_err(|_| {
                    CorpusError::InvalidConfig(format!(
                        "line {}: year '{year}' is not an integer",
                        lineno + 1
                    ))
                })?;
                corpus.docs[d].year = Some(y);
            }
        }
    }
    Ok(corpus.docs.len() - docs_before)
}

/// Writes a corpus back to the TSV format [`load_tsv`] reads.
///
/// Token ids are rendered through the vocabulary; entity links become
/// `etype=name` specs. Documents round-trip up to tokenization (the writer
/// emits already-normalized tokens).
pub fn write_tsv<W: std::io::Write>(corpus: &Corpus, mut writer: W) -> std::io::Result<()> {
    for doc in &corpus.docs {
        let text = corpus.vocab.render(&doc.tokens);
        let entities: Vec<String> = doc
            .entities
            .iter()
            .map(|e| {
                format!(
                    "{}={}",
                    corpus.entities.type_name(e.etype).unwrap_or("entity"),
                    corpus.entities.name(*e)
                )
            })
            .collect();
        let year = doc.year.map(|y| y.to_string()).unwrap_or_default();
        writeln!(writer, "{text}\t{}\t{year}", entities.join("|"))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
# a comment line
query processing in database systems\tauthor=alice|author=bob|venue=SIGMOD\t2004

ranking models for web search\tauthor=carol|venue=SIGIR\t2006
plain text only
";

    #[test]
    fn loads_documents_entities_and_years() {
        let c = load_tsv(SAMPLE.as_bytes(), &LoadOptions::default()).unwrap();
        assert_eq!(c.num_docs(), 3);
        // Stopword "in"/"for" removed.
        assert_eq!(c.render_doc(0), "query processing database systems");
        assert_eq!(c.docs[0].year, Some(2004));
        assert_eq!(c.entities.num_types(), 2);
        let author = 0;
        assert_eq!(c.docs[0].entities_of(author).count(), 2);
        assert_eq!(c.entities.name(c.docs[1].entities[0]), "carol");
        // The text-only doc has no entities or year.
        assert!(c.docs[2].entities.is_empty());
        assert_eq!(c.docs[2].year, None);
    }

    #[test]
    fn stemming_option_applies() {
        let c = load_tsv(
            "mining frequent patterns\t\t".as_bytes(),
            &LoadOptions { remove_stopwords: true, stem: true },
        )
        .unwrap();
        assert_eq!(c.render_doc(0), "min frequent pattern");
    }

    #[test]
    fn malformed_entity_spec_is_an_error() {
        let r = load_tsv("title\tnot-a-spec\t".as_bytes(), &LoadOptions::default());
        assert!(r.is_err());
    }

    #[test]
    fn malformed_year_is_an_error() {
        let r = load_tsv("title\t\tnot-a-year".as_bytes(), &LoadOptions::default());
        assert!(r.is_err());
    }

    #[test]
    fn tsv_roundtrips() {
        let c = load_tsv(SAMPLE.as_bytes(), &LoadOptions::default()).unwrap();
        let mut buf = Vec::new();
        write_tsv(&c, &mut buf).unwrap();
        let back = load_tsv(buf.as_slice(), &LoadOptions::default()).unwrap();
        assert_eq!(back.num_docs(), c.num_docs());
        for d in 0..c.num_docs() {
            assert_eq!(back.render_doc(d), c.render_doc(d));
            assert_eq!(back.docs[d].year, c.docs[d].year);
            assert_eq!(back.docs[d].entities.len(), c.docs[d].entities.len());
        }
    }

    #[test]
    fn append_tsv_keeps_base_ids_stable_and_extends_the_ranges() {
        let mut c = load_tsv(SAMPLE.as_bytes(), &LoadOptions::default()).unwrap();
        let base_docs = c.num_docs();
        let base_words = c.num_words();
        let base_authors = c.entities.count(0);
        let query_id = c.vocab.get("query").unwrap();
        let delta = "query rewriting engines\tauthor=alice|author=dave\t2010\n";
        let appended =
            append_tsv(&mut c, delta.as_bytes(), &LoadOptions::default()).unwrap();
        assert_eq!(appended, 1);
        assert_eq!(c.num_docs(), base_docs + 1);
        // Old ids unchanged; new surface forms extend the ranges.
        assert_eq!(c.vocab.get("query"), Some(query_id));
        assert!(c.num_words() > base_words);
        assert_eq!(c.entities.count(0), base_authors + 1);
        // "alice" resolved to her existing id.
        assert_eq!(c.docs[base_docs].entities[0], c.docs[0].entities[0]);
        assert_eq!(c.docs[base_docs].year, Some(2010));
    }

    #[test]
    fn shared_entity_ids_across_docs() {
        let two = "a b\tauthor=x\t\nc d\tauthor=x\t\n";
        let c = load_tsv(two.as_bytes(), &LoadOptions::default()).unwrap();
        assert_eq!(c.docs[0].entities[0], c.docs[1].entities[0]);
        assert_eq!(c.entities.count(0), 1);
    }
}
