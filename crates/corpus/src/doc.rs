//! Documents, corpora and attached typed entities.

use crate::vocab::Vocabulary;
use crate::CorpusError;

/// A reference to an entity: `(type index, entity id within that type)`.
///
/// Type indices are positions in an [`EntityCatalog`]; e.g. in the DBLP-like
/// schema, type 0 is `author` and type 1 is `venue`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EntityRef {
    /// Index of the entity type in the corpus' [`EntityCatalog`].
    pub etype: usize,
    /// Id of the entity within its type's vocabulary.
    pub id: u32,
}

impl EntityRef {
    /// Convenience constructor.
    pub fn new(etype: usize, id: u32) -> Self {
        Self { etype, id }
    }
}

/// Per-type entity name tables.
#[derive(Debug, Clone, Default)]
pub struct EntityCatalog {
    type_names: Vec<String>,
    tables: Vec<Vocabulary>,
}

impl EntityCatalog {
    /// Creates an empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers an entity type (e.g. `"author"`), returning its index.
    pub fn add_type(&mut self, name: &str) -> usize {
        self.type_names.push(name.to_owned());
        self.tables.push(Vocabulary::new());
        self.type_names.len() - 1
    }

    /// Number of registered entity types.
    pub fn num_types(&self) -> usize {
        self.type_names.len()
    }

    /// Name of entity type `t`.
    pub fn type_name(&self, t: usize) -> Option<&str> {
        self.type_names.get(t).map(String::as_str)
    }

    /// Interns an entity name under type `t`.
    pub fn intern(&mut self, t: usize, name: &str) -> Result<EntityRef, CorpusError> {
        let table = self.tables.get_mut(t).ok_or(CorpusError::UnknownEntityType(t))?;
        Ok(EntityRef::new(t, table.intern(name)))
    }

    /// The name table for type `t`.
    pub fn table(&self, t: usize) -> Option<&Vocabulary> {
        self.tables.get(t)
    }

    /// Number of entities of type `t` (0 for unknown types).
    pub fn count(&self, t: usize) -> usize {
        self.tables.get(t).map_or(0, Vocabulary::len)
    }

    /// Display name of an entity reference.
    pub fn name(&self, e: EntityRef) -> &str {
        self.tables
            .get(e.etype)
            .and_then(|t| t.name(e.id))
            .unwrap_or("<unk-entity>")
    }
}

/// One document: a token-id sequence plus weak structure.
#[derive(Debug, Clone, Default)]
pub struct Doc {
    /// Token ids into the corpus vocabulary, in text order.
    pub tokens: Vec<u32>,
    /// Entities linked to the document (authors, venues, persons, ...).
    pub entities: Vec<EntityRef>,
    /// Optional gold category label (labeled corpora only).
    pub label: Option<u32>,
    /// Optional publication year.
    pub year: Option<i32>,
}

impl Doc {
    /// A text-only document.
    pub fn from_tokens(tokens: Vec<u32>) -> Self {
        Self { tokens, ..Self::default() }
    }

    /// Entities of a given type.
    pub fn entities_of(&self, etype: usize) -> impl Iterator<Item = u32> + '_ {
        self.entities.iter().filter(move |e| e.etype == etype).map(|e| e.id)
    }
}

/// A corpus: interned vocabulary, documents, and an entity catalog.
///
/// This is the concrete realization of the dissertation's *text-attached
/// heterogeneous information network* (Definition 1): documents are the
/// text-attached nodes, and `Doc::entities` are the explicit links to typed
/// entity nodes.
///
/// ```
/// use lesm_corpus::Corpus;
///
/// let mut corpus = Corpus::new();
/// let author = corpus.entities.add_type("author");
/// let d = corpus.push_text("Query processing in database systems");
/// corpus.link_entity(d, author, "alice").unwrap();
/// assert_eq!(corpus.num_docs(), 1);
/// assert_eq!(corpus.render_doc(d), "query processing in database systems");
/// assert_eq!(corpus.docs[d].entities_of(author).count(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Corpus {
    /// Word vocabulary shared by every document.
    pub vocab: Vocabulary,
    /// The documents.
    pub docs: Vec<Doc>,
    /// Typed entity name tables.
    pub entities: EntityCatalog,
}

impl Corpus {
    /// Creates an empty corpus.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of documents.
    pub fn num_docs(&self) -> usize {
        self.docs.len()
    }

    /// Vocabulary size.
    pub fn num_words(&self) -> usize {
        self.vocab.len()
    }

    /// Total token count across documents.
    pub fn num_tokens(&self) -> usize {
        self.docs.iter().map(|d| d.tokens.len()).sum()
    }

    /// Adds a document built from raw text using [`crate::text::tokenize`]
    /// (tokens are lowercased before interning).
    pub fn push_text(&mut self, text: &str) -> usize {
        let tokens = crate::text::tokenize(text)
            .map(|w| self.vocab.intern(&crate::text::lowercase(w)))
            .collect();
        self.docs.push(Doc::from_tokens(tokens));
        self.docs.len() - 1
    }

    /// Links an entity (by type index and name) to document `doc`.
    pub fn link_entity(&mut self, doc: usize, etype: usize, name: &str) -> Result<EntityRef, CorpusError> {
        if doc >= self.docs.len() {
            return Err(CorpusError::DocOutOfRange(doc));
        }
        let e = self.entities.intern(etype, name)?;
        self.docs[doc].entities.push(e);
        Ok(e)
    }

    /// Per-word document frequency (number of docs containing each word).
    pub fn doc_freq(&self) -> Vec<u32> {
        let mut df = vec![0u32; self.vocab.len()];
        let mut seen = vec![u32::MAX; self.vocab.len()];
        for (i, d) in self.docs.iter().enumerate() {
            for &w in &d.tokens {
                let w = w as usize;
                if seen[w] != i as u32 {
                    seen[w] = i as u32;
                    df[w] += 1;
                }
            }
        }
        df
    }

    /// Per-word total term frequency.
    pub fn term_freq(&self) -> Vec<u64> {
        let mut tf = vec![0u64; self.vocab.len()];
        for d in &self.docs {
            for &w in &d.tokens {
                tf[w as usize] += 1;
            }
        }
        tf
    }

    /// Renders document `doc` back to a string (debugging and case studies).
    pub fn render_doc(&self, doc: usize) -> String {
        self.docs
            .get(doc)
            .map(|d| self.vocab.render(&d.tokens))
            .unwrap_or_default()
    }

    /// Returns a copy of the corpus with rare and ubiquitous words removed
    /// (the standard preprocessing for real corpora): words must appear in
    /// at least `min_df` documents and at most `max_df_frac` of them.
    ///
    /// Word ids are re-interned densely; entity links, labels and years are
    /// preserved. The returned map gives `old id -> new id` for callers
    /// that must translate external references.
    pub fn prune_vocabulary(&self, min_df: u32, max_df_frac: f64) -> (Corpus, Vec<Option<u32>>) {
        let df = self.doc_freq();
        let max_df = (self.num_docs() as f64 * max_df_frac.clamp(0.0, 1.0)).ceil() as u32;
        let mut out = Corpus::new();
        out.entities = self.entities.clone();
        let mut remap: Vec<Option<u32>> = vec![None; self.vocab.len()];
        for (old_id, name) in self.vocab.iter() {
            let f = df[old_id as usize];
            if f >= min_df && f <= max_df {
                remap[old_id as usize] = Some(out.vocab.intern(name));
            }
        }
        for doc in &self.docs {
            let tokens: Vec<u32> =
                doc.tokens.iter().filter_map(|&w| remap[w as usize]).collect();
            out.docs.push(Doc {
                tokens,
                entities: doc.entities.clone(),
                label: doc.label,
                year: doc.year,
            });
        }
        (out, remap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_text_interns_tokens() {
        let mut c = Corpus::new();
        let d = c.push_text("Query processing in query engines");
        assert_eq!(d, 0);
        assert_eq!(c.docs[0].tokens.len(), 5);
        // "query" appears twice with the same id.
        assert_eq!(c.docs[0].tokens[0], c.docs[0].tokens[3]);
        assert_eq!(c.num_words(), 4);
    }

    #[test]
    fn entity_linking() {
        let mut c = Corpus::new();
        let author = c.entities.add_type("author");
        let venue = c.entities.add_type("venue");
        let d = c.push_text("query processing");
        let a = c.link_entity(d, author, "alice").unwrap();
        let v = c.link_entity(d, venue, "SIGMOD").unwrap();
        assert_eq!(c.entities.name(a), "alice");
        assert_eq!(c.entities.name(v), "SIGMOD");
        assert_eq!(c.docs[d].entities_of(author).collect::<Vec<_>>(), vec![0]);
        assert!(c.link_entity(5, author, "bob").is_err());
        assert!(c.link_entity(d, 9, "bob").is_err());
    }

    #[test]
    fn doc_freq_counts_documents_not_tokens() {
        let mut c = Corpus::new();
        c.push_text("data data data");
        c.push_text("data mining");
        let data = c.vocab.get("data").unwrap() as usize;
        let mining = c.vocab.get("mining").unwrap() as usize;
        let df = c.doc_freq();
        assert_eq!(df[data], 2);
        assert_eq!(df[mining], 1);
        let tf = c.term_freq();
        assert_eq!(tf[data], 4);
    }

    #[test]
    fn render_roundtrip() {
        let mut c = Corpus::new();
        let d = c.push_text("topic model inference");
        assert_eq!(c.render_doc(d), "topic model inference");
    }

    #[test]
    fn prune_vocabulary_drops_rare_and_ubiquitous_words() {
        let mut c = Corpus::new();
        let author = c.entities.add_type("author");
        // "common" in every doc, "rare" in one, "mid" in half.
        for i in 0..10 {
            let text = if i % 2 == 0 { "common mid" } else { "common" };
            let d = c.push_text(text);
            c.link_entity(d, author, "alice").unwrap();
        }
        c.docs[0].tokens.push(c.vocab.intern("rare"));
        let (pruned, remap) = c.prune_vocabulary(2, 0.8);
        assert_eq!(pruned.num_docs(), 10);
        // "common" (df 10 > 8) and "rare" (df 1 < 2) are gone; "mid" stays.
        assert!(pruned.vocab.get("common").is_none());
        assert!(pruned.vocab.get("rare").is_none());
        assert!(pruned.vocab.get("mid").is_some());
        assert_eq!(pruned.docs[0].tokens.len(), 1);
        assert_eq!(pruned.docs[1].tokens.len(), 0);
        // Entities preserved; remap consistent.
        assert_eq!(pruned.docs[0].entities.len(), 1);
        let mid_old = c.vocab.get("mid").unwrap();
        assert_eq!(remap[mid_old as usize], pruned.vocab.get("mid"));
        let common_old = c.vocab.get("common").unwrap();
        assert_eq!(remap[common_old as usize], None);
    }
}
