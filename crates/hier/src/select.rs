//! Model selection for the number of subtopics (§3.2.3).
//!
//! The dissertation recommends cross-validation with BIC as the
//! small-network fallback. We implement BIC (and AIC) over the full Poisson
//! likelihood of [`crate::em::EmFit`]; `select_k` scans a candidate range
//! and returns the `k` minimizing the penalized criterion.

use crate::em::{CathyHinEm, EdgeState, EmConfig};
use crate::HierError;
use lesm_net::TypedNetwork;

/// Information criterion flavor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Criterion {
    /// Bayesian information criterion (`penalty = |params| ln |E|`).
    Bic,
    /// Akaike information criterion (`penalty = 2 |params|`).
    Aic,
}

/// The BIC score of a fit: `-2 ln L + |V| k ln |E|` (lower is better).
///
/// As in §3.2.3 only the `k`-dependent `|V| * k` part of the parameter
/// count enters.
pub fn bic_score(loglik: f64, total_nodes: usize, k: usize, n_links: usize) -> f64 {
    -2.0 * loglik + (total_nodes * k) as f64 * (n_links.max(2) as f64).ln()
}

/// The AIC score of a fit (lower is better).
pub fn aic_score(loglik: f64, total_nodes: usize, k: usize) -> f64 {
    -2.0 * loglik + 2.0 * (total_nodes * k) as f64
}

/// Fits the model for every `k` in `k_range` and returns
/// `(best_k, scores)` where `scores[i]` pairs with `k_range` in order.
///
/// Lower scores win. Ties break toward smaller `k` (cheaper browsing).
///
/// The network is flattened into an [`EdgeState`] exactly once; every
/// candidate `k` reuses it.
pub fn select_k(
    net: &TypedNetwork,
    k_range: std::ops::RangeInclusive<usize>,
    base: &EmConfig,
    criterion: Criterion,
) -> Result<(usize, Vec<(usize, f64)>), HierError> {
    select_k_prepared(&EdgeState::new(net), k_range, base, criterion)
}

/// [`select_k`] against a pre-flattened [`EdgeState`] — lets callers that
/// already hold one (the hierarchy recursion) share it with the final fit.
pub fn select_k_prepared(
    state: &EdgeState,
    k_range: std::ops::RangeInclusive<usize>,
    base: &EmConfig,
    criterion: Criterion,
) -> Result<(usize, Vec<(usize, f64)>), HierError> {
    let total_nodes = state.total_nodes();
    let n_links = state.num_links();
    let mut scores = Vec::new();
    let mut best: Option<(usize, f64)> = None;
    for k in k_range {
        if k == 0 {
            continue;
        }
        let cfg = EmConfig { k, ..base.clone() };
        let fit = CathyHinEm::fit_prepared(state, &cfg)?;
        let score = match criterion {
            Criterion::Bic => bic_score(fit.loglik, total_nodes, k, n_links),
            Criterion::Aic => aic_score(fit.loglik, total_nodes, k),
        };
        scores.push((k, score));
        if best.is_none_or(|(_, s)| score < s) {
            best = Some((k, score));
        }
    }
    let (best_k, _) = best.ok_or_else(|| HierError::InvalidConfig("empty k range".into()))?;
    Ok((best_k, scores))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::em::WeightMode;
    use lesm_net::NetworkBuilder;

    /// Three clean communities.
    fn three_communities() -> TypedNetwork {
        let mut b = NetworkBuilder::new(vec!["term".into()], vec![12]);
        for grp in [0u32, 4, 8] {
            for i in grp..grp + 4 {
                for j in (i + 1)..grp + 4 {
                    b.add(0, i, 0, j, 12.0);
                }
            }
        }
        b.add(0, 3, 0, 4, 1.0);
        b.add(0, 7, 0, 8, 1.0);
        b.build()
    }

    #[test]
    fn bic_prefers_true_k() {
        let net = three_communities();
        let base = EmConfig {
            iters: 120,
            restarts: 3,
            seed: 11,
            background: false,
            weights: WeightMode::Equal,
            ..EmConfig::default()
        };
        let (k, scores) = select_k(&net, 2..=5, &base, Criterion::Bic).unwrap();
        assert_eq!(scores.len(), 4);
        assert!(
            (2..=4).contains(&k),
            "BIC should land near the true 3 communities, chose {k}: {scores:?}"
        );
    }

    /// Acceptance criterion: the whole k-sweep flattens the network
    /// exactly once (the counter is thread-local, so concurrent tests
    /// cannot perturb it).
    #[test]
    fn select_k_flattens_exactly_once() {
        let net = three_communities();
        let base = EmConfig {
            iters: 40,
            restarts: 1,
            background: false,
            weights: WeightMode::Equal,
            ..EmConfig::default()
        };
        let before = EdgeState::flattens_on_this_thread();
        let _ = select_k(&net, 2..=5, &base, Criterion::Bic).unwrap();
        assert_eq!(
            EdgeState::flattens_on_this_thread() - before,
            1,
            "select_k must flatten the network exactly once for the whole sweep"
        );
    }

    #[test]
    fn bic_penalty_grows_with_k() {
        let b1 = bic_score(-100.0, 10, 2, 50);
        let b2 = bic_score(-100.0, 10, 4, 50);
        assert!(b2 > b1);
    }

    #[test]
    fn aic_penalty_weaker_than_bic_on_large_networks() {
        // With ln|E| > 2 the BIC penalty dominates AIC's.
        let bic = bic_score(-100.0, 10, 3, 1000);
        let aic = aic_score(-100.0, 10, 3);
        assert!(bic > aic);
    }

    #[test]
    fn empty_range_is_error() {
        let net = three_communities();
        let base = EmConfig { background: false, ..EmConfig::default() };
        #[allow(clippy::reversed_empty_ranges)]
        let r = select_k(&net, 3..=2, &base, Criterion::Bic);
        assert!(r.is_err());
    }
}
