//! Held-out cross-validation for choosing the number of subtopics
//! (§3.2.3, Smyth \[75\]).
//!
//! For each fold, a random fraction of the network's links is held out,
//! the model is fitted on the remainder, and the held-out links are
//! scored by the predictive log-rate `Σ w ln s(i, j)` under the fitted
//! parameters (higher is better). The paper recommends this criterion
//! over BIC whenever the network carries enough links.

use crate::em::{CathyHinEm, EdgeState, EmConfig, EmFit};
use crate::HierError;
use lesm_net::{LinkBlock, TypedNetwork};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for [`select_k_cv`].
#[derive(Debug, Clone)]
pub struct CvConfig {
    /// Number of random folds averaged per candidate `k`.
    pub folds: usize,
    /// Fraction of links held out per fold.
    pub holdout_frac: f64,
    /// RNG seed for the splits.
    pub seed: u64,
}

impl Default for CvConfig {
    fn default() -> Self {
        Self { folds: 3, holdout_frac: 0.2, seed: 42 }
    }
}

/// Splits a network's links into `(train, held_out)` edge sets.
fn split(net: &TypedNetwork, frac: f64, rng: &mut StdRng) -> (TypedNetwork, TypedNetwork) {
    let mut train = TypedNetwork::new(net.type_names.clone(), net.node_counts.clone());
    let mut held = TypedNetwork::new(net.type_names.clone(), net.node_counts.clone());
    for blk in &net.blocks {
        let mut tr = Vec::new();
        let mut ho = Vec::new();
        for &e in &blk.edges {
            if rng.gen_bool(frac) {
                ho.push(e);
            } else {
                tr.push(e);
            }
        }
        if !tr.is_empty() {
            train.blocks.push(LinkBlock { tx: blk.tx, ty: blk.ty, edges: tr });
        }
        if !ho.is_empty() {
            held.blocks.push(LinkBlock { tx: blk.tx, ty: blk.ty, edges: ho });
        }
    }
    (train, held)
}

/// Predictive score of held-out links: the weighted mean log mixture rate
/// `Σ w ln s / Σ w` over held-out links (higher is better).
pub fn heldout_score(fit: &EmFit, held: &TypedNetwork) -> f64 {
    let mut total = 0.0;
    let mut weight = 0.0;
    for blk in &held.blocks {
        for &(i, j, w) in &blk.edges {
            // The unnormalized mixture rate s under the fitted parameters
            // (the quantity the link posterior normalizes).
            let mut s = 0.0;
            for z in 0..fit.k {
                s += fit.rho[z + 1]
                    * fit.phi[blk.tx][z][i as usize]
                    * fit.phi[blk.ty][z][j as usize];
            }
            if fit.rho[0] > 0.0 {
                s += 0.5
                    * fit.rho[0]
                    * (fit.phi0[blk.tx][i as usize] * fit.parent_phi[blk.ty][j as usize]
                        + fit.phi0[blk.ty][j as usize] * fit.parent_phi[blk.tx][i as usize]);
            }
            if s > 0.0 {
                total += w * s.ln();
                weight += w;
            } else {
                // A held-out link the model assigns zero rate: strong
                // penalty bounded away from -inf.
                total += w * (-30.0);
                weight += w;
            }
        }
    }
    if weight > 0.0 {
        total / weight
    } else {
        f64::NEG_INFINITY
    }
}

/// Chooses `k` by averaged held-out predictive score.
///
/// Returns `(best_k, scores)` with one `(k, mean score)` entry per
/// candidate; higher scores win, ties break toward smaller `k`.
pub fn select_k_cv(
    net: &TypedNetwork,
    k_range: std::ops::RangeInclusive<usize>,
    base: &EmConfig,
    cv: &CvConfig,
) -> Result<(usize, Vec<(usize, f64)>), HierError> {
    if cv.folds == 0 {
        return Err(HierError::InvalidConfig("folds must be >= 1".into()));
    }
    if !(0.0..1.0).contains(&cv.holdout_frac) || cv.holdout_frac <= 0.0 {
        return Err(HierError::InvalidConfig("holdout_frac must be in (0, 1)".into()));
    }
    // The fold splits depend only on the fold index (seed + fold * 101),
    // never on `k`, so each fold's train network is flattened exactly once
    // and every candidate `k` reuses the prepared state.
    let mut folds: Vec<(EdgeState, TypedNetwork)> = Vec::new();
    for fold in 0..cv.folds {
        let mut rng = StdRng::seed_from_u64(cv.seed.wrapping_add(fold as u64 * 101));
        let (train, held) = split(net, cv.holdout_frac, &mut rng);
        if train.num_links() == 0 || held.num_links() == 0 {
            continue;
        }
        folds.push((EdgeState::new(&train), held));
    }
    let mut scores = Vec::new();
    let mut best: Option<(usize, f64)> = None;
    for k in k_range {
        if k == 0 {
            continue;
        }
        let mut total = 0.0;
        let mut folds_done = 0usize;
        for (train_state, held) in &folds {
            let cfg = EmConfig { k, ..base.clone() };
            let fit = CathyHinEm::fit_prepared(train_state, &cfg)?;
            total += heldout_score(&fit, held);
            folds_done += 1;
        }
        if folds_done == 0 {
            continue;
        }
        let mean = total / folds_done as f64;
        scores.push((k, mean));
        if best.is_none_or(|(_, s)| mean > s) {
            best = Some((k, mean));
        }
    }
    let (best_k, _) =
        best.ok_or_else(|| HierError::InvalidConfig("no candidate k produced a score".into()))?;
    Ok((best_k, scores))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::em::WeightMode;
    use lesm_net::NetworkBuilder;

    fn three_communities() -> TypedNetwork {
        let mut b = NetworkBuilder::new(vec!["term".into()], vec![12]);
        for grp in [0u32, 4, 8] {
            for i in grp..grp + 4 {
                for j in (i + 1)..grp + 4 {
                    b.add(0, i, 0, j, 12.0);
                }
            }
        }
        b.add(0, 3, 0, 4, 1.0);
        b.add(0, 7, 0, 8, 1.0);
        b.build()
    }

    fn base() -> EmConfig {
        EmConfig {
            iters: 120,
            restarts: 3,
            seed: 11,
            background: false,
            weights: WeightMode::Equal,
            ..EmConfig::default()
        }
    }

    /// More folds than the default so the tiny 20-edge test network's
    /// fold-to-fold noise averages out regardless of the PRNG stream.
    fn steady_cv() -> CvConfig {
        CvConfig { folds: 8, ..CvConfig::default() }
    }

    #[test]
    fn cv_prefers_a_plausible_k() {
        let net = three_communities();
        let (k, scores) = select_k_cv(&net, 2..=5, &base(), &steady_cv()).unwrap();
        assert_eq!(scores.len(), 4);
        assert!((2..=4).contains(&k), "CV chose {k}: {scores:?}");
        // Scores are finite.
        for (_, s) in &scores {
            assert!(s.is_finite());
        }
    }

    #[test]
    fn heldout_score_penalizes_wrong_k() {
        // With k = 1 the model cannot separate the communities; its
        // held-out score should trail the true k = 3 on average.
        let net = three_communities();
        let (_, scores) = select_k_cv(&net, 1..=3, &base(), &steady_cv()).unwrap();
        let s1 = scores.iter().find(|(k, _)| *k == 1).unwrap().1;
        let s3 = scores.iter().find(|(k, _)| *k == 3).unwrap().1;
        assert!(s3 > s1, "k=3 ({s3:.3}) should beat k=1 ({s1:.3})");
    }

    #[test]
    fn invalid_configs_rejected() {
        let net = three_communities();
        assert!(select_k_cv(&net, 2..=3, &base(), &CvConfig { folds: 0, ..Default::default() })
            .is_err());
        assert!(select_k_cv(
            &net,
            2..=3,
            &base(),
            &CvConfig { holdout_frac: 0.0, ..Default::default() }
        )
        .is_err());
    }
}
