//! The unified Poisson link-generation model and its EM inference.
//!
//! Every observed link weight `e^{x,y}_{i,j}` is modeled as a Poisson sum
//! over subtopic contributions (eq. 3.8):
//!
//! ```text
//! e ~ Pois( M θ_{x,y} [ Σ_z ρ_z φ^x_{z,i} φ^y_{z,j} + ρ_0 φ^x_{0,i} φ^y_{t,j} ] )
//! ```
//!
//! The EM updates (eqs. 3.24–3.29) soft-assign each link to subtopics
//! (E-step) and re-estimate the ranking distributions `φ` and topic weights
//! `ρ` (M-step). Link-type weights `α_{x,y}` may be fixed, normalized, or
//! learned via eqs. 3.37–3.38 under the geometric-mean constraint of
//! Theorem 3.2.
//!
//! Undirected links are stored once; the model's both-direction duplication
//! is folded into symmetric accumulation (each endpoint receives the link's
//! expected subtopic weight; the asymmetric background term is averaged
//! over the two directions).
//!
//! # Performance architecture
//!
//! The inner loop is `O(|E| · k)` per iteration and sits beneath the
//! hierarchy recursion × BIC k-sweep × restarts × weight rounds, so it is
//! engineered to be memory-bandwidth-bound rather than pointer-chase-bound:
//!
//! * **[`EdgeState`]** flattens the network once — global node ids,
//!   type-pair keys, per-pair totals, and the parent-topic importance —
//!   and is shared across every fit of the same network (`fit_prepared`).
//! * **`ParamArena`** stores all parameters in one contiguous buffer with
//!   `φ` laid out node-major interleaved (`φ[x][z][i]` at `node·k + z`
//!   where `node = node_base[x] + i`), so the `z`-loop over one endpoint
//!   reads consecutive memory instead of `k` heap-separated rows.
//! * **Ping-pong arenas** (read/write, swapped per iteration) plus a
//!   reused [`lesm_par::ReduceScratch`] make the iteration loop free of
//!   heap allocation.
//! * **Early exit** ([`EmConfig::tol`]) stops a run once the surrogate
//!   objective's relative improvement falls below tolerance.
//!
//! All of this preserves the workspace determinism contract: results are
//! bit-identical for any thread count, and bit-identical to the original
//! nested-`Vec` implementation (same chunk layout, same reduction order,
//! same per-edge arithmetic).

use crate::HierError;
use lesm_net::TypedNetwork;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cell::Cell;
use std::sync::Arc;

/// How link-type weights `α_{x,y}` are chosen.
#[derive(Debug, Clone, PartialEq)]
pub enum WeightMode {
    /// All types weighted 1 (the basic model of §3.2.1).
    Equal,
    /// `α_{x,y} = 1 / Σ e^{x,y}` — the heuristic normalization compared in
    /// Tables 3.2–3.3 (rescaled to the Theorem 3.2 constraint).
    Normalized,
    /// Learned by eq. 3.37 (re-estimated between EM rounds).
    Learned,
    /// Explicit per-type-pair weights, keyed like `theta` by `tx * T + ty`.
    Fixed(Vec<f64>),
}

/// Configuration for [`CathyHinEm::fit`].
#[derive(Debug, Clone)]
pub struct EmConfig {
    /// Number of subtopics `k`.
    pub k: usize,
    /// EM iterations per restart (upper bound when `tol > 0`).
    pub iters: usize,
    /// Random restarts (best objective kept).
    pub restarts: usize,
    /// RNG seed.
    pub seed: u64,
    /// Whether to include the background topic `t/0` (CATHYHIN uses it;
    /// plain CATHY of §3.1 does not).
    pub background: bool,
    /// Prior share of the background topic at initialization.
    pub background_init: f64,
    /// Whether the background node distribution `φ_0` is re-estimated by
    /// eq. 3.29 (`true`) or pinned to the parent-topic importance
    /// (`false`, the default). A free `φ_0` can specialize into a dominant
    /// subtopic and swallow it; pinning keeps the background a strict
    /// global-noise model.
    pub learn_background: bool,
    /// Upper bound on the background share `ρ_0` (excess mass is
    /// redistributed to the subtopics proportionally after each M-step).
    pub background_cap: f64,
    /// Link-type weight mode.
    pub weights: WeightMode,
    /// Rounds of alternating EM / weight re-estimation when
    /// `weights == Learned`.
    pub weight_rounds: usize,
    /// Worker threads for the per-edge E/M accumulation (`0` = all
    /// available cores). Any value produces bit-identical results — the
    /// edge-chunk layout and reduction order are fixed (see `lesm-par`).
    pub threads: usize,
    /// Relative-improvement convergence tolerance: after each iteration
    /// `n >= 1`, EM stops early when
    /// `|obj_n - obj_{n-1}| <= tol * |obj_{n-1}|`. `0` (the default)
    /// disables the check, always running the full `iters` iterations.
    /// The check is deterministic, so early exit never breaks the
    /// thread-count bit-identity contract.
    pub tol: f64,
}

impl Default for EmConfig {
    fn default() -> Self {
        Self {
            k: 5,
            iters: 100,
            restarts: 2,
            seed: 42,
            background: true,
            background_init: 0.2,
            learn_background: false,
            background_cap: 0.4,
            weights: WeightMode::Equal,
            weight_rounds: 3,
            threads: 1,
            tol: 0.0,
        }
    }
}

/// A fitted subtopic decomposition of one topic's network.
#[derive(Debug, Clone)]
pub struct EmFit {
    /// Number of subtopics.
    pub k: usize,
    /// `phi[x][z][i]`: ranking distribution of type-`x` nodes in subtopic
    /// `z` (rows sum to 1 per `(x, z)`).
    pub phi: Vec<Vec<Vec<f64>>>,
    /// Background distributions `phi0[x][i]` (all zeros when the background
    /// topic is disabled).
    pub phi0: Vec<Vec<f64>>,
    /// Topic shares: `rho[0]` is the background share, `rho[1..=k]` the
    /// subtopic shares (sums to 1).
    pub rho: Vec<f64>,
    /// Link-type weights actually used, keyed by `tx * T + ty`.
    pub alpha: Vec<f64>,
    /// Type-pair distribution `θ_{x,y}` (same keying).
    pub theta: Vec<f64>,
    /// Final surrogate objective `Σ αe ln s` (monotone during EM).
    pub objective: f64,
    /// Per-iteration objective values. The paper's auxiliary-function
    /// argument (after eq. 3.17) guarantees this trace is non-decreasing;
    /// property tests verify it. With [`EmConfig::tol`] set, the trace may
    /// be shorter than `iters` (it ends at the early-exit iteration).
    pub objective_trace: Vec<f64>,
    /// Full Poisson log-likelihood of the observed links (for BIC).
    pub loglik: f64,
    /// The parent-topic node importance used by the background term.
    /// Shared (not copied) with the [`EdgeState`] the fit came from.
    pub parent_phi: Arc<Vec<Vec<f64>>>,
}

impl EmFit {
    /// Top `n` nodes of type `x` in subtopic `z` (0-based subtopic index).
    ///
    /// Sorting uses `f64::total_cmp`, so a hypothetical NaN score degrades
    /// to a deterministic ordering instead of a panic (the no-panic
    /// contract in DESIGN.md §10); non-NaN inputs order exactly as before.
    pub fn top_nodes(&self, x: usize, z: usize, n: usize) -> Vec<(u32, f64)> {
        let mut idx: Vec<(u32, f64)> =
            self.phi[x][z].iter().enumerate().map(|(i, &p)| (i as u32, p)).collect();
        idx.sort_by(|a, b| b.1.total_cmp(&a.1));
        idx.truncate(n);
        idx
    }

    /// Posterior subtopic distribution `q` of a single link (E-step formula,
    /// eqs. 3.12–3.13). Index 0 is the background.
    pub fn link_posterior(&self, tx: usize, i: u32, ty: usize, j: u32) -> Vec<f64> {
        let (i, j) = (i as usize, j as usize);
        let mut q = vec![0.0; self.k + 1];
        let mut total = 0.0;
        for z in 0..self.k {
            let v = self.rho[z + 1] * self.phi[tx][z][i] * self.phi[ty][z][j];
            q[z + 1] = v;
            total += v;
        }
        if self.rho[0] > 0.0 {
            let v = 0.5
                * self.rho[0]
                * (self.phi0[tx][i] * self.parent_phi[ty][j]
                    + self.phi0[ty][j] * self.parent_phi[tx][i]);
            q[0] = v;
            total += v;
        }
        if total > 0.0 {
            for v in &mut q {
                *v /= total;
            }
        }
        q
    }

    /// Extracts the expected-weight subnetwork of subtopic `z` (0-based):
    /// links keep the fraction `e q_z`, and links whose expected weight
    /// falls below `threshold` are dropped (§3.2.1 uses 1.0).
    pub fn subnetwork(&self, net: &TypedNetwork, z: usize, threshold: f64) -> TypedNetwork {
        let mut out = TypedNetwork::new(net.type_names.clone(), net.node_counts.clone());
        for blk in &net.blocks {
            let mut edges = Vec::new();
            for &(i, j, w) in &blk.edges {
                let q = self.link_posterior(blk.tx, i, blk.ty, j);
                let ew = w * q[z + 1];
                if ew >= threshold {
                    edges.push((i, j, ew));
                }
            }
            if !edges.is_empty() {
                out.blocks.push(lesm_net::LinkBlock { tx: blk.tx, ty: blk.ty, edges });
            }
        }
        out
    }
}

thread_local! {
    /// Per-thread count of [`EdgeState::new`] calls (i.e. network
    /// flattens). Thread-local so concurrently running tests observe only
    /// their own flattens.
    static FLATTEN_CALLS: Cell<u64> = const { Cell::new(0) };
}

/// Precomputed per-network edge state, shared across every EM fit of the
/// same network (the BIC k-sweep, CV folds, restarts, and weight rounds).
///
/// Flattening a [`TypedNetwork`] — global node ids, type-pair keys,
/// per-pair weight/link totals, and the normalized parent-topic importance
/// — is pure per-network work; recomputing it per candidate `k` (as the
/// pre-arena implementation did) wastes both time and allocator traffic.
/// Build one with [`EdgeState::new`] and hand it to
/// [`CathyHinEm::fit_prepared`] as many times as needed.
#[derive(Debug, Clone)]
pub struct EdgeState {
    /// Number of node types.
    t_count: usize,
    /// Nodes per type.
    node_counts: Vec<usize>,
    /// Prefix sums of `node_counts` (global node id = `node_base[x] + i`).
    node_base: Vec<usize>,
    /// Total node count across types.
    total_nodes: usize,
    /// Per-edge global node id of the first endpoint. `u32` halves the
    /// sequential stream the E-step pulls per edge (node ids are bounded
    /// by the `u32` node indices of the network).
    ni: Vec<u32>,
    /// Per-edge global node id of the second endpoint.
    nj: Vec<u32>,
    /// Per-edge type-pair key `tx * T + ty`.
    tp: Vec<usize>,
    /// Per-edge raw link weight.
    w: Vec<f64>,
    /// Total link weight per type pair.
    pair_weight: Vec<f64>,
    /// Link count per type pair.
    pair_links: Vec<usize>,
    /// Parent-topic importance per type (normalized weighted degrees),
    /// in the nested shape [`EmFit`] exposes.
    parent_phi: Arc<Vec<Vec<f64>>>,
    /// The same importance flattened by global node id (hot-loop view).
    parent_flat: Vec<f64>,
    /// Raw (unnormalized) weighted degrees per type. Kept so
    /// [`EdgeState::append_delta`] can fold delta-network degrees in and
    /// re-derive `parent_phi` without revisiting the base edges.
    degrees: Vec<Vec<f64>>,
}

impl EdgeState {
    /// Flattens `net` into the edge-major arrays the EM loop consumes.
    pub fn new(net: &TypedNetwork) -> Self {
        FLATTEN_CALLS.with(|c| c.set(c.get() + 1));
        let t_count = net.num_types();
        let mut node_base = Vec::with_capacity(t_count);
        let mut total_nodes = 0usize;
        for &n in &net.node_counts {
            node_base.push(total_nodes);
            total_nodes += n;
        }
        let n = net.num_links();
        let mut ni = Vec::with_capacity(n);
        let mut nj = Vec::with_capacity(n);
        let mut tp = Vec::with_capacity(n);
        let mut w = Vec::with_capacity(n);
        for blk in &net.blocks {
            for &(i, j, wt) in &blk.edges {
                ni.push((node_base[blk.tx] + i as usize) as u32);
                nj.push((node_base[blk.ty] + j as usize) as u32);
                tp.push(blk.tx * t_count + blk.ty);
                w.push(wt);
            }
        }
        let mut pair_weight = vec![0.0f64; t_count * t_count];
        let mut pair_links = vec![0usize; t_count * t_count];
        for e in 0..n {
            pair_weight[tp[e]] += w[e];
            pair_links[tp[e]] += 1;
        }
        // Parent-topic importance: normalized weighted degree per type.
        let degrees = net.weighted_degrees();
        let mut parent_phi = degrees.clone();
        for row in &mut parent_phi {
            let s: f64 = row.iter().sum();
            if s > 0.0 {
                row.iter_mut().for_each(|x| *x /= s);
            }
        }
        let mut parent_flat = Vec::with_capacity(total_nodes);
        for row in &parent_phi {
            parent_flat.extend_from_slice(row);
        }
        Self {
            t_count,
            node_counts: net.node_counts.clone(),
            node_base,
            total_nodes,
            ni,
            nj,
            tp,
            w,
            pair_weight,
            pair_links,
            parent_phi: Arc::new(parent_phi),
            parent_flat,
            degrees,
        }
    }

    /// Appends the edges of a delta network to the flatten **without
    /// rebuilding it**: existing per-edge arrays are remapped to the
    /// enlarged node space in place, delta edges are appended after them,
    /// and the per-pair totals and parent-topic importance are updated
    /// incrementally. The delta must cover the same node types and at
    /// least as many nodes per type (node ids are append-only across an
    /// update, matching the corpus interning contract).
    ///
    /// Edge order after the call is "all base edges, then all delta edges"
    /// — a pure function of the (base, delta) pair, so repeated identical
    /// updates stay bit-deterministic.
    pub fn append_delta(&mut self, delta: &TypedNetwork) -> Result<(), HierError> {
        if delta.num_types() != self.t_count {
            return Err(HierError::InvalidConfig(format!(
                "delta network has {} node types, base flatten has {}",
                delta.num_types(),
                self.t_count
            )));
        }
        for (x, (&new_n, &old_n)) in
            delta.node_counts.iter().zip(&self.node_counts).enumerate()
        {
            if new_n < old_n {
                return Err(HierError::InvalidConfig(format!(
                    "delta network shrinks type {x}: {new_n} nodes < base {old_n}"
                )));
            }
        }
        let t_count = self.t_count;
        let mut new_base = Vec::with_capacity(t_count);
        let mut new_total = 0usize;
        for &n in &delta.node_counts {
            new_base.push(new_total);
            new_total += n;
        }
        // Remap existing endpoints: the type of each endpoint is recovered
        // from the edge's type-pair key, the local index from the old base.
        for e in 0..self.w.len() {
            let (tx, ty) = (self.tp[e] / t_count, self.tp[e] % t_count);
            let i = self.ni[e] as usize - self.node_base[tx];
            let j = self.nj[e] as usize - self.node_base[ty];
            self.ni[e] = (new_base[tx] + i) as u32;
            self.nj[e] = (new_base[ty] + j) as u32;
        }
        // Append the delta edges and fold their pair totals.
        for blk in &delta.blocks {
            let key = blk.tx * t_count + blk.ty;
            for &(i, j, wt) in &blk.edges {
                self.ni.push((new_base[blk.tx] + i as usize) as u32);
                self.nj.push((new_base[blk.ty] + j as usize) as u32);
                self.tp.push(key);
                self.w.push(wt);
                self.pair_weight[key] += wt;
                self.pair_links[key] += 1;
            }
        }
        // Fold delta degrees into the raw totals, then re-derive the
        // normalized parent importance for the enlarged node space.
        let delta_deg = delta.weighted_degrees();
        for (x, row) in self.degrees.iter_mut().enumerate() {
            row.resize(delta.node_counts[x], 0.0);
            for (d, &v) in row.iter_mut().zip(&delta_deg[x]) {
                *d += v;
            }
        }
        let mut parent_phi = self.degrees.clone();
        for row in &mut parent_phi {
            let s: f64 = row.iter().sum();
            if s > 0.0 {
                row.iter_mut().for_each(|x| *x /= s);
            }
        }
        let mut parent_flat = Vec::with_capacity(new_total);
        for row in &parent_phi {
            parent_flat.extend_from_slice(row);
        }
        self.node_counts = delta.node_counts.clone();
        self.node_base = new_base;
        self.total_nodes = new_total;
        self.parent_phi = Arc::new(parent_phi);
        self.parent_flat = parent_flat;
        Ok(())
    }

    /// Number of flattened links.
    pub fn num_links(&self) -> usize {
        self.w.len()
    }

    /// Total node count across all types.
    pub fn total_nodes(&self) -> usize {
        self.total_nodes
    }

    /// Number of node types.
    pub fn num_types(&self) -> usize {
        self.t_count
    }

    /// How many times [`EdgeState::new`] has run **on this thread** (a
    /// thread-local counter, so concurrent tests don't interfere). Used to
    /// assert that `select_k` and the hierarchy recursion flatten each
    /// network exactly once.
    pub fn flattens_on_this_thread() -> u64 {
        FLATTEN_CALLS.with(|c| c.get())
    }
}

/// Flattened edge list used internally by the EM loop.
/// Number of edge chunks the E/M accumulation is split into. Fixed (never
/// derived from the thread count) so the floating-point summation grouping
/// — and therefore every EM result — is identical for any parallelism.
const EM_PIECES: usize = 16;

/// One contiguous parameter buffer: `[ φ | φ0 | ρ ]`, with `φ` node-major
/// interleaved — the value `φ[x][z][i]` lives at `node * k + z` where
/// `node = node_base[x] + i`. The interleaving puts all `k` subtopic
/// values of one node on a single cache line, which is exactly the access
/// pattern of the per-edge `z`-loop.
#[derive(Debug, Clone)]
struct ParamArena {
    k: usize,
    total: usize,
    data: Vec<f64>,
}

impl ParamArena {
    fn new(k: usize, total: usize) -> Self {
        Self { k, total, data: vec![0.0; total * k + total + k + 1] }
    }

    /// `(phi, phi0, rho)` views.
    #[inline]
    fn split(&self) -> (&[f64], &[f64], &[f64]) {
        let (phi, rest) = self.data.split_at(self.total * self.k);
        let (phi0, rho) = rest.split_at(self.total);
        (phi, phi0, rho)
    }

    /// Mutable `(phi, phi0, rho)` views.
    #[inline]
    fn split_mut(&mut self) -> (&mut [f64], &mut [f64], &mut [f64]) {
        let (phi, rest) = self.data.split_at_mut(self.total * self.k);
        let (phi0, rho) = rest.split_at_mut(self.total);
        (phi, phi0, rho)
    }
}

/// A fit in arena form — what the restart/weight-round machinery passes
/// around. Converted to the public nested [`EmFit`] exactly once, for the
/// winning fit (`ArenaFit::into_em_fit`).
struct ArenaFit {
    arena: ParamArena,
    theta: Vec<f64>,
    objective: f64,
    objective_trace: Vec<f64>,
    loglik: f64,
}

impl ArenaFit {
    /// Expands the arena into the nested public shape.
    fn into_em_fit(self, state: &EdgeState, alpha: Vec<f64>) -> EmFit {
        let k = self.arena.k;
        let (phi_a, phi0_a, rho_a) = self.arena.split();
        let phi: Vec<Vec<Vec<f64>>> = (0..state.t_count)
            .map(|x| {
                (0..k)
                    .map(|z| {
                        (0..state.node_counts[x])
                            .map(|i| phi_a[(state.node_base[x] + i) * k + z])
                            .collect()
                    })
                    .collect()
            })
            .collect();
        let phi0: Vec<Vec<f64>> = (0..state.t_count)
            .map(|x| {
                phi0_a[state.node_base[x]..state.node_base[x] + state.node_counts[x]].to_vec()
            })
            .collect();
        EmFit {
            k,
            phi,
            phi0,
            rho: rho_a.to_vec(),
            alpha,
            theta: self.theta,
            objective: self.objective,
            objective_trace: self.objective_trace,
            loglik: self.loglik,
            parent_phi: Arc::clone(&state.parent_phi),
        }
    }
}

/// Reused per-fit working memory: the reduce chunk buffers and the flat
/// `[obj | ρ | φ | φ0]` accumulator. One of these lives for a whole
/// `fit_prepared` call, so the EM iteration loop performs no heap
/// allocation.
struct EmScratch {
    reduce: lesm_par::ReduceScratch,
    acc: Vec<f64>,
}

/// CATHYHIN EM fitter. For text-only CATHY (§3.1), run on a single-type
/// network with `background: false`.
///
/// ```
/// use lesm_hier::em::{CathyHinEm, EmConfig, WeightMode};
/// use lesm_net::NetworkBuilder;
///
/// // Two 3-cliques joined by a weak bridge.
/// let mut b = NetworkBuilder::new(vec!["term".into()], vec![6]);
/// for group in [0u32, 3] {
///     for i in group..group + 3 {
///         for j in (i + 1)..group + 3 {
///             b.add(0, i, 0, j, 8.0);
///         }
///     }
/// }
/// b.add(0, 2, 0, 3, 1.0);
/// let net = b.build();
/// let cfg = EmConfig {
///     k: 2, iters: 120, restarts: 3, seed: 7,
///     background: false, weights: WeightMode::Equal,
///     ..EmConfig::default()
/// };
/// let fit = CathyHinEm::fit(&net, &cfg).unwrap();
/// let low_mass: f64 = fit.phi[0][0][..3].iter().sum();
/// assert!(low_mass > 0.9 || low_mass < 0.1, "cliques separate");
/// ```
#[derive(Debug, Default)]
pub struct CathyHinEm;

impl CathyHinEm {
    /// Fits the model to `net` with `config`.
    ///
    /// Thin wrapper over [`CathyHinEm::fit_prepared`]; callers fitting the
    /// same network repeatedly (k-sweeps, weight ablations) should build
    /// one [`EdgeState`] and call `fit_prepared` directly.
    pub fn fit(net: &TypedNetwork, config: &EmConfig) -> Result<EmFit, HierError> {
        Self::fit_prepared(&EdgeState::new(net), config)
    }

    /// Fits the model against a pre-flattened [`EdgeState`].
    pub fn fit_prepared(state: &EdgeState, config: &EmConfig) -> Result<EmFit, HierError> {
        if config.k == 0 {
            return Err(HierError::InvalidConfig("k must be >= 1".into()));
        }
        if state.num_links() == 0 {
            return Err(HierError::EmptyNetwork);
        }
        let t_count = state.t_count;

        // Initial α per mode.
        let mut alpha =
            initial_alpha(&config.weights, &state.pair_weight, &state.pair_links, t_count);

        let mut scratch = EmScratch { reduce: lesm_par::ReduceScratch::new(), acc: Vec::new() };

        // Phase 1: multi-restart EM under the initial weights; the best
        // objective wins (restart objectives are comparable because the
        // weights are identical).
        let mut best = fit_alpha(state, config, &alpha, None, &mut scratch);
        // Phase 2 (learned weights only): alternate α re-estimation with
        // warm-started EM refinement (eq. 3.37's outer loop), starting from
        // the best equal-weight partition so weight learning refines rather
        // than re-discovers the clustering. The warm fit is moved (not
        // cloned) into the next round.
        if config.weights == WeightMode::Learned {
            for _ in 1..config.weight_rounds.max(1) {
                alpha = learn_alpha(state, &best, config.threads, &mut scratch);
                best = fit_alpha(state, config, &alpha, Some(best), &mut scratch);
            }
        }
        Ok(best.into_em_fit(state, alpha))
    }

    /// Warm-starts EM from a previous fit of (an earlier version of) the
    /// same network — the incremental-update path. The previous `φ`, `φ0`,
    /// and `ρ` seed the arena; nodes that appeared since the previous fit
    /// receive a uniform share and each `(type, subtopic)` row is
    /// renormalized, so new nodes can attract mass from iteration one
    /// (an all-zero row would starve them forever: the M-step numerators
    /// only flow through existing `φ` products). The previous `α` is kept,
    /// rescaled to the Theorem 3.2 constraint under the updated link
    /// counts.
    ///
    /// No RNG is consumed and no restarts run — a warm fit is one
    /// deterministic continuation under the convergence budget in
    /// `config.iters` / `config.tol`, so the same (previous fit, delta)
    /// pair always produces the same bits.
    pub fn fit_warm(
        state: &EdgeState,
        config: &EmConfig,
        prev: &EmFit,
    ) -> Result<EmFit, HierError> {
        if config.k == 0 {
            return Err(HierError::InvalidConfig("k must be >= 1".into()));
        }
        if state.num_links() == 0 {
            return Err(HierError::EmptyNetwork);
        }
        let k = prev.k;
        if config.k != k {
            return Err(HierError::InvalidConfig(format!(
                "warm start requires config.k == previous fit k ({} != {k})",
                config.k
            )));
        }
        let t_count = state.t_count;
        if prev.phi.len() != t_count {
            return Err(HierError::InvalidConfig(format!(
                "previous fit covers {} node types, network has {t_count}",
                prev.phi.len()
            )));
        }
        if prev.rho.len() != k + 1 {
            return Err(HierError::InvalidConfig(format!(
                "previous fit rho has {} entries, expected {}",
                prev.rho.len(),
                k + 1
            )));
        }
        for (x, rows) in prev.phi.iter().enumerate() {
            if rows.len() != k {
                return Err(HierError::InvalidConfig(format!(
                    "previous fit phi[{x}] has {} subtopics, expected {k}",
                    rows.len()
                )));
            }
            for row in rows {
                if row.len() > state.node_counts[x] {
                    return Err(HierError::InvalidConfig(format!(
                        "previous fit knows {} nodes of type {x}, network has only {}",
                        row.len(),
                        state.node_counts[x]
                    )));
                }
            }
        }
        if prev.alpha.len() != t_count * t_count {
            return Err(HierError::InvalidConfig(format!(
                "previous fit alpha has {} entries, expected {}",
                prev.alpha.len(),
                t_count * t_count
            )));
        }

        // Seed the arena from the previous fit.
        let mut arena = ParamArena::new(k, state.total_nodes);
        {
            let (phi, phi0, rho) = arena.split_mut();
            for x in 0..t_count {
                let count = state.node_counts[x];
                // Uniform share for nodes the previous fit has not seen.
                let fresh = 1.0 / count as f64;
                for z in 0..k {
                    let row = &prev.phi[x][z];
                    let mut s = 0.0;
                    for i in 0..count {
                        let v = row.get(i).copied().unwrap_or(fresh);
                        phi[(state.node_base[x] + i) * k + z] = v;
                        s += v;
                    }
                    if s > 0.0 {
                        for i in 0..count {
                            phi[(state.node_base[x] + i) * k + z] /= s;
                        }
                    }
                }
            }
            if config.background {
                if config.learn_background {
                    for x in 0..t_count {
                        let base = state.node_base[x];
                        let count = state.node_counts[x];
                        let row = &prev.phi0[x];
                        for i in 0..count {
                            phi0[base + i] =
                                row.get(i).copied().unwrap_or(state.parent_flat[base + i]);
                        }
                        normalize(&mut phi0[base..base + count]);
                    }
                } else {
                    // Pinned mode: φ0 is the parent importance of the
                    // *updated* network, same as a cold start would use.
                    phi0.copy_from_slice(&state.parent_flat);
                }
            }
            rho.copy_from_slice(&prev.rho);
        }
        let mut alpha = prev.alpha.clone();
        rescale_alpha(&mut alpha, &state.pair_links);
        let mut scratch = EmScratch { reduce: lesm_par::ReduceScratch::new(), acc: Vec::new() };
        let warm = ArenaFit {
            arena,
            theta: Vec::new(),
            objective: f64::NEG_INFINITY,
            objective_trace: Vec::new(),
            loglik: 0.0,
        };
        let best = fit_alpha(state, config, &alpha, Some(warm), &mut scratch);
        Ok(best.into_em_fit(state, alpha))
    }
}

/// Runs EM under one fixed `alpha`: the per-α constants (scaled weights,
/// `θ`) are computed once and shared by every restart. With `warm`, a
/// single deterministic continuation run is performed instead, reusing the
/// warm fit's arena without copying.
fn fit_alpha(
    state: &EdgeState,
    config: &EmConfig,
    alpha: &[f64],
    warm: Option<ArenaFit>,
    scratch: &mut EmScratch,
) -> ArenaFit {
    let n_edges = state.num_links();
    let t_count = state.t_count;
    // Scaled edge weights, their total, and θ over type pairs.
    let scaled: Vec<f64> =
        (0..n_edges).map(|e| alpha[state.tp[e]] * state.w[e]).collect();
    let m_total: f64 = scaled.iter().sum();
    let mut theta = vec![0.0; t_count * t_count];
    for e in 0..n_edges {
        theta[state.tp[e]] += scaled[e] / m_total;
    }

    match warm {
        Some(prev) => {
            // Warm-started rounds are deterministic — one run suffices.
            run_em(state, config, &scaled, m_total, &theta, config.seed, Some(prev.arena), scratch)
        }
        None => {
            // Restart 0 seeds `best` directly (its seed offset is 0), so no
            // `Option` unwrap is needed to prove the loop produced a fit.
            let mut best =
                run_em(state, config, &scaled, m_total, &theta, config.seed, None, scratch);
            for restart in 1..config.restarts.max(1) {
                let f = run_em(
                    state,
                    config,
                    &scaled,
                    m_total,
                    &theta,
                    config.seed.wrapping_add(restart as u64 * 1313),
                    None,
                    scratch,
                );
                if f.objective > best.objective {
                    best = f;
                }
            }
            best
        }
    }
}

fn initial_alpha(
    mode: &WeightMode,
    pair_weight: &[f64],
    pair_links: &[usize],
    t_count: usize,
) -> Vec<f64> {
    let mut alpha = vec![1.0; t_count * t_count];
    match mode {
        WeightMode::Equal | WeightMode::Learned => {}
        WeightMode::Normalized => {
            for (tp, a) in alpha.iter_mut().enumerate() {
                if pair_weight[tp] > 0.0 {
                    *a = 1.0 / pair_weight[tp];
                }
            }
        }
        WeightMode::Fixed(v) => {
            for (tp, a) in alpha.iter_mut().enumerate() {
                if let Some(&x) = v.get(tp) {
                    if x > 0.0 {
                        *a = x;
                    }
                }
            }
        }
    }
    rescale_alpha(&mut alpha, pair_links);
    alpha
}

/// Rescales α to the Theorem 3.2 constraint `Π α^{n_{x,y}} = 1` so that
/// different weightings are comparable (scale invariance, Lemma 3.1).
fn rescale_alpha(alpha: &mut [f64], pair_links: &[usize]) {
    let mut log_sum = 0.0;
    let mut n_total = 0usize;
    for (tp, &n) in pair_links.iter().enumerate() {
        if n > 0 {
            log_sum += (n as f64) * alpha[tp].max(1e-300).ln();
            n_total += n;
        }
    }
    if n_total == 0 {
        return;
    }
    let scale = (-log_sum / n_total as f64).exp();
    for a in alpha.iter_mut() {
        *a *= scale;
    }
}

/// Read-only inputs of one E-step chunk fill, bundled so the hot loop can
/// live in a free function (closures cannot carry `#[target_feature]`).
struct EStepCtx<'a> {
    k: usize,
    background: bool,
    track_phi0: bool,
    /// Offset of the φ block in the accumulator: `k + 2` head slots.
    phi_off: usize,
    /// Length of the φ block: `total · k`.
    phi_len: usize,
    state: &'a EdgeState,
    scaled: &'a [f64],
    phi_c: &'a [f64],
    rho_c: &'a [f64],
    /// Per-node background inputs packed `[φ0(n), parent(n)]` so one edge
    /// endpoint costs one cache line instead of random loads into two
    /// separate arrays.
    bgpack: &'a [f64],
}

/// Accumulates one edge chunk of the E-step into `buf` (layout
/// `[obj | bg | k numerators | φ | φ0?]`). Dispatches to an AVX2
/// compilation of the identical loop when the CPU has it: every vectorized
/// operation is an elementwise IEEE mul/add/divide (no fused ops, no
/// reassociated reductions — the posterior total keeps its sequential
/// left-to-right sum), so the two paths produce the same bits and the
/// dispatch cannot violate the determinism contract (DESIGN.md §11).
fn estep_fill(ctx: &EStepCtx<'_>, range: std::ops::Range<usize>, buf: &mut [f64]) {
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx2") {
        // SAFETY: AVX2 support was just verified at runtime.
        unsafe {
            match ctx.k {
                4 => estep_fill_avx2::<4>(ctx, range, buf),
                5 => estep_fill_avx2::<5>(ctx, range, buf),
                8 => estep_fill_avx2::<8>(ctx, range, buf),
                _ => estep_fill_avx2::<0>(ctx, range, buf),
            }
        }
        return;
    }
    match ctx.k {
        4 => estep_fill_portable::<4>(ctx, range, buf),
        5 => estep_fill_portable::<5>(ctx, range, buf),
        8 => estep_fill_portable::<8>(ctx, range, buf),
        _ => estep_fill_portable::<0>(ctx, range, buf),
    }
}

/// The portable loop recompiled with AVX2 enabled — `estep_fill_portable`
/// is `#[inline(always)]`, so its body is re-optimized here with 4-wide
/// vectors. Same operations, same bits, fewer instructions.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
fn estep_fill_avx2<const K: usize>(
    ctx: &EStepCtx<'_>,
    range: std::ops::Range<usize>,
    buf: &mut [f64],
) {
    estep_fill_portable::<K>(ctx, range, buf);
}

/// `K` is the compile-time subtopic count for the common sizes (the
/// dispatcher monomorphizes 4, 5, and 8, so their `z`-loops fully unroll);
/// `K = 0` is the fallback that reads the runtime `ctx.k`. Both produce
/// the same bits — unrolling reorders nothing.
#[inline(always)]
fn estep_fill_portable<const K: usize>(
    ctx: &EStepCtx<'_>,
    range: std::ops::Range<usize>,
    buf: &mut [f64],
) {
    debug_assert!(K == 0 || K == ctx.k);
    let k = if K == 0 { ctx.k } else { K };
    let state = ctx.state;
    let background = ctx.background;
    let (phi_c, rho_c) = (ctx.phi_c, ctx.rho_c);
    let bgpack = ctx.bgpack;
    let scaled = ctx.scaled;
    // Pre-split the chunk buffer into its [head | φ | φ0] regions so the
    // hot loop indexes small slices directly. `head` is
    // [obj | bg | k numerators]; slicing the numerator tail once lets the
    // per-edge loops run without bounds checks (and vectorize, since every
    // store target is a disjoint fixed-length slice).
    let (head, rest) = buf.split_at_mut(ctx.phi_off);
    let (phi_b, phi0_b) = rest.split_at_mut(ctx.phi_len);
    let (head_obj, head_z) = head.split_at_mut(2);
    let rho_z = &rho_c[1..k + 1];
    // Posterior scratch: a stack array in the monomorphized paths, a heap
    // fallback when `K = 0`.
    let mut q_arr = [0.0f64; K];
    let mut q_vec;
    let q: &mut [f64] = if K == 0 {
        q_vec = vec![0.0f64; k];
        &mut q_vec
    } else {
        &mut q_arr
    };
    // The ρ numerators and the background expectation are chunk-global
    // accumulators, so they can live in registers for the whole edge loop
    // and be flushed once at the end. The chunk buffer arrives zeroed, so
    // `slot += local` writes the identical left-to-right fold the per-edge
    // stores produced.
    let mut hz_arr = [0.0f64; K];
    let mut hz_vec;
    let hz: &mut [f64] = if K == 0 {
        hz_vec = vec![0.0f64; k];
        &mut hz_vec
    } else {
        &mut hz_arr
    };
    let mut bg_acc = 0.0f64;
    // ln(s) is the one long-latency operation per edge, and it feeds
    // nothing but the objective — never the parameters. Deferring it out
    // of the edge loop (stash s and w, run the chunk through the
    // vectorized `fast_ln_slice`, then fold w·ln s in edge order)
    // unserializes the whole E-step: every other per-edge op is a short
    // mul/add/divide the out-of-order window overlaps freely. Dead edges
    // (s ≤ 0) keep the sentinel s = 1, w = 0, so they contribute an exact
    // +0.0 to the objective, same as being skipped.
    let base = range.start;
    let mut ln_scratch = vec![0.0f64; 3 * range.len()];
    let (sbuf, rest) = ln_scratch.split_at_mut(range.len());
    let (wbuf, lnbuf) = rest.split_at_mut(range.len());
    sbuf.fill(1.0);
    for e in range.clone() {
        let (ni, nj) = (state.ni[e] as usize, state.nj[e] as usize);
        let (na, nb) = (ni * k, nj * k);
        let w = scaled[e];
        let a = &phi_c[na..na + k];
        let b = &phi_c[nb..nb + k];
        for ((qv, &rz), (&az, &bz)) in q.iter_mut().zip(rho_z).zip(a.iter().zip(b)) {
            *qv = rz * az * bz;
        }
        // Four stride-4 partial sums folded in a fixed order — the shape
        // a 4-lane vector add produces, so the compiler keeps the whole
        // reduction in SIMD registers. The grouping is a pure function of
        // k: deterministic, thread-invariant, dispatch-invariant.
        let mut acc4 = [0.0f64; 4];
        let mut quads = q.chunks_exact(4);
        for quad in &mut quads {
            acc4[0] += quad[0];
            acc4[1] += quad[1];
            acc4[2] += quad[2];
            acc4[3] += quad[3];
        }
        for (l, &r) in quads.remainder().iter().enumerate() {
            acc4[l] += r;
        }
        let mut s = (acc4[0] + acc4[1]) + (acc4[2] + acc4[3]);
        // Background: average of the two link directions.
        let (bg_a, bg_b, q0);
        if background {
            bg_a = 0.5 * rho_c[0] * bgpack[2 * ni] * bgpack[2 * nj + 1];
            bg_b = 0.5 * rho_c[0] * bgpack[2 * nj] * bgpack[2 * ni + 1];
            q0 = bg_a + bg_b;
            s += q0;
        } else {
            bg_a = 0.0;
            bg_b = 0.0;
            q0 = 0.0;
        }
        if s <= 0.0 {
            continue;
        }
        sbuf[e - base] = s;
        wbuf[e - base] = w;
        let inv = w / s;
        if na == nb {
            // Self-loop: both endpoint rows are the same slice, so
            // accumulate the contribution twice in sequence (same bits as
            // two indexed adds to one cell).
            let pa = &mut phi_b[na..na + k];
            for ((&qv, hv), pv) in q.iter().zip(&mut *hz).zip(pa) {
                let ew = qv * inv;
                *hv += ew;
                *pv += ew;
                *pv += ew;
            }
        } else {
            // Distinct rows: na and nb are k-aligned, so they differ by at
            // least k and split_at_mut yields two non-overlapping row
            // slices. Every add below hits a distinct cell, so the store
            // order within an edge cannot change any bits.
            let (lo, hi) = if na < nb { (na, nb) } else { (nb, na) };
            let (left, right) = phi_b.split_at_mut(hi);
            let pl = &mut left[lo..lo + k];
            let pr = &mut right[..k];
            for (((&qv, hv), lv), rv) in q.iter().zip(&mut *hz).zip(pl).zip(pr) {
                let ew = qv * inv;
                *hv += ew;
                *lv += ew;
                *rv += ew;
            }
        }
        if background {
            let e0 = q0 * inv;
            bg_acc += e0;
            if ctx.track_phi0 && q0 > 0.0 {
                phi0_b[ni] += inv * bg_a;
                phi0_b[nj] += inv * bg_b;
            }
        }
    }
    // Flush the register accumulators, then the batched objective: ln over
    // the chunk and the w·ln(s) fold in the same edge order the fused loop
    // used.
    for (slot, &local) in head_z.iter_mut().zip(&*hz) {
        *slot += local;
    }
    head_obj[1] += bg_acc;
    lesm_linalg::fast_ln_slice(sbuf, lnbuf);
    // Same fixed stride-4 shape as the posterior sum: four independent
    // partials keep the long w·ln(s) fold out of a single serial add
    // chain, and the grouping depends only on the chunk length.
    let mut obj4 = [0.0f64; 4];
    let mut pairs = lnbuf.chunks_exact(4).zip(wbuf.chunks_exact(4));
    for (lq, wq) in &mut pairs {
        obj4[0] += wq[0] * lq[0];
        obj4[1] += wq[1] * lq[1];
        obj4[2] += wq[2] * lq[2];
        obj4[3] += wq[3] * lq[3];
    }
    let tail = lnbuf.len() - lnbuf.len() % 4;
    for (l, (lv, wv)) in lnbuf[tail..].iter().zip(&wbuf[tail..]).enumerate() {
        obj4[l] += wv * lv;
    }
    head_obj[0] += (obj4[0] + obj4[1]) + (obj4[2] + obj4[3]);
}

/// One full EM run (fixed α). When `warm` is given, the passed arena is
/// continued in place instead of random initialization.
#[allow(clippy::too_many_arguments)]
fn run_em(
    state: &EdgeState,
    config: &EmConfig,
    scaled: &[f64],
    m_total: f64,
    theta: &[f64],
    seed: u64,
    warm: Option<ParamArena>,
    scratch: &mut EmScratch,
) -> ArenaFit {
    let k = config.k;
    let t_count = state.t_count;
    let total = state.total_nodes;
    let counts = &state.node_counts;
    let base = &state.node_base;
    let n_edges = state.num_links();
    let mut rng = StdRng::seed_from_u64(seed);

    // Initialize φ, φ0, ρ (same RNG draw order as the original nested
    // implementation: type-major, then subtopic, then node).
    let warm_started = warm.is_some();
    let mut cur = match warm {
        Some(arena) => {
            debug_assert_eq!(arena.k, k);
            debug_assert_eq!(arena.total, total);
            arena
        }
        None => {
            let mut arena = ParamArena::new(k, total);
            let (phi, phi0, rho) = arena.split_mut();
            for x in 0..t_count {
                for z in 0..k {
                    for i in 0..counts[x] {
                        phi[(base[x] + i) * k + z] = rng.gen::<f64>() + 0.05;
                    }
                    let mut s = 0.0;
                    for i in 0..counts[x] {
                        s += phi[(base[x] + i) * k + z];
                    }
                    if s > 0.0 {
                        for i in 0..counts[x] {
                            phi[(base[x] + i) * k + z] /= s;
                        }
                    }
                }
            }
            if config.background {
                phi0.copy_from_slice(&state.parent_flat);
            }
            if config.background {
                rho[0] = config.background_init;
                for z in 1..=k {
                    rho[z] = (1.0 - config.background_init) / k as f64;
                }
            } else {
                for z in 1..=k {
                    rho[z] = 1.0 / k as f64;
                }
            }
            arena
        }
    };
    let _ = warm_started;

    // Ping-pong write arena. φ0 is copied once up front so it stays pinned
    // through swaps when it is not re-learned.
    let mut next = ParamArena::new(k, total);
    if !(config.background && config.learn_background) {
        let (_, phi0_n, _) = next.split_mut();
        phi0_n.copy_from_slice(cur.split().1);
    }

    // Flat accumulator layout: [obj | ρ (k+1) | φ (total·k) | φ0 (total)].
    // The φ0 block exists only when it is actually re-learned — otherwise
    // its numerators are dead work (the seed implementation computed and
    // discarded them), and dropping the block shrinks both the E-step
    // writes and the per-iteration chunk fold.
    let track_phi0 = config.background && config.learn_background;
    let phi_off = k + 2;
    let phi0_off = phi_off + total * k;
    let acc_len = if track_phi0 { phi0_off + total } else { phi0_off };
    scratch.acc.clear();
    scratch.acc.resize(acc_len, 0.0);

    let mut objective = f64::NEG_INFINITY;
    let mut objective_trace = Vec::with_capacity(config.iters);
    let grain = lesm_par::grain_for_pieces(n_edges, EM_PIECES);
    let parent_flat = &state.parent_flat;
    let background = config.background;
    // Packed per-node background inputs `[φ0(n), parent(n)]`: one random
    // cache line per edge endpoint in the hot loop instead of two. φ0 is
    // pinned unless it is re-learned, so the pack is rebuilt per iteration
    // only in that mode.
    let mut bgpack = vec![0.0f64; 2 * total];
    let mut bgpack_stale = true;
    for _ in 0..config.iters {
        // E-step + M-step numerators: one chunked reduce over the edges
        // into the flat accumulator. Chunk layout and fold order are
        // fixed, so any thread count gives the same bits as threads = 1.
        let (phi_c, phi0_c, rho_c) = cur.split();
        if background && (bgpack_stale || track_phi0) {
            for ((pack, &p0), &pf) in
                bgpack.chunks_exact_mut(2).zip(phi0_c).zip(parent_flat)
            {
                pack[0] = p0;
                pack[1] = pf;
            }
            bgpack_stale = false;
        }
        // ~8k + 16 flops per edge (E-step posterior + numerator adds).
        let hint = lesm_par::WorkHint::items(n_edges, 8 * k + 16);
        let ctx = EStepCtx {
            k,
            background,
            track_phi0,
            phi_off,
            phi_len: total * k,
            state,
            scaled,
            phi_c,
            rho_c,
            bgpack: &bgpack,
        };
        lesm_par::par_buffer_reduce_with_hinted(
            &mut scratch.reduce,
            n_edges,
            grain,
            config.threads,
            hint,
            &mut scratch.acc,
            |range, buf| estep_fill(&ctx, range, buf),
        );
        let acc = &scratch.acc;
        let obj = acc[0];
        // M-step: unpack into the write arena with the 1e-12 smoothing the
        // normalizers expect, then swap the arenas.
        {
            let (phi_n, phi0_n, rho_n) = next.split_mut();
            for z in 0..=k {
                rho_n[z] = 1e-12 + acc[1 + z];
            }
            for (p, &a) in phi_n.iter_mut().zip(&acc[phi_off..phi0_off]) {
                *p = 1e-12 + a;
            }
            normalize(rho_n);
            if background && rho_n[0] > config.background_cap {
                let excess = rho_n[0] - config.background_cap;
                let sub_total: f64 = rho_n[1..].iter().sum();
                rho_n[0] = config.background_cap;
                if sub_total > 0.0 {
                    for z in 1..=k {
                        rho_n[z] += excess * rho_n[z] / sub_total;
                    }
                }
            }
            // Per-(type, subtopic) normalization, summing nodes in index
            // order exactly as the nested rows did.
            for x in 0..t_count {
                for z in 0..k {
                    let mut s = 0.0;
                    for i in 0..counts[x] {
                        s += phi_n[(base[x] + i) * k + z];
                    }
                    if s > 0.0 {
                        for i in 0..counts[x] {
                            phi_n[(base[x] + i) * k + z] /= s;
                        }
                    }
                }
            }
            if track_phi0 {
                for (p, &a) in phi0_n.iter_mut().zip(&acc[phi0_off..]) {
                    *p = 1e-12 + a;
                }
                for x in 0..t_count {
                    normalize(&mut phi0_n[base[x]..base[x] + counts[x]]);
                }
            }
        }
        std::mem::swap(&mut cur, &mut next);
        let prev = objective;
        objective = obj;
        objective_trace.push(obj);
        // Convergence early-exit on relative objective improvement.
        if config.tol > 0.0 && prev.is_finite() && (obj - prev).abs() <= config.tol * prev.abs()
        {
            break;
        }
    }

    // Full Poisson log-likelihood (for BIC): Σ_nonzero [w ln(M θ s) - lnΓ(w+1)] - M.
    // Link weights are overwhelmingly small integers, and `ln_gamma` is by
    // far the costliest call in this pass — memoize the integer arguments.
    // Table entries come from the same `ln_gamma`, so the bits match the
    // direct call exactly.
    let ln_gamma_table: Vec<f64> = (0..64).map(|i| ln_gamma(i as f64 + 1.0)).collect();
    let ln_gamma_memo = |w: f64| {
        let wi = w as usize;
        if wi < 63 && wi as f64 == w { ln_gamma_table[wi] } else { ln_gamma(w + 1.0) }
    };
    let (phi_c, phi0_c, rho_c) = cur.split();
    let mut ll = [0.0f64];
    lesm_par::par_buffer_reduce_with_hinted(
        &mut scratch.reduce,
        n_edges,
        grain,
        config.threads,
        lesm_par::WorkHint::items(n_edges, 2 * k + 8),
        &mut ll,
        |range, buf| {
            for e in range {
                let (ni, nj) = (state.ni[e] as usize, state.nj[e] as usize);
                let w = scaled[e];
                let a = &phi_c[ni * k..ni * k + k];
                let b = &phi_c[nj * k..nj * k + k];
                let mut s = 0.0;
                for z in 0..k {
                    s += rho_c[z + 1] * a[z] * b[z];
                }
                if background {
                    s += 0.5
                        * rho_c[0]
                        * (phi0_c[ni] * parent_flat[nj] + phi0_c[nj] * parent_flat[ni]);
                }
                let lambda = m_total * theta[state.tp[e]] * s;
                if lambda > 0.0 {
                    buf[0] += w * lambda.ln() - ln_gamma_memo(w);
                }
            }
        },
    );
    let loglik = -m_total + ll[0];

    ArenaFit { arena: cur, theta: theta.to_vec(), objective, objective_trace, loglik }
}

/// Learns link-type weights from the current fit (eqs. 3.37–3.38), then
/// rescales to the Theorem 3.2 constraint.
fn learn_alpha(
    state: &EdgeState,
    fit: &ArenaFit,
    threads: usize,
    scratch: &mut EmScratch,
) -> Vec<f64> {
    let k = fit.arena.k;
    let (phi, phi0, rho) = fit.arena.split();
    let t_count = state.t_count;
    let n_edges = state.num_links();
    let parent_flat = &state.parent_flat;
    // σ_{x,y} = (1/n_{x,y}) Σ e ln( e / (M_{x,y} s) )
    let mut sigma = vec![0.0f64; t_count * t_count];
    lesm_par::par_buffer_reduce_with_hinted(
        &mut scratch.reduce,
        n_edges,
        lesm_par::grain_for_pieces(n_edges, EM_PIECES),
        threads,
        lesm_par::WorkHint::items(n_edges, 2 * k + 8),
        &mut sigma,
        |range, buf| {
            for e in range {
                let (ni, nj) = (state.ni[e] as usize, state.nj[e] as usize);
                let w = state.w[e];
                let a = &phi[ni * k..ni * k + k];
                let b = &phi[nj * k..nj * k + k];
                let mut s = 0.0;
                for z in 0..k {
                    s += rho[z + 1] * a[z] * b[z];
                }
                if rho[0] > 0.0 {
                    s += 0.5
                        * rho[0]
                        * (phi0[ni] * parent_flat[nj] + phi0[nj] * parent_flat[ni]);
                }
                let m_xy = state.pair_weight[state.tp[e]];
                let pred = (m_xy * s).max(1e-300);
                buf[state.tp[e]] += w * (w / pred).ln();
            }
        },
    );
    let mut alpha = vec![1.0; t_count * t_count];
    let mut log_gm = 0.0;
    let mut n_total = 0usize;
    for (tp, s) in sigma.iter_mut().enumerate() {
        if state.pair_links[tp] > 0 {
            *s = (*s / state.pair_links[tp] as f64).max(1e-6);
            log_gm += state.pair_links[tp] as f64 * s.ln();
            n_total += state.pair_links[tp];
        }
    }
    if n_total == 0 {
        return alpha;
    }
    let gm = (log_gm / n_total as f64).exp();
    for (tp, a) in alpha.iter_mut().enumerate() {
        if state.pair_links[tp] > 0 {
            *a = gm / sigma[tp];
        }
    }
    rescale_alpha(&mut alpha, &state.pair_links);
    alpha
}

fn normalize(row: &mut [f64]) {
    let s: f64 = row.iter().sum();
    if s > 0.0 {
        row.iter_mut().for_each(|x| *x /= s);
    }
}

/// Natural log of the Gamma function (Lanczos approximation, |err| < 1e-10
/// for x > 0). Used by the Poisson likelihood with non-integer weights.
pub fn ln_gamma(x: f64) -> f64 {
    // Coefficients for g = 7, n = 9 (Numerical Recipes style).
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        return std::f64::consts::PI.ln()
            - (std::f64::consts::PI * x).sin().ln()
            - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEF[0];
    let t = x + 7.5;
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lesm_net::NetworkBuilder;

    /// A two-community single-type network: nodes 0-3 densely linked,
    /// nodes 4-7 densely linked, one weak bridge.
    fn two_communities() -> TypedNetwork {
        let mut b = NetworkBuilder::new(vec!["term".into()], vec![8]);
        for grp in [0u32, 4] {
            for i in grp..grp + 4 {
                for j in (i + 1)..grp + 4 {
                    b.add(0, i, 0, j, 10.0);
                }
            }
        }
        b.add(0, 3, 0, 4, 1.0);
        b.build()
    }

    /// Heterogeneous version: authors 0-1 attach to community A terms,
    /// authors 2-3 to community B.
    fn two_communities_hin() -> TypedNetwork {
        let mut b = NetworkBuilder::new(vec!["author".into(), "term".into()], vec![4, 8]);
        for grp in [0u32, 4] {
            for i in grp..grp + 4 {
                for j in (i + 1)..grp + 4 {
                    b.add(1, i, 1, j, 10.0);
                }
            }
        }
        for t in 0..4u32 {
            b.add(0, 0, 1, t, 6.0);
            b.add(0, 1, 1, t, 6.0);
            b.add(0, 2, 1, t + 4, 6.0);
            b.add(0, 3, 1, t + 4, 6.0);
        }
        b.add(1, 3, 1, 4, 1.0);
        b.build()
    }

    fn cfg(k: usize, background: bool) -> EmConfig {
        EmConfig { k, iters: 150, restarts: 3, seed: 7, background, ..EmConfig::default() }
    }

    #[test]
    fn cathy_splits_two_communities() {
        let net = two_communities();
        let fit = CathyHinEm::fit(&net, &cfg(2, false)).unwrap();
        // Each subtopic should concentrate on one community.
        let mass_a0: f64 = fit.phi[0][0][..4].iter().sum();
        let mass_a1: f64 = fit.phi[0][1][..4].iter().sum();
        assert!(
            (mass_a0 > 0.9 && mass_a1 < 0.1) || (mass_a0 < 0.1 && mass_a1 > 0.9),
            "communities not separated: {mass_a0:.3} vs {mass_a1:.3}"
        );
    }

    /// Golden regression against the pre-arena (seed) implementation: the
    /// flat-arena EM must reproduce the seed's community split and
    /// objective to within 1e-9 relative error. The recorded constants
    /// were produced by the nested-`Vec` implementation at PR 1
    /// (`examples/golden_probe.rs` run before the arena rewrite).
    #[test]
    fn golden_matches_seed_implementation() {
        const GOLD_TC_OBJ: f64 = -4.237_522_342_334_859_79e2;
        const GOLD_TC_LOGLIK: f64 = -1.457_145_166_157_488_06e2;
        const GOLD_TC_MASS: f64 = 7.649_136_488_182_065_04e-3;
        let fit = CathyHinEm::fit(&two_communities(), &cfg(2, false)).unwrap();
        let rel = |a: f64, b: f64| (a - b).abs() / b.abs().max(1.0);
        assert!(
            rel(fit.objective, GOLD_TC_OBJ) <= 1e-9,
            "two_communities objective drifted: {:.17e} vs {GOLD_TC_OBJ:.17e}",
            fit.objective
        );
        assert!(rel(fit.loglik, GOLD_TC_LOGLIK) <= 1e-9);
        let mass: f64 = fit.phi[0][0][..4].iter().sum();
        assert!(
            (mass - GOLD_TC_MASS).abs() <= 1e-9,
            "two_communities split drifted: {mass:.17e} vs {GOLD_TC_MASS:.17e}"
        );

        const GOLD_HIN_OBJ: f64 = -6.902_586_006_616_539_86e2;
        const GOLD_HIN_LOGLIK: f64 = -1.753_114_844_233_267_04e2;
        const GOLD_HIN_TERM_MASS: f64 = 4.424_612_057_166_371_97e-4;
        let fit = CathyHinEm::fit(&two_communities_hin(), &cfg(2, true)).unwrap();
        assert!(
            rel(fit.objective, GOLD_HIN_OBJ) <= 1e-9,
            "two_communities_hin objective drifted: {:.17e} vs {GOLD_HIN_OBJ:.17e}",
            fit.objective
        );
        assert!(rel(fit.loglik, GOLD_HIN_LOGLIK) <= 1e-9);
        let mass: f64 = fit.phi[1][0][..4].iter().sum();
        assert!(
            (mass - GOLD_HIN_TERM_MASS).abs() <= 1e-9,
            "two_communities_hin split drifted: {mass:.17e} vs {GOLD_HIN_TERM_MASS:.17e}"
        );
    }

    #[test]
    fn fit_prepared_reuses_edge_state_across_k() {
        let net = two_communities_hin();
        let state = EdgeState::new(&net);
        for k in 1..=3 {
            let prepared = CathyHinEm::fit_prepared(&state, &cfg(k, true)).unwrap();
            let plain = CathyHinEm::fit(&net, &cfg(k, true)).unwrap();
            assert_eq!(prepared.objective.to_bits(), plain.objective.to_bits());
            assert_eq!(prepared.phi, plain.phi);
            assert_eq!(prepared.rho, plain.rho);
        }
    }

    #[test]
    fn distributions_normalized() {
        let net = two_communities_hin();
        let fit = CathyHinEm::fit(&net, &cfg(2, true)).unwrap();
        let rho_sum: f64 = fit.rho.iter().sum();
        assert!((rho_sum - 1.0).abs() < 1e-9);
        for x in 0..2 {
            for z in 0..2 {
                let s: f64 = fit.phi[x][z].iter().sum();
                assert!((s - 1.0).abs() < 1e-9, "phi[{x}][{z}] sums to {s}");
            }
            let s0: f64 = fit.phi0[x].iter().sum();
            assert!((s0 - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn hin_entities_follow_their_terms() {
        let net = two_communities_hin();
        let fit = CathyHinEm::fit(&net, &cfg(2, true)).unwrap();
        // Whichever subtopic owns terms 0-3 should also own authors 0-1.
        let z_a = if fit.phi[1][0][..4].iter().sum::<f64>() > 0.5 { 0 } else { 1 };
        let auth_mass: f64 = fit.phi[0][z_a][..2].iter().sum();
        assert!(auth_mass > 0.8, "authors did not align with terms: {auth_mass:.3}");
    }

    #[test]
    fn posterior_sums_to_one_and_subnetwork_extracts() {
        let net = two_communities_hin();
        let fit = CathyHinEm::fit(&net, &cfg(2, true)).unwrap();
        let q = fit.link_posterior(1, 0, 1, 1);
        let s: f64 = q.iter().sum();
        assert!((s - 1.0).abs() < 1e-9);
        let sub = fit.subnetwork(&net, 0, 1.0);
        assert!(sub.num_links() > 0);
        assert!(sub.total_weight() < net.total_weight());
    }

    #[test]
    fn learned_weights_satisfy_constraint() {
        let net = two_communities_hin();
        let mut c = cfg(2, true);
        c.weights = WeightMode::Learned;
        let fit = CathyHinEm::fit(&net, &c).unwrap();
        // Π α^{n} = 1  (log-domain check over pairs with links).
        let mut log_sum = 0.0;
        for blk in &net.blocks {
            let tp = blk.tx * net.num_types() + blk.ty;
            log_sum += blk.len() as f64 * fit.alpha[tp].ln();
        }
        assert!(log_sum.abs() < 1e-6, "constraint violated: {log_sum}");
    }

    #[test]
    fn empty_network_rejected() {
        let net = TypedNetwork::new(vec!["t".into()], vec![3]);
        assert!(matches!(CathyHinEm::fit(&net, &cfg(2, false)), Err(HierError::EmptyNetwork)));
        let net2 = two_communities();
        assert!(CathyHinEm::fit(&net2, &cfg(0, false)).is_err());
    }

    #[test]
    fn ln_gamma_matches_factorials() {
        for (n, f) in [(1u32, 1.0f64), (2, 1.0), (3, 2.0), (5, 24.0), (10, 362880.0)] {
            assert!(
                (ln_gamma(n as f64) - f.ln()).abs() < 1e-8,
                "lnΓ({n}) != ln({f})"
            );
        }
        // Γ(0.5) = sqrt(pi)
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-8);
    }

    #[test]
    fn objective_improves_with_more_restarts_or_equal() {
        let net = two_communities();
        let one = CathyHinEm::fit(&net, &EmConfig { restarts: 1, ..cfg(2, false) }).unwrap();
        let five = CathyHinEm::fit(&net, &EmConfig { restarts: 5, ..cfg(2, false) }).unwrap();
        assert!(five.objective >= one.objective - 1e-9);
    }

    #[test]
    fn trace_monotone_with_and_without_background() {
        for (net, bg) in [
            (two_communities(), false),
            (two_communities_hin(), false),
            (two_communities_hin(), true),
        ] {
            let fit = CathyHinEm::fit(&net, &EmConfig { restarts: 1, ..cfg(2, bg) }).unwrap();
            for w in fit.objective_trace.windows(2) {
                assert!(
                    w[1] >= w[0] - 1e-6 * (1.0 + w[0].abs()),
                    "objective decreased (bg={bg}): {} -> {}",
                    w[0],
                    w[1]
                );
            }
        }
    }

    #[test]
    fn zero_tol_never_exits_early() {
        let net = two_communities_hin();
        let c = EmConfig { restarts: 1, tol: 0.0, ..cfg(2, true) };
        let fit = CathyHinEm::fit(&net, &c).unwrap();
        assert_eq!(fit.objective_trace.len(), c.iters, "tol = 0 must run every iteration");
    }

    #[test]
    fn early_exit_trace_is_a_prefix_of_the_full_trace() {
        let net = two_communities_hin();
        let full_cfg = EmConfig { restarts: 1, tol: 0.0, ..cfg(2, true) };
        let full = CathyHinEm::fit(&net, &full_cfg).unwrap();
        let tol = 1e-7;
        let early =
            CathyHinEm::fit(&net, &EmConfig { tol, ..full_cfg.clone() }).unwrap();
        let n = early.objective_trace.len();
        assert!(n < full.objective_trace.len(), "tolerance should stop this run early");
        // Identical prefix bit-for-bit: the early run computes the same
        // iterations, it just stops sooner.
        for (a, b) in early.objective_trace.iter().zip(&full.objective_trace) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        // The exit condition actually held at the last recorded step.
        let (prev, last) = (early.objective_trace[n - 2], early.objective_trace[n - 1]);
        assert!((last - prev).abs() <= tol * prev.abs());
    }

    /// A delta for [`two_communities_hin`]: one new author (id 4) and one
    /// new term (id 8) attaching to community B, plus a reinforcing edge
    /// between existing nodes.
    fn hin_delta() -> TypedNetwork {
        let mut b = NetworkBuilder::new(vec!["author".into(), "term".into()], vec![5, 9]);
        b.add(1, 8, 1, 4, 7.0);
        b.add(1, 8, 1, 5, 7.0);
        b.add(0, 4, 1, 8, 5.0);
        b.add(0, 4, 1, 4, 5.0);
        b.add(1, 4, 1, 5, 3.0);
        b.build()
    }

    #[test]
    fn append_delta_grows_the_flatten_without_rebuilding() {
        let net = two_communities_hin();
        let mut state = EdgeState::new(&net);
        let (links0, nodes0) = (state.num_links(), state.total_nodes());
        let flattens = EdgeState::flattens_on_this_thread();
        state.append_delta(&hin_delta()).unwrap();
        assert_eq!(EdgeState::flattens_on_this_thread(), flattens, "no re-flatten");
        assert_eq!(state.num_links(), links0 + hin_delta().num_links());
        assert_eq!(state.total_nodes(), nodes0 + 2);
        // The appended flatten still fits cleanly.
        let fit = CathyHinEm::fit_prepared(&state, &cfg(2, true)).unwrap();
        for x in 0..2 {
            for z in 0..2 {
                let s: f64 = fit.phi[x][z].iter().sum();
                assert!((s - 1.0).abs() < 1e-9, "phi[{x}][{z}] sums to {s}");
            }
        }
        assert_eq!(fit.phi[0][0].len(), 5);
        assert_eq!(fit.phi[1][0].len(), 9);
    }

    #[test]
    fn append_delta_rejects_mismatched_shapes() {
        let mut state = EdgeState::new(&two_communities_hin());
        // Wrong type count.
        let other = NetworkBuilder::new(vec!["term".into()], vec![8]).build();
        assert!(state.append_delta(&other).is_err());
        // Shrinking node space.
        let small = NetworkBuilder::new(
            vec!["author".into(), "term".into()],
            vec![2, 8],
        )
        .build();
        assert!(state.append_delta(&small).is_err());
    }

    #[test]
    fn append_delta_is_bit_deterministic() {
        let fit_of = || {
            let mut state = EdgeState::new(&two_communities_hin());
            state.append_delta(&hin_delta()).unwrap();
            CathyHinEm::fit_prepared(&state, &cfg(2, true)).unwrap()
        };
        let (a, b) = (fit_of(), fit_of());
        assert_eq!(a.objective.to_bits(), b.objective.to_bits());
        assert_eq!(a.phi, b.phi);
        assert_eq!(a.rho, b.rho);
    }

    #[test]
    fn empty_delta_leaves_fit_bits_unchanged() {
        let net = two_communities_hin();
        let mut state = EdgeState::new(&net);
        let before = CathyHinEm::fit_prepared(&state, &cfg(2, true)).unwrap();
        // Same node space, no edges.
        let empty =
            NetworkBuilder::new(vec!["author".into(), "term".into()], vec![4, 8]).build();
        state.append_delta(&empty).unwrap();
        let after = CathyHinEm::fit_prepared(&state, &cfg(2, true)).unwrap();
        assert_eq!(before.objective.to_bits(), after.objective.to_bits());
        assert_eq!(before.phi, after.phi);
    }

    #[test]
    fn fit_warm_continues_deterministically_and_covers_new_nodes() {
        let net = two_communities_hin();
        let mut state = EdgeState::new(&net);
        let base = CathyHinEm::fit_prepared(&state, &cfg(2, true)).unwrap();
        state.append_delta(&hin_delta()).unwrap();
        let budget = EmConfig { iters: 20, tol: 1e-6, ..cfg(2, true) };
        let warm_a = CathyHinEm::fit_warm(&state, &budget, &base).unwrap();
        let warm_b = CathyHinEm::fit_warm(&state, &budget, &base).unwrap();
        assert_eq!(warm_a.objective.to_bits(), warm_b.objective.to_bits());
        assert_eq!(warm_a.phi, warm_b.phi);
        // New nodes are represented and every row is still a distribution.
        assert_eq!(warm_a.phi[0][0].len(), 5);
        assert_eq!(warm_a.phi[1][0].len(), 9);
        for x in 0..2 {
            for z in 0..2 {
                let s: f64 = warm_a.phi[x][z].iter().sum();
                assert!((s - 1.0).abs() < 1e-9, "phi[{x}][{z}] sums to {s}");
            }
        }
        // The new term attaches to community B's subtopic with real mass.
        let z_b = if warm_a.phi[1][0][4..8].iter().sum::<f64>() > 0.5 { 0 } else { 1 };
        assert!(
            warm_a.phi[1][z_b][8] > warm_a.phi[1][1 - z_b][8],
            "new term did not follow its community"
        );
        // Warm trace stays monotone (it is still EM).
        for w in warm_a.objective_trace.windows(2) {
            assert!(w[1] >= w[0] - 1e-6 * (1.0 + w[0].abs()));
        }
    }

    #[test]
    fn fit_warm_validates_previous_fit_shape() {
        let net = two_communities_hin();
        let state = EdgeState::new(&net);
        let base = CathyHinEm::fit_prepared(&state, &cfg(2, true)).unwrap();
        // k mismatch between config and previous fit.
        assert!(CathyHinEm::fit_warm(&state, &cfg(3, true), &base).is_err());
        // Previous fit knows more nodes than the network has.
        let small = {
            let mut b = NetworkBuilder::new(vec!["author".into(), "term".into()], vec![2, 3]);
            b.add(0, 0, 1, 0, 1.0);
            b.add(0, 1, 1, 2, 1.0);
            b.build()
        };
        let small_state = EdgeState::new(&small);
        assert!(CathyHinEm::fit_warm(&small_state, &cfg(2, true), &base).is_err());
    }

    #[test]
    fn flatten_counter_counts_edge_state_builds() {
        let net = two_communities();
        let before = EdgeState::flattens_on_this_thread();
        let state = EdgeState::new(&net);
        let _ = CathyHinEm::fit_prepared(&state, &cfg(2, false)).unwrap();
        let _ = CathyHinEm::fit_prepared(&state, &cfg(3, false)).unwrap();
        assert_eq!(EdgeState::flattens_on_this_thread() - before, 1);
        let _ = CathyHinEm::fit(&net, &cfg(2, false)).unwrap();
        assert_eq!(EdgeState::flattens_on_this_thread() - before, 2);
    }
}
