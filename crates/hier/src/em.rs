//! The unified Poisson link-generation model and its EM inference.
//!
//! Every observed link weight `e^{x,y}_{i,j}` is modeled as a Poisson sum
//! over subtopic contributions (eq. 3.8):
//!
//! ```text
//! e ~ Pois( M θ_{x,y} [ Σ_z ρ_z φ^x_{z,i} φ^y_{z,j} + ρ_0 φ^x_{0,i} φ^y_{t,j} ] )
//! ```
//!
//! The EM updates (eqs. 3.24–3.29) soft-assign each link to subtopics
//! (E-step) and re-estimate the ranking distributions `φ` and topic weights
//! `ρ` (M-step). Link-type weights `α_{x,y}` may be fixed, normalized, or
//! learned via eqs. 3.37–3.38 under the geometric-mean constraint of
//! Theorem 3.2.
//!
//! Undirected links are stored once; the model's both-direction duplication
//! is folded into symmetric accumulation (each endpoint receives the link's
//! expected subtopic weight; the asymmetric background term is averaged
//! over the two directions).

use crate::HierError;
use lesm_net::TypedNetwork;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// How link-type weights `α_{x,y}` are chosen.
#[derive(Debug, Clone, PartialEq)]
pub enum WeightMode {
    /// All types weighted 1 (the basic model of §3.2.1).
    Equal,
    /// `α_{x,y} = 1 / Σ e^{x,y}` — the heuristic normalization compared in
    /// Tables 3.2–3.3 (rescaled to the Theorem 3.2 constraint).
    Normalized,
    /// Learned by eq. 3.37 (re-estimated between EM rounds).
    Learned,
    /// Explicit per-type-pair weights, keyed like `theta` by `tx * T + ty`.
    Fixed(Vec<f64>),
}

/// Configuration for [`CathyHinEm::fit`].
#[derive(Debug, Clone)]
pub struct EmConfig {
    /// Number of subtopics `k`.
    pub k: usize,
    /// EM iterations per restart.
    pub iters: usize,
    /// Random restarts (best objective kept).
    pub restarts: usize,
    /// RNG seed.
    pub seed: u64,
    /// Whether to include the background topic `t/0` (CATHYHIN uses it;
    /// plain CATHY of §3.1 does not).
    pub background: bool,
    /// Prior share of the background topic at initialization.
    pub background_init: f64,
    /// Whether the background node distribution `φ_0` is re-estimated by
    /// eq. 3.29 (`true`) or pinned to the parent-topic importance
    /// (`false`, the default). A free `φ_0` can specialize into a dominant
    /// subtopic and swallow it; pinning keeps the background a strict
    /// global-noise model.
    pub learn_background: bool,
    /// Upper bound on the background share `ρ_0` (excess mass is
    /// redistributed to the subtopics proportionally after each M-step).
    pub background_cap: f64,
    /// Link-type weight mode.
    pub weights: WeightMode,
    /// Rounds of alternating EM / weight re-estimation when
    /// `weights == Learned`.
    pub weight_rounds: usize,
    /// Worker threads for the per-edge E/M accumulation (`0` = all
    /// available cores). Any value produces bit-identical results — the
    /// edge-chunk layout and reduction order are fixed (see `lesm-par`).
    pub threads: usize,
}

impl Default for EmConfig {
    fn default() -> Self {
        Self {
            k: 5,
            iters: 100,
            restarts: 2,
            seed: 42,
            background: true,
            background_init: 0.2,
            learn_background: false,
            background_cap: 0.4,
            weights: WeightMode::Equal,
            weight_rounds: 3,
            threads: 1,
        }
    }
}

/// A fitted subtopic decomposition of one topic's network.
#[derive(Debug, Clone)]
pub struct EmFit {
    /// Number of subtopics.
    pub k: usize,
    /// `phi[x][z][i]`: ranking distribution of type-`x` nodes in subtopic
    /// `z` (rows sum to 1 per `(x, z)`).
    pub phi: Vec<Vec<Vec<f64>>>,
    /// Background distributions `phi0[x][i]` (all zeros when the background
    /// topic is disabled).
    pub phi0: Vec<Vec<f64>>,
    /// Topic shares: `rho[0]` is the background share, `rho[1..=k]` the
    /// subtopic shares (sums to 1).
    pub rho: Vec<f64>,
    /// Link-type weights actually used, keyed by `tx * T + ty`.
    pub alpha: Vec<f64>,
    /// Type-pair distribution `θ_{x,y}` (same keying).
    pub theta: Vec<f64>,
    /// Final surrogate objective `Σ αe ln s` (monotone during EM).
    pub objective: f64,
    /// Per-iteration objective values. The paper's auxiliary-function
    /// argument (after eq. 3.17) guarantees this trace is non-decreasing;
    /// property tests verify it.
    pub objective_trace: Vec<f64>,
    /// Full Poisson log-likelihood of the observed links (for BIC).
    pub loglik: f64,
    /// The parent-topic node importance used by the background term.
    pub parent_phi: Vec<Vec<f64>>,
}

impl EmFit {
    /// Top `n` nodes of type `x` in subtopic `z` (0-based subtopic index).
    pub fn top_nodes(&self, x: usize, z: usize, n: usize) -> Vec<(u32, f64)> {
        let mut idx: Vec<(u32, f64)> =
            self.phi[x][z].iter().enumerate().map(|(i, &p)| (i as u32, p)).collect();
        idx.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("non-NaN"));
        idx.truncate(n);
        idx
    }

    /// Posterior subtopic distribution `q` of a single link (E-step formula,
    /// eqs. 3.12–3.13). Index 0 is the background.
    pub fn link_posterior(&self, tx: usize, i: u32, ty: usize, j: u32) -> Vec<f64> {
        let (i, j) = (i as usize, j as usize);
        let mut q = vec![0.0; self.k + 1];
        let mut total = 0.0;
        for z in 0..self.k {
            let v = self.rho[z + 1] * self.phi[tx][z][i] * self.phi[ty][z][j];
            q[z + 1] = v;
            total += v;
        }
        if self.rho[0] > 0.0 {
            let v = 0.5
                * self.rho[0]
                * (self.phi0[tx][i] * self.parent_phi[ty][j]
                    + self.phi0[ty][j] * self.parent_phi[tx][i]);
            q[0] = v;
            total += v;
        }
        if total > 0.0 {
            for v in &mut q {
                *v /= total;
            }
        }
        q
    }

    /// Extracts the expected-weight subnetwork of subtopic `z` (0-based):
    /// links keep the fraction `e q_z`, and links whose expected weight
    /// falls below `threshold` are dropped (§3.2.1 uses 1.0).
    pub fn subnetwork(&self, net: &TypedNetwork, z: usize, threshold: f64) -> TypedNetwork {
        let mut out = TypedNetwork::new(net.type_names.clone(), net.node_counts.clone());
        for blk in &net.blocks {
            let mut edges = Vec::new();
            for &(i, j, w) in &blk.edges {
                let q = self.link_posterior(blk.tx, i, blk.ty, j);
                let ew = w * q[z + 1];
                if ew >= threshold {
                    edges.push((i, j, ew));
                }
            }
            if !edges.is_empty() {
                out.blocks.push(lesm_net::LinkBlock { tx: blk.tx, ty: blk.ty, edges });
            }
        }
        out
    }
}

/// Flattened edge list used internally by the EM loop.
struct Edges {
    tx: Vec<usize>,
    ty: Vec<usize>,
    i: Vec<u32>,
    j: Vec<u32>,
    w: Vec<f64>,
    /// type-pair key `tx * T + ty` per edge
    tp: Vec<usize>,
}

/// Number of edge chunks the E/M accumulation is split into. Fixed (never
/// derived from the thread count) so the floating-point summation grouping
/// — and therefore every EM result — is identical for any parallelism.
const EM_PIECES: usize = 32;

/// Offsets into the flat per-iteration accumulator
/// `[obj | rho | phi | phi0]` shared by the E/M reduce.
struct AccLayout {
    /// Start of `rho` (index 0 is the objective).
    rho: usize,
    /// Start of the `phi` block; entry `(x, z, i)` lives at
    /// `phi + node_base[x] * k + z * n_x + i`.
    phi: usize,
    /// Start of the `phi0` block; entry `(x, i)` lives at
    /// `phi0 + node_base[x] + i`.
    phi0: usize,
    /// Total accumulator length.
    len: usize,
    /// Prefix sums of `node_counts`.
    node_base: Vec<usize>,
}

impl AccLayout {
    fn new(k: usize, node_counts: &[usize]) -> Self {
        let mut node_base = Vec::with_capacity(node_counts.len());
        let mut total = 0usize;
        for &n in node_counts {
            node_base.push(total);
            total += n;
        }
        let rho = 1;
        let phi = rho + k + 1;
        let phi0 = phi + k * total;
        Self { rho, phi, phi0, len: phi0 + total, node_base }
    }

    #[inline]
    fn phi_at(&self, k: usize, counts: &[usize], x: usize, z: usize, i: usize) -> usize {
        self.phi + self.node_base[x] * k + z * counts[x] + i
    }

    #[inline]
    fn phi0_at(&self, x: usize, i: usize) -> usize {
        self.phi0 + self.node_base[x] + i
    }
}

/// CATHYHIN EM fitter. For text-only CATHY (§3.1), run on a single-type
/// network with `background: false`.
///
/// ```
/// use lesm_hier::em::{CathyHinEm, EmConfig, WeightMode};
/// use lesm_net::NetworkBuilder;
///
/// // Two 3-cliques joined by a weak bridge.
/// let mut b = NetworkBuilder::new(vec!["term".into()], vec![6]);
/// for group in [0u32, 3] {
///     for i in group..group + 3 {
///         for j in (i + 1)..group + 3 {
///             b.add(0, i, 0, j, 8.0);
///         }
///     }
/// }
/// b.add(0, 2, 0, 3, 1.0);
/// let net = b.build();
/// let cfg = EmConfig {
///     k: 2, iters: 120, restarts: 3, seed: 7,
///     background: false, weights: WeightMode::Equal,
///     ..EmConfig::default()
/// };
/// let fit = CathyHinEm::fit(&net, &cfg).unwrap();
/// let low_mass: f64 = fit.phi[0][0][..3].iter().sum();
/// assert!(low_mass > 0.9 || low_mass < 0.1, "cliques separate");
/// ```
#[derive(Debug, Default)]
pub struct CathyHinEm;

impl CathyHinEm {
    /// Fits the model to `net` with `config`.
    pub fn fit(net: &TypedNetwork, config: &EmConfig) -> Result<EmFit, HierError> {
        if config.k == 0 {
            return Err(HierError::InvalidConfig("k must be >= 1".into()));
        }
        if net.num_links() == 0 {
            return Err(HierError::EmptyNetwork);
        }
        let t_count = net.num_types();
        let edges = flatten(net);
        let n_edges = edges.w.len();

        // θ and per-type-pair totals (constants).
        let mut pair_weight = vec![0.0f64; t_count * t_count];
        let mut pair_links = vec![0usize; t_count * t_count];
        for e in 0..n_edges {
            pair_weight[edges.tp[e]] += edges.w[e];
            pair_links[edges.tp[e]] += 1;
        }

        // Parent-topic importance: normalized weighted degree per type.
        let mut parent_phi = net.weighted_degrees();
        for row in &mut parent_phi {
            let s: f64 = row.iter().sum();
            if s > 0.0 {
                row.iter_mut().for_each(|x| *x /= s);
            }
        }

        // Initial α per mode.
        let mut alpha = initial_alpha(&config.weights, &pair_weight, &pair_links, t_count);

        // Phase 1: multi-restart EM under the initial weights; the best
        // objective wins (restart objectives are comparable because the
        // weights are identical).
        let fit_best = |alpha_cur: &[f64], warm: Option<&EmFit>| -> EmFit {
            let mut best: Option<EmFit> = None;
            for restart in 0..config.restarts.max(1) {
                let f = run_em(
                    net,
                    &edges,
                    config,
                    alpha_cur,
                    &parent_phi,
                    config.seed.wrapping_add(restart as u64 * 1313),
                    warm,
                );
                if best.as_ref().is_none_or(|b| f.objective > b.objective) {
                    best = Some(f);
                }
                if warm.is_some() {
                    break; // warm-started rounds are deterministic
                }
            }
            best.expect("at least one restart")
        };
        let mut best = fit_best(&alpha, None);
        // Phase 2 (learned weights only): alternate α re-estimation with
        // warm-started EM refinement (eq. 3.37's outer loop), starting from
        // the best equal-weight partition so weight learning refines rather
        // than re-discovers the clustering.
        if config.weights == WeightMode::Learned {
            for _ in 1..config.weight_rounds.max(1) {
                alpha = learn_alpha(&edges, &best, &pair_weight, &pair_links, t_count, config.threads);
                let warm = best.clone();
                best = fit_best(&alpha, Some(&warm));
            }
            best.alpha = alpha;
        }
        Ok(best)
    }
}

fn flatten(net: &TypedNetwork) -> Edges {
    let t = net.num_types();
    let n: usize = net.num_links();
    let mut e = Edges {
        tx: Vec::with_capacity(n),
        ty: Vec::with_capacity(n),
        i: Vec::with_capacity(n),
        j: Vec::with_capacity(n),
        w: Vec::with_capacity(n),
        tp: Vec::with_capacity(n),
    };
    for blk in &net.blocks {
        for &(i, j, w) in &blk.edges {
            e.tx.push(blk.tx);
            e.ty.push(blk.ty);
            e.i.push(i);
            e.j.push(j);
            e.w.push(w);
            e.tp.push(blk.tx * t + blk.ty);
        }
    }
    e
}

fn initial_alpha(
    mode: &WeightMode,
    pair_weight: &[f64],
    pair_links: &[usize],
    t_count: usize,
) -> Vec<f64> {
    let mut alpha = vec![1.0; t_count * t_count];
    match mode {
        WeightMode::Equal | WeightMode::Learned => {}
        WeightMode::Normalized => {
            for (tp, a) in alpha.iter_mut().enumerate() {
                if pair_weight[tp] > 0.0 {
                    *a = 1.0 / pair_weight[tp];
                }
            }
        }
        WeightMode::Fixed(v) => {
            for (tp, a) in alpha.iter_mut().enumerate() {
                if let Some(&x) = v.get(tp) {
                    if x > 0.0 {
                        *a = x;
                    }
                }
            }
        }
    }
    rescale_alpha(&mut alpha, pair_links);
    alpha
}

/// Rescales α to the Theorem 3.2 constraint `Π α^{n_{x,y}} = 1` so that
/// different weightings are comparable (scale invariance, Lemma 3.1).
fn rescale_alpha(alpha: &mut [f64], pair_links: &[usize]) {
    let mut log_sum = 0.0;
    let mut n_total = 0usize;
    for (tp, &n) in pair_links.iter().enumerate() {
        if n > 0 {
            log_sum += (n as f64) * alpha[tp].max(1e-300).ln();
            n_total += n;
        }
    }
    if n_total == 0 {
        return;
    }
    let scale = (-log_sum / n_total as f64).exp();
    for a in alpha.iter_mut() {
        *a *= scale;
    }
}

/// One full EM run (fixed α). When `warm` is given, parameters start from
/// the previous round's fit instead of random initialization.
#[allow(clippy::too_many_arguments)]
fn run_em(
    net: &TypedNetwork,
    edges: &Edges,
    config: &EmConfig,
    alpha: &[f64],
    parent_phi: &[Vec<f64>],
    seed: u64,
    warm: Option<&EmFit>,
) -> EmFit {
    let k = config.k;
    let t_count = net.num_types();
    let mut rng = StdRng::seed_from_u64(seed);

    // Scaled edge weights and totals.
    let n_edges = edges.w.len();
    let scaled: Vec<f64> = (0..n_edges).map(|e| alpha[edges.tp[e]] * edges.w[e]).collect();
    let m_total: f64 = scaled.iter().sum();

    // θ over type pairs.
    let mut theta = vec![0.0; t_count * t_count];
    for e in 0..n_edges {
        theta[edges.tp[e]] += scaled[e] / m_total;
    }

    // Initialize φ, φ0, ρ.
    let (mut phi, mut phi0, mut rho) = match warm {
        Some(f) => (f.phi.clone(), f.phi0.clone(), f.rho.clone()),
        None => {
            let phi: Vec<Vec<Vec<f64>>> = (0..t_count)
                .map(|x| {
                    (0..k)
                        .map(|_| {
                            let mut row: Vec<f64> =
                                (0..net.node_counts[x]).map(|_| rng.gen::<f64>() + 0.05).collect();
                            normalize(&mut row);
                            row
                        })
                        .collect()
                })
                .collect();
            let phi0: Vec<Vec<f64>> = if config.background {
                parent_phi.to_vec()
            } else {
                (0..t_count).map(|x| vec![0.0; net.node_counts[x]]).collect()
            };
            let mut rho = vec![0.0; k + 1];
            if config.background {
                rho[0] = config.background_init;
                for z in 1..=k {
                    rho[z] = (1.0 - config.background_init) / k as f64;
                }
            } else {
                for z in 1..=k {
                    rho[z] = 1.0 / k as f64;
                }
            }
            (phi, phi0, rho)
        }
    };

    let mut objective = f64::NEG_INFINITY;
    let mut objective_trace = Vec::with_capacity(config.iters);
    let counts = &net.node_counts;
    let layout = AccLayout::new(k, counts);
    let grain = lesm_par::grain_for_pieces(n_edges, EM_PIECES);
    for _ in 0..config.iters {
        // E-step + M-step numerators: one chunked reduce over the edges
        // into the flat accumulator [obj | rho | phi | phi0]. Chunk layout
        // and fold order are fixed, so any thread count gives the same
        // bits as threads = 1.
        let acc = lesm_par::par_buffer_reduce(
            n_edges,
            grain,
            config.threads,
            layout.len,
            |range, buf| {
                let mut q = vec![0.0f64; k + 1];
                for e in range {
                    let (tx, ty) = (edges.tx[e], edges.ty[e]);
                    let (i, j) = (edges.i[e] as usize, edges.j[e] as usize);
                    let w = scaled[e];
                    let mut s = 0.0;
                    for z in 0..k {
                        let v = rho[z + 1] * phi[tx][z][i] * phi[ty][z][j];
                        q[z + 1] = v;
                        s += v;
                    }
                    // Background: average of the two link directions.
                    let (bg_a, bg_b);
                    if config.background {
                        bg_a = 0.5 * rho[0] * phi0[tx][i] * parent_phi[ty][j];
                        bg_b = 0.5 * rho[0] * phi0[ty][j] * parent_phi[tx][i];
                        q[0] = bg_a + bg_b;
                        s += q[0];
                    } else {
                        bg_a = 0.0;
                        bg_b = 0.0;
                        q[0] = 0.0;
                    }
                    if s <= 0.0 {
                        continue;
                    }
                    buf[0] += w * s.ln();
                    let inv = w / s;
                    for z in 0..k {
                        let ew = q[z + 1] * inv;
                        buf[layout.rho + z + 1] += ew;
                        buf[layout.phi_at(k, counts, tx, z, i)] += ew;
                        buf[layout.phi_at(k, counts, ty, z, j)] += ew;
                    }
                    if config.background {
                        let e0 = q[0] * inv;
                        buf[layout.rho] += e0;
                        if q[0] > 0.0 {
                            buf[layout.phi0_at(tx, i)] += inv * bg_a;
                            buf[layout.phi0_at(ty, j)] += inv * bg_b;
                        }
                    }
                }
            },
        );
        let obj = acc[0];
        // Unpack with the 1e-12 smoothing the M-step normalizers expect.
        let mut rho_new: Vec<f64> = (0..=k).map(|z| 1e-12 + acc[layout.rho + z]).collect();
        let mut phi_new: Vec<Vec<Vec<f64>>> = (0..t_count)
            .map(|x| {
                (0..k)
                    .map(|z| {
                        let start = layout.phi_at(k, counts, x, z, 0);
                        acc[start..start + counts[x]].iter().map(|v| 1e-12 + v).collect()
                    })
                    .collect()
            })
            .collect();
        let mut phi0_new: Vec<Vec<f64>> = (0..t_count)
            .map(|x| {
                let start = layout.phi0_at(x, 0);
                acc[start..start + counts[x]].iter().map(|v| 1e-12 + v).collect()
            })
            .collect();
        normalize(&mut rho_new);
        if config.background && rho_new[0] > config.background_cap {
            let excess = rho_new[0] - config.background_cap;
            let sub_total: f64 = rho_new[1..].iter().sum();
            rho_new[0] = config.background_cap;
            if sub_total > 0.0 {
                for z in 1..=k {
                    rho_new[z] += excess * rho_new[z] / sub_total;
                }
            }
        }
        for x in 0..t_count {
            for z in 0..k {
                normalize(&mut phi_new[x][z]);
            }
            normalize(&mut phi0_new[x]);
        }
        rho = rho_new;
        phi = phi_new;
        if config.background && config.learn_background {
            phi0 = phi0_new;
        }
        objective = obj;
        objective_trace.push(obj);
    }

    // Full Poisson log-likelihood (for BIC): Σ_nonzero [w ln(M θ s) - lnΓ(w+1)] - M.
    let loglik_sum = lesm_par::par_buffer_reduce(
        n_edges,
        grain,
        config.threads,
        1,
        |range, buf| {
            for e in range {
                let (tx, ty) = (edges.tx[e], edges.ty[e]);
                let (i, j) = (edges.i[e] as usize, edges.j[e] as usize);
                let w = scaled[e];
                let mut s = 0.0;
                for z in 0..k {
                    s += rho[z + 1] * phi[tx][z][i] * phi[ty][z][j];
                }
                if config.background {
                    s += 0.5
                        * rho[0]
                        * (phi0[tx][i] * parent_phi[ty][j] + phi0[ty][j] * parent_phi[tx][i]);
                }
                let lambda = m_total * theta[edges.tp[e]] * s;
                if lambda > 0.0 {
                    buf[0] += w * lambda.ln() - ln_gamma(w + 1.0);
                }
            }
        },
    );
    let loglik = -m_total + loglik_sum[0];

    EmFit {
        k,
        phi,
        phi0,
        rho,
        alpha: alpha.to_vec(),
        theta,
        objective,
        objective_trace,
        loglik,
        parent_phi: parent_phi.to_vec(),
    }
}

/// Learns link-type weights from the current fit (eqs. 3.37–3.38), then
/// rescales to the Theorem 3.2 constraint.
fn learn_alpha(
    edges: &Edges,
    fit: &EmFit,
    pair_weight: &[f64],
    pair_links: &[usize],
    t_count: usize,
    threads: usize,
) -> Vec<f64> {
    let k = fit.k;
    let n_edges = edges.w.len();
    // σ_{x,y} = (1/n_{x,y}) Σ e ln( e / (M_{x,y} s) )
    let mut sigma = lesm_par::par_buffer_reduce(
        n_edges,
        lesm_par::grain_for_pieces(n_edges, EM_PIECES),
        threads,
        t_count * t_count,
        |range, buf| {
            for e in range {
                let (tx, ty) = (edges.tx[e], edges.ty[e]);
                let (i, j) = (edges.i[e] as usize, edges.j[e] as usize);
                let w = edges.w[e];
                let mut s = 0.0;
                for z in 0..k {
                    s += fit.rho[z + 1] * fit.phi[tx][z][i] * fit.phi[ty][z][j];
                }
                if fit.rho[0] > 0.0 {
                    s += 0.5
                        * fit.rho[0]
                        * (fit.phi0[tx][i] * fit.parent_phi[ty][j]
                            + fit.phi0[ty][j] * fit.parent_phi[tx][i]);
                }
                let m_xy = pair_weight[edges.tp[e]];
                let pred = (m_xy * s).max(1e-300);
                buf[edges.tp[e]] += w * (w / pred).ln();
            }
        },
    );
    let mut alpha = vec![1.0; t_count * t_count];
    let mut log_gm = 0.0;
    let mut n_total = 0usize;
    for (tp, s) in sigma.iter_mut().enumerate() {
        if pair_links[tp] > 0 {
            *s = (*s / pair_links[tp] as f64).max(1e-6);
            log_gm += pair_links[tp] as f64 * s.ln();
            n_total += pair_links[tp];
        }
    }
    if n_total == 0 {
        return alpha;
    }
    let gm = (log_gm / n_total as f64).exp();
    for (tp, a) in alpha.iter_mut().enumerate() {
        if pair_links[tp] > 0 {
            *a = gm / sigma[tp];
        }
    }
    rescale_alpha(&mut alpha, pair_links);
    alpha
}

fn normalize(row: &mut [f64]) {
    let s: f64 = row.iter().sum();
    if s > 0.0 {
        row.iter_mut().for_each(|x| *x /= s);
    }
}

/// Natural log of the Gamma function (Lanczos approximation, |err| < 1e-10
/// for x > 0). Used by the Poisson likelihood with non-integer weights.
pub fn ln_gamma(x: f64) -> f64 {
    // Coefficients for g = 7, n = 9 (Numerical Recipes style).
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        return std::f64::consts::PI.ln()
            - (std::f64::consts::PI * x).sin().ln()
            - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEF[0];
    let t = x + 7.5;
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lesm_net::NetworkBuilder;

    /// A two-community single-type network: nodes 0-3 densely linked,
    /// nodes 4-7 densely linked, one weak bridge.
    fn two_communities() -> TypedNetwork {
        let mut b = NetworkBuilder::new(vec!["term".into()], vec![8]);
        for grp in [0u32, 4] {
            for i in grp..grp + 4 {
                for j in (i + 1)..grp + 4 {
                    b.add(0, i, 0, j, 10.0);
                }
            }
        }
        b.add(0, 3, 0, 4, 1.0);
        b.build()
    }

    /// Heterogeneous version: authors 0-1 attach to community A terms,
    /// authors 2-3 to community B.
    fn two_communities_hin() -> TypedNetwork {
        let mut b = NetworkBuilder::new(vec!["author".into(), "term".into()], vec![4, 8]);
        for grp in [0u32, 4] {
            for i in grp..grp + 4 {
                for j in (i + 1)..grp + 4 {
                    b.add(1, i, 1, j, 10.0);
                }
            }
        }
        for t in 0..4u32 {
            b.add(0, 0, 1, t, 6.0);
            b.add(0, 1, 1, t, 6.0);
            b.add(0, 2, 1, t + 4, 6.0);
            b.add(0, 3, 1, t + 4, 6.0);
        }
        b.add(1, 3, 1, 4, 1.0);
        b.build()
    }

    fn cfg(k: usize, background: bool) -> EmConfig {
        EmConfig { k, iters: 150, restarts: 3, seed: 7, background, ..EmConfig::default() }
    }

    #[test]
    fn cathy_splits_two_communities() {
        let net = two_communities();
        let fit = CathyHinEm::fit(&net, &cfg(2, false)).unwrap();
        // Each subtopic should concentrate on one community.
        let mass_a0: f64 = fit.phi[0][0][..4].iter().sum();
        let mass_a1: f64 = fit.phi[0][1][..4].iter().sum();
        assert!(
            (mass_a0 > 0.9 && mass_a1 < 0.1) || (mass_a0 < 0.1 && mass_a1 > 0.9),
            "communities not separated: {mass_a0:.3} vs {mass_a1:.3}"
        );
    }

    #[test]
    fn distributions_normalized() {
        let net = two_communities_hin();
        let fit = CathyHinEm::fit(&net, &cfg(2, true)).unwrap();
        let rho_sum: f64 = fit.rho.iter().sum();
        assert!((rho_sum - 1.0).abs() < 1e-9);
        for x in 0..2 {
            for z in 0..2 {
                let s: f64 = fit.phi[x][z].iter().sum();
                assert!((s - 1.0).abs() < 1e-9, "phi[{x}][{z}] sums to {s}");
            }
            let s0: f64 = fit.phi0[x].iter().sum();
            assert!((s0 - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn hin_entities_follow_their_terms() {
        let net = two_communities_hin();
        let fit = CathyHinEm::fit(&net, &cfg(2, true)).unwrap();
        // Whichever subtopic owns terms 0-3 should also own authors 0-1.
        let z_a = if fit.phi[1][0][..4].iter().sum::<f64>() > 0.5 { 0 } else { 1 };
        let auth_mass: f64 = fit.phi[0][z_a][..2].iter().sum();
        assert!(auth_mass > 0.8, "authors did not align with terms: {auth_mass:.3}");
    }

    #[test]
    fn posterior_sums_to_one_and_subnetwork_extracts() {
        let net = two_communities_hin();
        let fit = CathyHinEm::fit(&net, &cfg(2, true)).unwrap();
        let q = fit.link_posterior(1, 0, 1, 1);
        let s: f64 = q.iter().sum();
        assert!((s - 1.0).abs() < 1e-9);
        let sub = fit.subnetwork(&net, 0, 1.0);
        assert!(sub.num_links() > 0);
        assert!(sub.total_weight() < net.total_weight());
    }

    #[test]
    fn learned_weights_satisfy_constraint() {
        let net = two_communities_hin();
        let mut c = cfg(2, true);
        c.weights = WeightMode::Learned;
        let fit = CathyHinEm::fit(&net, &c).unwrap();
        // Π α^{n} = 1  (log-domain check over pairs with links).
        let mut log_sum = 0.0;
        for blk in &net.blocks {
            let tp = blk.tx * net.num_types() + blk.ty;
            log_sum += blk.len() as f64 * fit.alpha[tp].ln();
        }
        assert!(log_sum.abs() < 1e-6, "constraint violated: {log_sum}");
    }

    #[test]
    fn empty_network_rejected() {
        let net = TypedNetwork::new(vec!["t".into()], vec![3]);
        assert!(matches!(CathyHinEm::fit(&net, &cfg(2, false)), Err(HierError::EmptyNetwork)));
        let net2 = two_communities();
        assert!(CathyHinEm::fit(&net2, &cfg(0, false)).is_err());
    }

    #[test]
    fn ln_gamma_matches_factorials() {
        for (n, f) in [(1u32, 1.0f64), (2, 1.0), (3, 2.0), (5, 24.0), (10, 362880.0)] {
            assert!(
                (ln_gamma(n as f64) - f.ln()).abs() < 1e-8,
                "lnΓ({n}) != ln({f})"
            );
        }
        // Γ(0.5) = sqrt(pi)
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-8);
    }

    #[test]
    fn objective_improves_with_more_restarts_or_equal() {
        let net = two_communities();
        let one = CathyHinEm::fit(&net, &EmConfig { restarts: 1, ..cfg(2, false) }).unwrap();
        let five = CathyHinEm::fit(&net, &EmConfig { restarts: 5, ..cfg(2, false) }).unwrap();
        assert!(five.objective >= one.objective - 1e-9);
    }
}
