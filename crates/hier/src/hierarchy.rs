//! Recursive top-down hierarchy construction (the CATHY/CATHYHIN outer
//! loop: Steps 1–3 of §3.1/§3.2).

use crate::em::{CathyHinEm, EdgeState, EmConfig, EmFit};
use crate::select::{select_k_prepared, Criterion};
use crate::HierError;
use lesm_net::TypedNetwork;

/// How the number of children per topic is chosen.
#[derive(Debug, Clone)]
pub enum ChildCount {
    /// Fixed `k` at every node.
    Fixed(usize),
    /// Per-level `k` (last entry reused below).
    PerLevel(Vec<usize>),
    /// BIC selection over an inclusive range (§3.2.3).
    Auto {
        /// Minimum candidate `k`.
        min: usize,
        /// Maximum candidate `k`.
        max: usize,
    },
}

/// Configuration for [`TopicHierarchy::construct`].
#[derive(Debug, Clone)]
pub struct CathyConfig {
    /// Children per topic.
    pub children: ChildCount,
    /// Maximum depth (root = level 0; depth 2 gives two expansion rounds).
    pub max_depth: usize,
    /// EM settings applied at every node.
    pub em: EmConfig,
    /// Stop expanding when a topic's network has fewer links than this.
    pub min_links: usize,
    /// Expected-weight threshold for subnetwork extraction (§3.2.1 uses 1).
    pub subnet_threshold: f64,
}

impl Default for CathyConfig {
    fn default() -> Self {
        Self {
            children: ChildCount::Fixed(4),
            max_depth: 2,
            em: EmConfig::default(),
            min_links: 30,
            subnet_threshold: 1.0,
        }
    }
}

/// One topic in a constructed hierarchy.
#[derive(Debug, Clone)]
pub struct HierTopic {
    /// Parent topic index (`None` for the root).
    pub parent: Option<usize>,
    /// Child topic indices.
    pub children: Vec<usize>,
    /// Depth (root = 0).
    pub level: usize,
    /// Path notation `o/1/2`.
    pub path: String,
    /// Ranking distribution per node type (`phi[x][i]`; empty at the root,
    /// where global importance is the parent distribution).
    pub phi: Vec<Vec<f64>>,
    /// The topic's share of its parent's links (`ρ`; 1.0 at the root).
    pub rho: f64,
    /// The expected-weight network owned by this topic.
    pub network: TypedNetwork,
}

/// A constructed multi-typed topical hierarchy.
#[derive(Debug, Clone)]
pub struct TopicHierarchy {
    /// Node type names (shared by every topic's network).
    pub type_names: Vec<String>,
    /// Topics; index 0 is the root.
    pub topics: Vec<HierTopic>,
    /// Per-topic fitted EM models for internal nodes (index-aligned with
    /// `topics`; `None` for leaves and unexpanded nodes).
    pub fits: Vec<Option<EmFit>>,
    /// Learned link-type weights per expanded topic (keyed `tx * T + ty`).
    pub alphas: Vec<Option<Vec<f64>>>,
}

/// Convergence budget for an incremental update refit ([`TopicHierarchy::update`]).
/// Warm starts converge in far fewer iterations than cold fits, so the
/// budget is deliberately separate from [`EmConfig::iters`]/[`EmConfig::tol`]
/// (the CLI surfaces it as `--update-iters` / `--update-tol`).
#[derive(Debug, Clone, Copy)]
pub struct UpdateBudget {
    /// Upper bound on warm EM iterations per topic.
    pub iters: usize,
    /// Relative-improvement early-exit tolerance (0 disables).
    pub tol: f64,
}

impl Default for UpdateBudget {
    fn default() -> Self {
        Self { iters: 30, tol: 1e-5 }
    }
}

/// Concatenates `base`'s blocks with `delta`'s over `delta`'s (enlarged)
/// node space. Duplicate `(i, j)` pairs across the two networks are kept
/// as separate links — the Poisson objective treats `w1·ln s + w2·ln s`
/// and `(w1+w2)·ln s` identically, and keeping them separate preserves
/// the append-only edge order the determinism contract relies on.
fn merge_networks(
    base: &TypedNetwork,
    delta: &TypedNetwork,
) -> Result<TypedNetwork, HierError> {
    if base.type_names != delta.type_names {
        return Err(HierError::InvalidConfig(format!(
            "delta network types {:?} do not match base types {:?}",
            delta.type_names, base.type_names
        )));
    }
    for (x, (&new_n, &old_n)) in delta.node_counts.iter().zip(&base.node_counts).enumerate() {
        if new_n < old_n {
            return Err(HierError::InvalidConfig(format!(
                "delta network shrinks type {x}: {new_n} nodes < base {old_n}"
            )));
        }
    }
    let mut merged = TypedNetwork::new(delta.type_names.clone(), delta.node_counts.clone());
    merged.blocks.extend(base.blocks.iter().cloned());
    merged.blocks.extend(delta.blocks.iter().cloned());
    Ok(merged)
}

impl TopicHierarchy {
    /// Recursively constructs a hierarchy from a root network.
    pub fn construct(root_net: TypedNetwork, config: &CathyConfig) -> Result<Self, HierError> {
        if config.max_depth == 0 {
            return Err(HierError::InvalidConfig("max_depth must be >= 1".into()));
        }
        let type_names = root_net.type_names.clone();
        let n_types = root_net.num_types();
        // Root node: global importance as phi.
        let mut root_phi = root_net.weighted_degrees();
        for row in &mut root_phi {
            let s: f64 = row.iter().sum();
            if s > 0.0 {
                row.iter_mut().for_each(|x| *x /= s);
            }
        }
        let mut hierarchy = TopicHierarchy {
            type_names,
            topics: vec![HierTopic {
                parent: None,
                children: vec![],
                level: 0,
                path: "o".into(),
                phi: root_phi,
                rho: 1.0,
                network: root_net,
            }],
            fits: vec![None],
            alphas: vec![None],
        };
        let mut frontier = vec![0usize];
        for level in 0..config.max_depth {
            let mut next = Vec::new();
            for &node in &frontier {
                if hierarchy.topics[node].network.num_links() < config.min_links {
                    continue;
                }
                // Flatten this topic's network once; the BIC sweep and the
                // final fit share the state.
                let state = EdgeState::new(&hierarchy.topics[node].network);
                let k = match &config.children {
                    ChildCount::Fixed(k) => *k,
                    ChildCount::PerLevel(v) => *v.get(level).or(v.last()).unwrap_or(&2),
                    ChildCount::Auto { min, max } => {
                        let (best, _) =
                            select_k_prepared(&state, *min..=*max, &config.em, Criterion::Bic)?;
                        best
                    }
                };
                if k < 1 {
                    continue;
                }
                let em_cfg = EmConfig { k, ..config.em.clone() };
                let fit = CathyHinEm::fit_prepared(&state, &em_cfg)?;
                for z in 0..k {
                    let subnet =
                        fit.subnetwork(&hierarchy.topics[node].network, z, config.subnet_threshold);
                    let child_idx = hierarchy.topics.len();
                    let path = format!("{}/{}", hierarchy.topics[node].path, z + 1);
                    let phi: Vec<Vec<f64>> = (0..n_types).map(|x| fit.phi[x][z].clone()).collect();
                    hierarchy.topics.push(HierTopic {
                        parent: Some(node),
                        children: vec![],
                        level: level + 1,
                        path,
                        phi,
                        rho: fit.rho[z + 1],
                        network: subnet,
                    });
                    hierarchy.fits.push(None);
                    hierarchy.alphas.push(None);
                    hierarchy.topics[node].children.push(child_idx);
                    next.push(child_idx);
                }
                hierarchy.alphas[node] = Some(fit.alpha.clone());
                hierarchy.fits[node] = Some(fit);
            }
            frontier = next;
            if frontier.is_empty() {
                break;
            }
        }
        Ok(hierarchy)
    }

    /// Incrementally refits a hierarchy after documents were appended:
    /// the delta network's edges are folded into the base root's flatten
    /// via [`EdgeState::append_delta`] (no rebuild) and every expanded
    /// topic is re-fit with [`CathyHinEm::fit_warm`] under `budget`,
    /// seeded from the base fit.
    ///
    /// The tree *shape* follows the base: each topic keeps its base `k`
    /// (no BIC re-selection — [`ChildCount::Auto`] is resolved by the base
    /// fit), and a base-expanded topic whose refreshed subnetwork falls
    /// under `min_links` becomes a leaf. Child networks are re-extracted
    /// from the updated parent network by expected weight, exactly as
    /// [`TopicHierarchy::construct`] does.
    ///
    /// Determinism: no RNG is consumed anywhere on this path (warm fits
    /// are single continuations), and the root edge order is the base
    /// flatten followed by the delta edges — a pure function of the
    /// (base hierarchy, delta network) pair. The same base + the same
    /// update sequence therefore produces bit-identical hierarchies,
    /// regardless of thread count or process restarts.
    pub fn update(
        base: &TopicHierarchy,
        root_delta: &TypedNetwork,
        config: &CathyConfig,
        budget: &UpdateBudget,
    ) -> Result<Self, HierError> {
        if base.topics.is_empty() {
            return Err(HierError::InvalidConfig("base hierarchy is empty".into()));
        }
        let merged_root = merge_networks(&base.topics[0].network, root_delta)?;
        let n_types = merged_root.num_types();
        let mut root_phi = merged_root.weighted_degrees();
        for row in &mut root_phi {
            let s: f64 = row.iter().sum();
            if s > 0.0 {
                row.iter_mut().for_each(|x| *x /= s);
            }
        }
        let mut out = TopicHierarchy {
            type_names: merged_root.type_names.clone(),
            topics: vec![HierTopic {
                parent: None,
                children: vec![],
                level: 0,
                path: "o".into(),
                phi: root_phi,
                rho: 1.0,
                network: merged_root,
            }],
            fits: vec![None],
            alphas: vec![None],
        };
        // Frontier of (updated topic, corresponding base topic) pairs.
        let mut frontier = vec![(0usize, 0usize)];
        for level in 0..config.max_depth {
            let mut next = Vec::new();
            for &(node, base_idx) in &frontier {
                // Only topics the base expanded are re-expanded; their k is
                // pinned by the base fit.
                let Some(prev_fit) = base.fits.get(base_idx).and_then(Option::as_ref) else {
                    continue;
                };
                if out.topics[node].network.num_links() < config.min_links {
                    continue;
                }
                let state = if node == 0 {
                    // Root: extend the base flatten with the delta edges
                    // instead of re-flattening the merged network.
                    let mut s = EdgeState::new(&base.topics[0].network);
                    s.append_delta(root_delta)?;
                    s
                } else {
                    EdgeState::new(&out.topics[node].network)
                };
                if state.num_links() == 0 {
                    continue;
                }
                let k = prev_fit.k;
                let em_cfg =
                    EmConfig { k, iters: budget.iters, tol: budget.tol, ..config.em.clone() };
                let fit = CathyHinEm::fit_warm(&state, &em_cfg, prev_fit)?;
                for z in 0..k {
                    let subnet =
                        fit.subnetwork(&out.topics[node].network, z, config.subnet_threshold);
                    let child_idx = out.topics.len();
                    let path = format!("{}/{}", out.topics[node].path, z + 1);
                    let phi: Vec<Vec<f64>> =
                        (0..n_types).map(|x| fit.phi[x][z].clone()).collect();
                    out.topics.push(HierTopic {
                        parent: Some(node),
                        children: vec![],
                        level: level + 1,
                        path,
                        phi,
                        rho: fit.rho[z + 1],
                        network: subnet,
                    });
                    out.fits.push(None);
                    out.alphas.push(None);
                    out.topics[node].children.push(child_idx);
                    if let Some(&base_child) = base.topics[base_idx].children.get(z) {
                        next.push((child_idx, base_child));
                    }
                }
                out.alphas[node] = Some(fit.alpha.clone());
                out.fits[node] = Some(fit);
            }
            frontier = next;
            if frontier.is_empty() {
                break;
            }
        }
        Ok(out)
    }

    /// Convenience: CATHY on a text-only corpus (§3.1) — builds the term
    /// co-occurrence network and constructs the hierarchy. The paper's
    /// text-only model has no background topic; the config's `background`
    /// flag is honored as given.
    pub fn from_corpus_text(
        corpus: &lesm_corpus::Corpus,
        config: &CathyConfig,
    ) -> Result<Self, HierError> {
        Self::construct(lesm_net::co_occurrence_network(corpus), config)
    }

    /// Convenience: CATHYHIN on a corpus with typed entities (§3.2) —
    /// builds the collapsed heterogeneous network and constructs the
    /// hierarchy.
    pub fn from_corpus_hin(
        corpus: &lesm_corpus::Corpus,
        config: &CathyConfig,
    ) -> Result<Self, HierError> {
        Self::construct(lesm_net::collapsed_network(corpus), config)
    }

    /// Number of topics (including the root).
    pub fn len(&self) -> usize {
        self.topics.len()
    }

    /// Whether the hierarchy is empty (never true after `construct`).
    pub fn is_empty(&self) -> bool {
        self.topics.is_empty()
    }

    /// Indices of leaf topics.
    pub fn leaves(&self) -> Vec<usize> {
        (0..self.topics.len()).filter(|&t| self.topics[t].children.is_empty()).collect()
    }

    /// Top `n` nodes of type `x` in topic `t`. `total_cmp` keeps the sort
    /// panic-free even for NaN scores (DESIGN.md §10); non-NaN inputs
    /// order exactly as before.
    pub fn top_nodes(&self, t: usize, x: usize, n: usize) -> Vec<(u32, f64)> {
        let mut idx: Vec<(u32, f64)> =
            self.topics[t].phi[x].iter().enumerate().map(|(i, &p)| (i as u32, p)).collect();
        idx.sort_by(|a, b| b.1.total_cmp(&a.1));
        idx.truncate(n);
        idx
    }

    /// Root-to-node path indices (root first).
    pub fn path_nodes(&self, t: usize) -> Vec<usize> {
        let mut out = vec![t];
        let mut cur = t;
        while let Some(p) = self.topics[cur].parent {
            out.push(p);
            cur = p;
        }
        out.reverse();
        out
    }

    /// Siblings of `t` (children of its parent excluding `t`).
    pub fn siblings(&self, t: usize) -> Vec<usize> {
        match self.topics[t].parent {
            None => vec![],
            Some(p) => {
                self.topics[p].children.iter().copied().filter(|&c| c != t).collect()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::em::WeightMode;
    use lesm_net::NetworkBuilder;

    /// 2x2 nested communities: terms 0-7 and 8-15; within each, two
    /// sub-blocks of 4.
    fn nested_network() -> TypedNetwork {
        let mut b = NetworkBuilder::new(vec!["term".into()], vec![16]);
        for blk in [0u32, 4, 8, 12] {
            for i in blk..blk + 4 {
                for j in (i + 1)..blk + 4 {
                    b.add(0, i, 0, j, 20.0);
                }
            }
        }
        // Weak intra-supergroup ties.
        for (a, bnode) in [(0u32, 4u32), (1, 5), (8, 12), (9, 13)] {
            b.add(0, a, 0, bnode, 6.0);
        }
        // Very weak cross-supergroup tie.
        b.add(0, 7, 0, 8, 1.0);
        b.build()
    }

    fn config() -> CathyConfig {
        CathyConfig {
            children: ChildCount::Fixed(2),
            max_depth: 2,
            em: EmConfig {
                iters: 150,
                restarts: 4,
                seed: 3,
                background: false,
                weights: WeightMode::Equal,
                ..EmConfig::default()
            },
            min_links: 4,
            subnet_threshold: 0.5,
        }
    }

    #[test]
    fn constructs_two_levels() {
        let h = TopicHierarchy::construct(nested_network(), &config()).unwrap();
        assert_eq!(h.topics[0].children.len(), 2);
        assert!(h.len() >= 3);
        // Level-1 topics should separate the supergroups.
        let c0 = h.topics[0].children[0];
        let c1 = h.topics[0].children[1];
        let mass_low_c0: f64 = h.topics[c0].phi[0][..8].iter().sum();
        let mass_low_c1: f64 = h.topics[c1].phi[0][..8].iter().sum();
        assert!(
            (mass_low_c0 > 0.85) != (mass_low_c1 > 0.85),
            "level-1 split failed: {mass_low_c0:.2} vs {mass_low_c1:.2}"
        );
        // Paths follow the o/i/j convention.
        assert_eq!(h.topics[c0].path, "o/1");
        for &g in &h.topics[c0].children {
            assert!(h.topics[g].path.starts_with("o/1/"));
            assert_eq!(h.topics[g].level, 2);
        }
    }

    #[test]
    fn path_and_siblings() {
        let h = TopicHierarchy::construct(nested_network(), &config()).unwrap();
        let c0 = h.topics[0].children[0];
        if let Some(&g) = h.topics[c0].children.first() {
            assert_eq!(h.path_nodes(g), vec![0, c0, g]);
            assert_eq!(h.siblings(g).len(), h.topics[c0].children.len() - 1);
        }
        assert!(h.siblings(0).is_empty());
    }

    #[test]
    fn rho_shares_sum_to_at_most_one() {
        let h = TopicHierarchy::construct(nested_network(), &config()).unwrap();
        let s: f64 = h.topics[0].children.iter().map(|&c| h.topics[c].rho).sum();
        assert!(s <= 1.0 + 1e-9);
        assert!(s > 0.5, "children should own most links, got {s}");
    }

    #[test]
    fn min_links_stops_recursion() {
        let mut cfg = config();
        cfg.min_links = 10_000;
        let h = TopicHierarchy::construct(nested_network(), &cfg).unwrap();
        assert_eq!(h.len(), 1, "root too small to expand");
    }

    #[test]
    fn zero_depth_rejected() {
        let mut cfg = config();
        cfg.max_depth = 0;
        assert!(TopicHierarchy::construct(nested_network(), &cfg).is_err());
    }

    /// A small delta for [`nested_network`]: one new term (id 16) joining
    /// the first sub-block plus a reinforcing edge among existing nodes.
    fn nested_delta() -> TypedNetwork {
        let mut b = NetworkBuilder::new(vec!["term".into()], vec![17]);
        b.add(0, 16, 0, 0, 15.0);
        b.add(0, 16, 0, 1, 15.0);
        b.add(0, 16, 0, 2, 10.0);
        b.add(0, 0, 0, 1, 5.0);
        b.build()
    }

    #[test]
    fn update_follows_base_shape_and_covers_new_nodes() {
        let base = TopicHierarchy::construct(nested_network(), &config()).unwrap();
        let budget = UpdateBudget { iters: 25, tol: 1e-6 };
        let up = TopicHierarchy::update(&base, &nested_delta(), &config(), &budget).unwrap();
        // Same tree shape: k is pinned per topic by the base fits.
        assert_eq!(up.len(), base.len());
        for (t, bt) in up.topics.iter().zip(&base.topics) {
            assert_eq!(t.children.len(), bt.children.len(), "shape drifted at {}", t.path);
            assert_eq!(t.path, bt.path);
        }
        // The enlarged node space is visible at every updated topic.
        assert_eq!(up.topics[0].phi[0].len(), 17);
        let c0 = up.topics[0].children[0];
        assert_eq!(up.topics[c0].phi[0].len(), 17);
        // The new term carries meaningful mass in whichever level-1 topic
        // owns the low supergroup.
        let c1 = up.topics[0].children[1];
        let low = if up.topics[c0].phi[0][..8].iter().sum::<f64>()
            > up.topics[c1].phi[0][..8].iter().sum::<f64>()
        {
            c0
        } else {
            c1
        };
        assert!(
            up.topics[low].phi[0][16] > 1e-4,
            "new node got no mass: {}",
            up.topics[low].phi[0][16]
        );
    }

    #[test]
    fn update_is_bit_deterministic() {
        let base = TopicHierarchy::construct(nested_network(), &config()).unwrap();
        let budget = UpdateBudget::default();
        let a = TopicHierarchy::update(&base, &nested_delta(), &config(), &budget).unwrap();
        let b = TopicHierarchy::update(&base, &nested_delta(), &config(), &budget).unwrap();
        assert_eq!(a.len(), b.len());
        for (ta, tb) in a.topics.iter().zip(&b.topics) {
            assert_eq!(ta.phi, tb.phi);
            assert_eq!(ta.rho.to_bits(), tb.rho.to_bits());
        }
        // Thread count must not change the bits either (lesm-par contract).
        let mut cfg4 = config();
        cfg4.em.threads = 4;
        let c = TopicHierarchy::update(&base, &nested_delta(), &cfg4, &budget).unwrap();
        for (ta, tc) in a.topics.iter().zip(&c.topics) {
            assert_eq!(ta.phi, tc.phi);
        }
    }

    #[test]
    fn update_rejects_mismatched_delta() {
        let base = TopicHierarchy::construct(nested_network(), &config()).unwrap();
        let budget = UpdateBudget::default();
        let wrong_type =
            NetworkBuilder::new(vec!["author".into()], vec![17]).build();
        assert!(
            TopicHierarchy::update(&base, &wrong_type, &config(), &budget).is_err()
        );
        let shrunk = NetworkBuilder::new(vec!["term".into()], vec![4]).build();
        assert!(TopicHierarchy::update(&base, &shrunk, &config(), &budget).is_err());
    }

    #[test]
    fn corpus_constructors_work() {
        let mut corpus = lesm_corpus::Corpus::new();
        let author = corpus.entities.add_type("author");
        for i in 0..40 {
            let d = if i % 2 == 0 {
                corpus.push_text("query database index storage engine")
            } else {
                corpus.push_text("ranking retrieval search relevance feedback")
            };
            corpus
                .link_entity(d, author, if i % 2 == 0 { "alice" } else { "bob" })
                .unwrap();
        }
        let mut cfg = config();
        cfg.max_depth = 1;
        cfg.min_links = 4;
        let text = TopicHierarchy::from_corpus_text(&corpus, &cfg).unwrap();
        assert_eq!(text.type_names, vec!["term"]);
        assert_eq!(text.topics[0].children.len(), 2);
        let hin = TopicHierarchy::from_corpus_hin(&corpus, &cfg).unwrap();
        assert_eq!(hin.type_names, vec!["author", "term"]);
        assert_eq!(hin.topics[0].children.len(), 2);
        // The HIN variant ranks authors: each child topic's top author is
        // the theme's dedicated author.
        let c0 = hin.topics[0].children[0];
        let top_author = hin.top_nodes(c0, 0, 1)[0].0;
        assert!(top_author <= 1);
    }
}
