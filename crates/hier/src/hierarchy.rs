//! Recursive top-down hierarchy construction (the CATHY/CATHYHIN outer
//! loop: Steps 1–3 of §3.1/§3.2).

use crate::em::{CathyHinEm, EdgeState, EmConfig, EmFit};
use crate::select::{select_k_prepared, Criterion};
use crate::HierError;
use lesm_net::TypedNetwork;

/// How the number of children per topic is chosen.
#[derive(Debug, Clone)]
pub enum ChildCount {
    /// Fixed `k` at every node.
    Fixed(usize),
    /// Per-level `k` (last entry reused below).
    PerLevel(Vec<usize>),
    /// BIC selection over an inclusive range (§3.2.3).
    Auto {
        /// Minimum candidate `k`.
        min: usize,
        /// Maximum candidate `k`.
        max: usize,
    },
}

/// Configuration for [`TopicHierarchy::construct`].
#[derive(Debug, Clone)]
pub struct CathyConfig {
    /// Children per topic.
    pub children: ChildCount,
    /// Maximum depth (root = level 0; depth 2 gives two expansion rounds).
    pub max_depth: usize,
    /// EM settings applied at every node.
    pub em: EmConfig,
    /// Stop expanding when a topic's network has fewer links than this.
    pub min_links: usize,
    /// Expected-weight threshold for subnetwork extraction (§3.2.1 uses 1).
    pub subnet_threshold: f64,
}

impl Default for CathyConfig {
    fn default() -> Self {
        Self {
            children: ChildCount::Fixed(4),
            max_depth: 2,
            em: EmConfig::default(),
            min_links: 30,
            subnet_threshold: 1.0,
        }
    }
}

/// One topic in a constructed hierarchy.
#[derive(Debug, Clone)]
pub struct HierTopic {
    /// Parent topic index (`None` for the root).
    pub parent: Option<usize>,
    /// Child topic indices.
    pub children: Vec<usize>,
    /// Depth (root = 0).
    pub level: usize,
    /// Path notation `o/1/2`.
    pub path: String,
    /// Ranking distribution per node type (`phi[x][i]`; empty at the root,
    /// where global importance is the parent distribution).
    pub phi: Vec<Vec<f64>>,
    /// The topic's share of its parent's links (`ρ`; 1.0 at the root).
    pub rho: f64,
    /// The expected-weight network owned by this topic.
    pub network: TypedNetwork,
}

/// A constructed multi-typed topical hierarchy.
#[derive(Debug, Clone)]
pub struct TopicHierarchy {
    /// Node type names (shared by every topic's network).
    pub type_names: Vec<String>,
    /// Topics; index 0 is the root.
    pub topics: Vec<HierTopic>,
    /// Per-topic fitted EM models for internal nodes (index-aligned with
    /// `topics`; `None` for leaves and unexpanded nodes).
    pub fits: Vec<Option<EmFit>>,
    /// Learned link-type weights per expanded topic (keyed `tx * T + ty`).
    pub alphas: Vec<Option<Vec<f64>>>,
}

impl TopicHierarchy {
    /// Recursively constructs a hierarchy from a root network.
    pub fn construct(root_net: TypedNetwork, config: &CathyConfig) -> Result<Self, HierError> {
        if config.max_depth == 0 {
            return Err(HierError::InvalidConfig("max_depth must be >= 1".into()));
        }
        let type_names = root_net.type_names.clone();
        let n_types = root_net.num_types();
        // Root node: global importance as phi.
        let mut root_phi = root_net.weighted_degrees();
        for row in &mut root_phi {
            let s: f64 = row.iter().sum();
            if s > 0.0 {
                row.iter_mut().for_each(|x| *x /= s);
            }
        }
        let mut hierarchy = TopicHierarchy {
            type_names,
            topics: vec![HierTopic {
                parent: None,
                children: vec![],
                level: 0,
                path: "o".into(),
                phi: root_phi,
                rho: 1.0,
                network: root_net,
            }],
            fits: vec![None],
            alphas: vec![None],
        };
        let mut frontier = vec![0usize];
        for level in 0..config.max_depth {
            let mut next = Vec::new();
            for &node in &frontier {
                if hierarchy.topics[node].network.num_links() < config.min_links {
                    continue;
                }
                // Flatten this topic's network once; the BIC sweep and the
                // final fit share the state.
                let state = EdgeState::new(&hierarchy.topics[node].network);
                let k = match &config.children {
                    ChildCount::Fixed(k) => *k,
                    ChildCount::PerLevel(v) => *v.get(level).or(v.last()).unwrap_or(&2),
                    ChildCount::Auto { min, max } => {
                        let (best, _) =
                            select_k_prepared(&state, *min..=*max, &config.em, Criterion::Bic)?;
                        best
                    }
                };
                if k < 1 {
                    continue;
                }
                let em_cfg = EmConfig { k, ..config.em.clone() };
                let fit = CathyHinEm::fit_prepared(&state, &em_cfg)?;
                for z in 0..k {
                    let subnet =
                        fit.subnetwork(&hierarchy.topics[node].network, z, config.subnet_threshold);
                    let child_idx = hierarchy.topics.len();
                    let path = format!("{}/{}", hierarchy.topics[node].path, z + 1);
                    let phi: Vec<Vec<f64>> = (0..n_types).map(|x| fit.phi[x][z].clone()).collect();
                    hierarchy.topics.push(HierTopic {
                        parent: Some(node),
                        children: vec![],
                        level: level + 1,
                        path,
                        phi,
                        rho: fit.rho[z + 1],
                        network: subnet,
                    });
                    hierarchy.fits.push(None);
                    hierarchy.alphas.push(None);
                    hierarchy.topics[node].children.push(child_idx);
                    next.push(child_idx);
                }
                hierarchy.alphas[node] = Some(fit.alpha.clone());
                hierarchy.fits[node] = Some(fit);
            }
            frontier = next;
            if frontier.is_empty() {
                break;
            }
        }
        Ok(hierarchy)
    }

    /// Convenience: CATHY on a text-only corpus (§3.1) — builds the term
    /// co-occurrence network and constructs the hierarchy. The paper's
    /// text-only model has no background topic; the config's `background`
    /// flag is honored as given.
    pub fn from_corpus_text(
        corpus: &lesm_corpus::Corpus,
        config: &CathyConfig,
    ) -> Result<Self, HierError> {
        Self::construct(lesm_net::co_occurrence_network(corpus), config)
    }

    /// Convenience: CATHYHIN on a corpus with typed entities (§3.2) —
    /// builds the collapsed heterogeneous network and constructs the
    /// hierarchy.
    pub fn from_corpus_hin(
        corpus: &lesm_corpus::Corpus,
        config: &CathyConfig,
    ) -> Result<Self, HierError> {
        Self::construct(lesm_net::collapsed_network(corpus), config)
    }

    /// Number of topics (including the root).
    pub fn len(&self) -> usize {
        self.topics.len()
    }

    /// Whether the hierarchy is empty (never true after `construct`).
    pub fn is_empty(&self) -> bool {
        self.topics.is_empty()
    }

    /// Indices of leaf topics.
    pub fn leaves(&self) -> Vec<usize> {
        (0..self.topics.len()).filter(|&t| self.topics[t].children.is_empty()).collect()
    }

    /// Top `n` nodes of type `x` in topic `t`. `total_cmp` keeps the sort
    /// panic-free even for NaN scores (DESIGN.md §10); non-NaN inputs
    /// order exactly as before.
    pub fn top_nodes(&self, t: usize, x: usize, n: usize) -> Vec<(u32, f64)> {
        let mut idx: Vec<(u32, f64)> =
            self.topics[t].phi[x].iter().enumerate().map(|(i, &p)| (i as u32, p)).collect();
        idx.sort_by(|a, b| b.1.total_cmp(&a.1));
        idx.truncate(n);
        idx
    }

    /// Root-to-node path indices (root first).
    pub fn path_nodes(&self, t: usize) -> Vec<usize> {
        let mut out = vec![t];
        let mut cur = t;
        while let Some(p) = self.topics[cur].parent {
            out.push(p);
            cur = p;
        }
        out.reverse();
        out
    }

    /// Siblings of `t` (children of its parent excluding `t`).
    pub fn siblings(&self, t: usize) -> Vec<usize> {
        match self.topics[t].parent {
            None => vec![],
            Some(p) => {
                self.topics[p].children.iter().copied().filter(|&c| c != t).collect()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::em::WeightMode;
    use lesm_net::NetworkBuilder;

    /// 2x2 nested communities: terms 0-7 and 8-15; within each, two
    /// sub-blocks of 4.
    fn nested_network() -> TypedNetwork {
        let mut b = NetworkBuilder::new(vec!["term".into()], vec![16]);
        for blk in [0u32, 4, 8, 12] {
            for i in blk..blk + 4 {
                for j in (i + 1)..blk + 4 {
                    b.add(0, i, 0, j, 20.0);
                }
            }
        }
        // Weak intra-supergroup ties.
        for (a, bnode) in [(0u32, 4u32), (1, 5), (8, 12), (9, 13)] {
            b.add(0, a, 0, bnode, 6.0);
        }
        // Very weak cross-supergroup tie.
        b.add(0, 7, 0, 8, 1.0);
        b.build()
    }

    fn config() -> CathyConfig {
        CathyConfig {
            children: ChildCount::Fixed(2),
            max_depth: 2,
            em: EmConfig {
                iters: 150,
                restarts: 4,
                seed: 3,
                background: false,
                weights: WeightMode::Equal,
                ..EmConfig::default()
            },
            min_links: 4,
            subnet_threshold: 0.5,
        }
    }

    #[test]
    fn constructs_two_levels() {
        let h = TopicHierarchy::construct(nested_network(), &config()).unwrap();
        assert_eq!(h.topics[0].children.len(), 2);
        assert!(h.len() >= 3);
        // Level-1 topics should separate the supergroups.
        let c0 = h.topics[0].children[0];
        let c1 = h.topics[0].children[1];
        let mass_low_c0: f64 = h.topics[c0].phi[0][..8].iter().sum();
        let mass_low_c1: f64 = h.topics[c1].phi[0][..8].iter().sum();
        assert!(
            (mass_low_c0 > 0.85) != (mass_low_c1 > 0.85),
            "level-1 split failed: {mass_low_c0:.2} vs {mass_low_c1:.2}"
        );
        // Paths follow the o/i/j convention.
        assert_eq!(h.topics[c0].path, "o/1");
        for &g in &h.topics[c0].children {
            assert!(h.topics[g].path.starts_with("o/1/"));
            assert_eq!(h.topics[g].level, 2);
        }
    }

    #[test]
    fn path_and_siblings() {
        let h = TopicHierarchy::construct(nested_network(), &config()).unwrap();
        let c0 = h.topics[0].children[0];
        if let Some(&g) = h.topics[c0].children.first() {
            assert_eq!(h.path_nodes(g), vec![0, c0, g]);
            assert_eq!(h.siblings(g).len(), h.topics[c0].children.len() - 1);
        }
        assert!(h.siblings(0).is_empty());
    }

    #[test]
    fn rho_shares_sum_to_at_most_one() {
        let h = TopicHierarchy::construct(nested_network(), &config()).unwrap();
        let s: f64 = h.topics[0].children.iter().map(|&c| h.topics[c].rho).sum();
        assert!(s <= 1.0 + 1e-9);
        assert!(s > 0.5, "children should own most links, got {s}");
    }

    #[test]
    fn min_links_stops_recursion() {
        let mut cfg = config();
        cfg.min_links = 10_000;
        let h = TopicHierarchy::construct(nested_network(), &cfg).unwrap();
        assert_eq!(h.len(), 1, "root too small to expand");
    }

    #[test]
    fn zero_depth_rejected() {
        let mut cfg = config();
        cfg.max_depth = 0;
        assert!(TopicHierarchy::construct(nested_network(), &cfg).is_err());
    }

    #[test]
    fn corpus_constructors_work() {
        let mut corpus = lesm_corpus::Corpus::new();
        let author = corpus.entities.add_type("author");
        for i in 0..40 {
            let d = if i % 2 == 0 {
                corpus.push_text("query database index storage engine")
            } else {
                corpus.push_text("ranking retrieval search relevance feedback")
            };
            corpus
                .link_entity(d, author, if i % 2 == 0 { "alice" } else { "bob" })
                .unwrap();
        }
        let mut cfg = config();
        cfg.max_depth = 1;
        cfg.min_links = 4;
        let text = TopicHierarchy::from_corpus_text(&corpus, &cfg).unwrap();
        assert_eq!(text.type_names, vec!["term"]);
        assert_eq!(text.topics[0].children.len(), 2);
        let hin = TopicHierarchy::from_corpus_hin(&corpus, &cfg).unwrap();
        assert_eq!(hin.type_names, vec!["author", "term"]);
        assert_eq!(hin.topics[0].children.len(), 2);
        // The HIN variant ranks authors: each child topic's top author is
        // the theme's dedicated author.
        let c0 = hin.topics[0].children[0];
        let top_author = hin.top_nodes(c0, 0, 1)[0].0;
        assert!(top_author <= 1);
    }
}
