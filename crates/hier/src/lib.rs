//! CATHY and CATHYHIN — recursive hierarchical topic and community
//! discovery (dissertation Chapter 3).
//!
//! The construction is top-down: every topic node owns an edge-weighted
//! (typed) network; a Poisson link-generation model is fitted by EM to
//! softly partition the link weights into `k` subtopics (plus an optional
//! background topic), each subtopic's expected-weight subnetwork is
//! extracted, and the procedure recurses.
//!
//! * [`em`] — the unified generative model and its EM inference
//!   (eqs. 3.5–3.7 for text-only CATHY; eqs. 3.24–3.29 with background
//!   topic for CATHYHIN), including link-type weight learning
//!   (eqs. 3.37–3.38 under the Theorem 3.2 normalization).
//! * [`select`] — BIC/AIC model selection for the number of subtopics
//!   (§3.2.3).
//! * [`hierarchy`] — the recursive constructor and the resulting
//!   [`TopicHierarchy`].

// DESIGN.md §10: library code must surface typed errors, not unwraps.
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

// Index-based loops are kept where they mirror the paper's equations.
#![allow(clippy::needless_range_loop)]

pub mod cv;
pub mod em;
pub mod hierarchy;
pub mod select;

pub use cv::{select_k_cv, CvConfig};
pub use em::{CathyHinEm, EdgeState, EmConfig, EmFit, WeightMode};
pub use hierarchy::{CathyConfig, HierTopic, TopicHierarchy, UpdateBudget};
pub use select::{bic_score, select_k, select_k_prepared};

/// Errors produced by hierarchy construction.
#[derive(Debug, Clone, PartialEq)]
pub enum HierError {
    /// The input network has no links.
    EmptyNetwork,
    /// An invalid configuration value.
    InvalidConfig(String),
}

impl std::fmt::Display for HierError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HierError::EmptyNetwork => write!(f, "network has no links"),
            HierError::InvalidConfig(m) => write!(f, "invalid config: {m}"),
        }
    }
}

impl std::error::Error for HierError {}
