//! Property-based tests for CATHY/CATHYHIN inference invariants.

use lesm_hier::em::{CathyHinEm, EmConfig, WeightMode};
use lesm_net::NetworkBuilder;
use proptest::prelude::*;

/// A random small two-type network guaranteed non-empty.
fn random_network() -> impl Strategy<Value = lesm_net::TypedNetwork> {
    (
        proptest::collection::vec((0u32..6, 0u32..6, 1.0f64..8.0), 1..30),
        proptest::collection::vec((0u32..4, 0u32..6, 1.0f64..5.0), 0..20),
    )
        .prop_map(|(tt, at)| {
            let mut b = NetworkBuilder::new(vec!["author".into(), "term".into()], vec![4, 6]);
            for (i, j, w) in tt {
                b.add(1, i, 1, j, w);
            }
            for (a, t, w) in at {
                b.add(0, a, 1, t, w);
            }
            b.build()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn em_outputs_are_distributions(net in random_network(), k in 1usize..4, bg in proptest::bool::ANY) {
        let cfg = EmConfig {
            k,
            iters: 40,
            restarts: 1,
            seed: 9,
            background: bg,
            weights: WeightMode::Equal,
            ..EmConfig::default()
        };
        let fit = CathyHinEm::fit(&net, &cfg).unwrap();
        let rho_sum: f64 = fit.rho.iter().sum();
        prop_assert!((rho_sum - 1.0).abs() < 1e-8, "rho sums to {rho_sum}");
        prop_assert!(fit.rho.iter().all(|&r| r >= 0.0));
        if !bg {
            prop_assert!(fit.rho[0] < 1e-12);
        }
        for x in 0..2 {
            for z in 0..k {
                let s: f64 = fit.phi[x][z].iter().sum();
                prop_assert!((s - 1.0).abs() < 1e-8 || s.abs() < 1e-8, "phi[{x}][{z}] = {s}");
                prop_assert!(fit.phi[x][z].iter().all(|&p| p >= 0.0));
            }
        }
    }

    #[test]
    fn link_posteriors_sum_to_one_on_observed_links(net in random_network(), k in 1usize..4) {
        let cfg = EmConfig {
            k, iters: 30, restarts: 1, seed: 4,
            background: true, weights: WeightMode::Equal,
            ..EmConfig::default()
        };
        let fit = CathyHinEm::fit(&net, &cfg).unwrap();
        for blk in &net.blocks {
            for &(i, j, _) in blk.edges.iter().take(5) {
                let q = fit.link_posterior(blk.tx, i, blk.ty, j);
                let s: f64 = q.iter().sum();
                prop_assert!((s - 1.0).abs() < 1e-8, "posterior sums to {s}");
                prop_assert!(q.iter().all(|&p| p >= 0.0));
            }
        }
    }

    #[test]
    fn subnetworks_never_exceed_parent_weight(net in random_network(), k in 2usize..4) {
        let cfg = EmConfig {
            k, iters: 30, restarts: 1, seed: 2,
            background: false, weights: WeightMode::Equal,
            ..EmConfig::default()
        };
        let fit = CathyHinEm::fit(&net, &cfg).unwrap();
        let parent_w = net.total_weight();
        let mut child_total = 0.0;
        for z in 0..k {
            let sub = fit.subnetwork(&net, z, 0.0);
            let w = sub.total_weight();
            prop_assert!(w <= parent_w + 1e-6);
            child_total += w;
        }
        // With threshold 0 and no background, children partition the weight.
        prop_assert!((child_total - parent_w).abs() < 1e-6, "{child_total} vs {parent_w}");
    }

    #[test]
    fn learned_weights_respect_geometric_mean_constraint(net in random_network()) {
        let cfg = EmConfig {
            k: 2, iters: 30, restarts: 1, seed: 6,
            background: true, weights: WeightMode::Learned, weight_rounds: 2,
            ..EmConfig::default()
        };
        let fit = CathyHinEm::fit(&net, &cfg).unwrap();
        let t = net.num_types();
        let mut log_sum = 0.0;
        for blk in &net.blocks {
            let tp = blk.tx * t + blk.ty;
            log_sum += blk.len() as f64 * fit.alpha[tp].max(1e-300).ln();
        }
        prop_assert!(log_sum.abs() < 1e-6, "Π α^n != 1: log sum {log_sum}");
        prop_assert!(fit.alpha.iter().all(|&a| a > 0.0));
    }

    #[test]
    fn em_objective_is_nondecreasing(net in random_network(), k in 1usize..4, bg in proptest::bool::ANY) {
        // The auxiliary-function argument after eq. 3.17: every EM
        // iteration can only improve the surrogate objective.
        let cfg = EmConfig {
            k, iters: 25, restarts: 1, seed: 8,
            background: bg, weights: WeightMode::Equal,
            ..EmConfig::default()
        };
        let fit = CathyHinEm::fit(&net, &cfg).unwrap();
        prop_assert_eq!(fit.objective_trace.len(), 25);
        for w in fit.objective_trace.windows(2) {
            prop_assert!(
                w[1] >= w[0] - 1e-6 * (1.0 + w[0].abs()),
                "objective decreased: {} -> {}",
                w[0],
                w[1]
            );
        }
    }

    #[test]
    fn parallel_em_is_bit_identical_to_serial(
        net in random_network(),
        k in 1usize..4,
        bg in proptest::bool::ANY,
        threads in 2usize..9,
    ) {
        // The tentpole determinism contract: for any thread count, the EM
        // fit (every learned distribution, the weights, and the exact
        // objective/likelihood floats) matches `threads: 1` bit for bit.
        let base = EmConfig {
            k, iters: 20, restarts: 2, seed: 11,
            background: bg, weights: WeightMode::Learned, weight_rounds: 2,
            ..EmConfig::default()
        };
        let serial = CathyHinEm::fit(&net, &base).unwrap();
        let par = CathyHinEm::fit(&net, &EmConfig { threads, ..base }).unwrap();
        prop_assert_eq!(&serial.rho, &par.rho);
        prop_assert_eq!(&serial.phi, &par.phi);
        prop_assert_eq!(&serial.phi0, &par.phi0);
        prop_assert_eq!(&serial.alpha, &par.alpha);
        prop_assert_eq!(&serial.theta, &par.theta);
        prop_assert_eq!(serial.objective.to_bits(), par.objective.to_bits());
        prop_assert_eq!(serial.loglik.to_bits(), par.loglik.to_bits());
        prop_assert_eq!(&serial.objective_trace, &par.objective_trace);
    }

    #[test]
    fn theta_is_a_distribution_over_type_pairs(net in random_network()) {
        let cfg = EmConfig {
            k: 2, iters: 10, restarts: 1, seed: 3,
            background: false, weights: WeightMode::Equal,
            ..EmConfig::default()
        };
        let fit = CathyHinEm::fit(&net, &cfg).unwrap();
        let s: f64 = fit.theta.iter().sum();
        prop_assert!((s - 1.0).abs() < 1e-9, "theta sums to {s}");
    }
}
