//! Property-based tests for the topic-model substrates.

use lesm_topicmodel::lda::{Lda, LdaConfig};
use lesm_topicmodel::pdlda::{PdLdaLike, PdLdaLikeConfig};
use lesm_topicmodel::phrase_lda::{PhraseLda, PhraseLdaConfig};
use lesm_topicmodel::plsa::{Plsa, PlsaConfig};
use lesm_topicmodel::tng::{Tng, TngConfig};
use proptest::prelude::*;

fn random_docs() -> impl Strategy<Value = Vec<Vec<u32>>> {
    proptest::collection::vec(proptest::collection::vec(0u32..12, 1..15), 3..15)
}

fn assert_distribution(rows: &[Vec<f64>], label: &str) {
    for row in rows {
        let s: f64 = row.iter().sum();
        assert!((s - 1.0).abs() < 1e-8, "{label} row sums to {s}");
        assert!(row.iter().all(|&x| x >= 0.0), "{label} has negative mass");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn lda_outputs_are_distributions(docs in random_docs(), k in 1usize..5, seed in 0u64..100) {
        let m = Lda::fit(&docs, 12, &LdaConfig { k, iters: 15, seed, ..Default::default() });
        assert_distribution(&m.topic_word, "phi");
        assert_distribution(&m.doc_topic, "theta");
        // Assignments in range.
        for (d, doc) in docs.iter().enumerate() {
            prop_assert_eq!(m.assignments[d].len(), doc.len());
            for &z in &m.assignments[d] {
                prop_assert!((z as usize) < k);
            }
        }
    }

    #[test]
    fn plsa_likelihood_never_decreases(docs in random_docs(), k in 1usize..4) {
        let m = Plsa::fit(&docs, 12, &PlsaConfig { k, iters: 15, seed: 3 });
        for w in m.loglik_trace.windows(2) {
            prop_assert!(w[1] >= w[0] - 1e-6, "EM decreased: {} -> {}", w[0], w[1]);
        }
        assert_distribution(&m.topic_word, "phi");
    }

    #[test]
    fn phrase_lda_respects_segment_structure(docs in random_docs(), k in 1usize..4) {
        // Make every doc a two-segment partition.
        let segged: Vec<Vec<Vec<u32>>> = docs
            .iter()
            .map(|d| {
                let mid = d.len() / 2;
                vec![d[..mid].to_vec(), d[mid..].to_vec()]
            })
            .collect();
        let m = PhraseLda::fit(&segged, 12, &PhraseLdaConfig { k, iters: 10, restarts: 1, ..Default::default() });
        assert_distribution(&m.topic_word, "phi");
        for (d, segs) in segged.iter().enumerate() {
            prop_assert_eq!(m.segment_topics[d].len(), segs.len());
        }
        let s: f64 = m.topic_weight.iter().sum();
        prop_assert!((s - 1.0).abs() < 1e-8);
    }

    #[test]
    fn tng_never_glues_the_first_token(docs in random_docs(), seed in 0u64..50) {
        let m = Tng::fit(&docs, 12, &TngConfig { k: 2, iters: 10, seed, ..Default::default() });
        for row in &m.x {
            if !row.is_empty() {
                prop_assert!(!row[0]);
            }
        }
        assert_distribution(&m.topic_word, "phi");
    }

    #[test]
    fn pdlda_segments_partition_documents(docs in random_docs(), seed in 0u64..50) {
        let m = PdLdaLike::fit(&docs, 12, &PdLdaLikeConfig { k: 2, iters: 8, seed, ..Default::default() });
        for (doc, segs) in docs.iter().zip(&m.segments) {
            let flat: Vec<u32> = segs.iter().flatten().copied().collect();
            prop_assert_eq!(&flat, doc);
        }
        assert_distribution(&m.topic_word, "phi");
    }
}
