//! Latent Dirichlet allocation with collapsed Gibbs sampling.
//!
//! This is the maximum-likelihood-family baseline that Chapter 7 contrasts
//! STROD against: nondeterministic across seeds, with per-iteration cost
//! `O(total tokens × k)` and no convergence guarantee — exactly the
//! properties §7.1 lists as undesirable.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for [`Lda::fit`].
#[derive(Debug, Clone)]
pub struct LdaConfig {
    /// Number of topics.
    pub k: usize,
    /// Symmetric document-topic Dirichlet hyperparameter.
    pub alpha: f64,
    /// Symmetric topic-word Dirichlet hyperparameter.
    pub beta: f64,
    /// Gibbs sweeps.
    pub iters: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for LdaConfig {
    fn default() -> Self {
        Self { k: 10, alpha: 0.5, beta: 0.01, iters: 200, seed: 42 }
    }
}

/// A fitted LDA model.
#[derive(Debug, Clone)]
pub struct LdaModel {
    /// Number of topics.
    pub k: usize,
    /// Vocabulary size.
    pub vocab_size: usize,
    /// `k x V` topic-word distributions (each row sums to 1).
    pub topic_word: Vec<Vec<f64>>,
    /// `D x k` document-topic distributions.
    pub doc_topic: Vec<Vec<f64>>,
    /// Final topic assignment of every token.
    pub assignments: Vec<Vec<u16>>,
}

impl LdaModel {
    /// Top `n` words of topic `t` by probability.
    pub fn top_words(&self, t: usize, n: usize) -> Vec<(u32, f64)> {
        let mut idx: Vec<(u32, f64)> =
            self.topic_word[t].iter().enumerate().map(|(w, &p)| (w as u32, p)).collect();
        idx.sort_by(|a, b| b.1.total_cmp(&a.1));
        idx.truncate(n);
        idx
    }

    /// The most probable topic of document `d`.
    pub fn argmax_topic(&self, d: usize) -> usize {
        self.doc_topic[d]
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(t, _)| t)
            .unwrap_or(0)
    }
}

/// Collapsed-Gibbs LDA fitter.
#[derive(Debug, Default)]
pub struct Lda;

impl Lda {
    /// Fits LDA on token-id documents over a vocabulary of size `vocab_size`.
    ///
    /// Panics if `config.k == 0` (programming error).
    pub fn fit(docs: &[Vec<u32>], vocab_size: usize, config: &LdaConfig) -> LdaModel {
        assert!(config.k > 0, "k must be positive");
        let k = config.k;
        let v = vocab_size;
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut n_wt = vec![vec![0i64; v]; k]; // topic -> word counts
        let mut n_t = vec![0i64; k];
        let mut n_dt: Vec<Vec<i64>> = docs.iter().map(|_| vec![0i64; k]).collect();
        let mut z: Vec<Vec<u16>> =
            docs.iter().map(|d| d.iter().map(|_| rng.gen_range(0..k) as u16).collect()).collect();
        for (d, doc) in docs.iter().enumerate() {
            for (i, &w) in doc.iter().enumerate() {
                let t = z[d][i] as usize;
                n_wt[t][w as usize] += 1;
                n_t[t] += 1;
                n_dt[d][t] += 1;
            }
        }
        let vbeta = v as f64 * config.beta;
        let mut probs = vec![0.0f64; k];
        for _ in 0..config.iters {
            for (d, doc) in docs.iter().enumerate() {
                for (i, &w) in doc.iter().enumerate() {
                    let w = w as usize;
                    let old = z[d][i] as usize;
                    n_wt[old][w] -= 1;
                    n_t[old] -= 1;
                    n_dt[d][old] -= 1;
                    let mut total = 0.0;
                    for t in 0..k {
                        let p = (n_dt[d][t] as f64 + config.alpha)
                            * (n_wt[t][w] as f64 + config.beta)
                            / (n_t[t] as f64 + vbeta);
                        probs[t] = p;
                        total += p;
                    }
                    let mut u = rng.gen::<f64>() * total;
                    let mut new = k - 1;
                    for (t, &p) in probs.iter().enumerate() {
                        u -= p;
                        if u <= 0.0 {
                            new = t;
                            break;
                        }
                    }
                    z[d][i] = new as u16;
                    n_wt[new][w] += 1;
                    n_t[new] += 1;
                    n_dt[d][new] += 1;
                }
            }
        }
        let topic_word: Vec<Vec<f64>> = (0..k)
            .map(|t| {
                let denom = n_t[t] as f64 + vbeta;
                (0..v).map(|w| (n_wt[t][w] as f64 + config.beta) / denom).collect()
            })
            .collect();
        let doc_topic: Vec<Vec<f64>> = docs
            .iter()
            .enumerate()
            .map(|(d, doc)| {
                let denom = doc.len() as f64 + k as f64 * config.alpha;
                (0..k).map(|t| (n_dt[d][t] as f64 + config.alpha) / denom).collect()
            })
            .collect();
        LdaModel { k, vocab_size: v, topic_word, doc_topic, assignments: z }
    }

    /// Convenience: fit on a [`lesm_corpus::Corpus`].
    pub fn fit_corpus(corpus: &lesm_corpus::Corpus, config: &LdaConfig) -> LdaModel {
        let docs: Vec<Vec<u32>> = corpus.docs.iter().map(|d| d.tokens.clone()).collect();
        Self::fit(&docs, corpus.num_words(), config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two clearly separated themes: words 0-4 vs words 5-9.
    fn themed_docs(n: usize) -> Vec<Vec<u32>> {
        (0..n)
            .map(|i| {
                let base = if i % 2 == 0 { 0u32 } else { 5u32 };
                (0..8).map(|j| base + (j % 5) as u32).collect()
            })
            .collect()
    }

    #[test]
    fn distributions_are_normalized() {
        let docs = themed_docs(40);
        let m = Lda::fit(&docs, 10, &LdaConfig { k: 2, iters: 50, ..LdaConfig::default() });
        for t in 0..2 {
            let s: f64 = m.topic_word[t].iter().sum();
            assert!((s - 1.0).abs() < 1e-9, "phi row sums to {s}");
        }
        for d in 0..docs.len() {
            let s: f64 = m.doc_topic[d].iter().sum();
            assert!((s - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn recovers_two_themes() {
        let docs = themed_docs(60);
        let m = Lda::fit(&docs, 10, &LdaConfig { k: 2, iters: 150, seed: 5, ..LdaConfig::default() });
        // Each theme's words should dominate exactly one topic.
        let top0: Vec<u32> = m.top_words(0, 5).into_iter().map(|(w, _)| w).collect();
        let low: usize = top0.iter().filter(|&&w| w < 5).count();
        assert!(low == 5 || low == 0, "topic 0 should be pure, got {low}/5 low words");
        // Documents should separate by parity.
        let t_even = m.argmax_topic(0);
        let t_odd = m.argmax_topic(1);
        assert_ne!(t_even, t_odd);
        for d in 0..20 {
            let expect = if d % 2 == 0 { t_even } else { t_odd };
            assert_eq!(m.argmax_topic(d), expect, "doc {d}");
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let docs = themed_docs(20);
        let cfg = LdaConfig { k: 3, iters: 30, seed: 9, ..LdaConfig::default() };
        let a = Lda::fit(&docs, 10, &cfg);
        let b = Lda::fit(&docs, 10, &cfg);
        assert_eq!(a.assignments, b.assignments);
    }

    #[test]
    fn different_seeds_differ() {
        // The nondeterminism-across-seeds property §7.1 complains about.
        let docs = themed_docs(20);
        let a = Lda::fit(&docs, 10, &LdaConfig { k: 3, iters: 30, seed: 1, ..LdaConfig::default() });
        let b = Lda::fit(&docs, 10, &LdaConfig { k: 3, iters: 30, seed: 2, ..LdaConfig::default() });
        assert_ne!(a.assignments, b.assignments);
    }

    #[test]
    fn handles_empty_docs() {
        let docs = vec![vec![], vec![0, 1]];
        let m = Lda::fit(&docs, 2, &LdaConfig { k: 2, iters: 5, ..LdaConfig::default() });
        assert_eq!(m.assignments[0].len(), 0);
        let s: f64 = m.doc_topic[0].iter().sum();
        assert!((s - 1.0).abs() < 1e-9);
    }
}
