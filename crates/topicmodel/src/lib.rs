//! Topic-model substrates and baselines.
//!
//! * [`lda`] — collapsed-Gibbs latent Dirichlet allocation (the workhorse
//!   baseline of Chapters 4 and 7).
//! * [`plsa`] — probabilistic latent semantic analysis via EM.
//! * [`phrase_lda`] — phrase-constrained LDA: all tokens of a mined phrase
//!   share one topic (the ToPMine topic-modeling stage, §4.3).
//! * [`netclus`] — the NetClus ranking-clustering baseline for star-schema
//!   heterogeneous networks (§2.2.3, compared against in §3.3).
//! * [`tng`] — Topical N-Gram baseline (§4.4.2).
//! * [`turbo`] — TurboTopics-lite: post-hoc significance-guided merging of
//!   same-topic adjacent words (§4.4.2).
//! * [`pdlda`] — PD-LDA-like baseline (Pitman–Yor-free approximation; see
//!   DESIGN.md §3 for the substitution note).

// DESIGN.md §10: library code must surface typed errors, not unwraps.
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

// Index-based loops are kept where they mirror the paper's equations.
#![allow(clippy::needless_range_loop)]

pub mod lda;
pub mod netclus;
pub mod pdlda;
pub mod phrase_lda;
pub mod plsa;
pub mod tng;
pub mod turbo;

pub use lda::{Lda, LdaConfig, LdaModel};
pub use netclus::{NetClus, NetClusConfig, NetClusModel};
pub use pdlda::{PdLdaLike, PdLdaLikeConfig};
pub use phrase_lda::{PhraseLda, PhraseLdaConfig, PhraseLdaModel};
pub use plsa::{Plsa, PlsaConfig, PlsaModel};
pub use tng::{Tng, TngConfig, TngModel};
pub use turbo::{TurboTopics, TurboTopicsConfig};
