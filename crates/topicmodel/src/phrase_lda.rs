//! PhraseLDA: phrase-constrained latent Dirichlet allocation.
//!
//! ToPMine (§4.3) first segments each document into a "bag of phrases" and
//! then runs LDA where *all tokens of one phrase share a single topic*.
//! Sampling one topic per segment (instead of per token) is also why the
//! paper observes PhraseLDA often running faster than vanilla LDA
//! (Table 4.5's discussion).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for [`PhraseLda::fit`].
#[derive(Debug, Clone)]
pub struct PhraseLdaConfig {
    /// Number of topics.
    pub k: usize,
    /// Symmetric document-topic Dirichlet hyperparameter.
    pub alpha: f64,
    /// Symmetric topic-word Dirichlet hyperparameter.
    pub beta: f64,
    /// Gibbs sweeps.
    pub iters: usize,
    /// RNG seed.
    pub seed: u64,
    /// Random restarts; the fit with the highest in-sample token
    /// log-likelihood is kept. Sampling one topic per *segment* mixes more
    /// slowly than per-token LDA, so restarts matter more here.
    pub restarts: usize,
}

impl Default for PhraseLdaConfig {
    fn default() -> Self {
        Self { k: 10, alpha: 0.5, beta: 0.01, iters: 200, seed: 42, restarts: 3 }
    }
}

/// A fitted phrase-constrained LDA model.
#[derive(Debug, Clone)]
pub struct PhraseLdaModel {
    /// Number of topics.
    pub k: usize,
    /// `k x V` topic-word distributions.
    pub topic_word: Vec<Vec<f64>>,
    /// `D x k` document-topic distributions.
    pub doc_topic: Vec<Vec<f64>>,
    /// Topic of every segment of every document.
    pub segment_topics: Vec<Vec<u16>>,
    /// Mixing proportion of each topic (fraction of tokens).
    pub topic_weight: Vec<f64>,
}

impl PhraseLdaModel {
    /// Top `n` words of topic `t`.
    pub fn top_words(&self, t: usize, n: usize) -> Vec<(u32, f64)> {
        let mut idx: Vec<(u32, f64)> =
            self.topic_word[t].iter().enumerate().map(|(w, &p)| (w as u32, p)).collect();
        idx.sort_by(|a, b| b.1.total_cmp(&a.1));
        idx.truncate(n);
        idx
    }
}

/// Phrase-constrained LDA fitter.
#[derive(Debug, Default)]
pub struct PhraseLda;

impl PhraseLda {
    /// Fits on segmented documents: `docs[d]` is a list of segments, each a
    /// token-id sequence (single tokens are singleton segments). Runs
    /// `config.restarts` chains and keeps the best-likelihood fit.
    pub fn fit(docs: &[Vec<Vec<u32>>], vocab_size: usize, config: &PhraseLdaConfig) -> PhraseLdaModel {
        let mut best: Option<(f64, PhraseLdaModel)> = None;
        for r in 0..config.restarts.max(1) {
            let cfg = PhraseLdaConfig {
                seed: config.seed.wrapping_add(r as u64 * 7919),
                restarts: 1,
                ..config.clone()
            };
            let model = Self::fit_once(docs, vocab_size, &cfg);
            let ll = loglik(docs, &model);
            if best.as_ref().is_none_or(|(b, _)| ll > *b) {
                best = Some((ll, model));
            }
        }
        // lesm-lint: allow(R1) — the `0..restarts.max(1)` loop always fills `best`
        best.expect("at least one restart").1
    }

    /// A single Gibbs chain.
    fn fit_once(docs: &[Vec<Vec<u32>>], vocab_size: usize, config: &PhraseLdaConfig) -> PhraseLdaModel {
        assert!(config.k > 0, "k must be positive");
        let k = config.k;
        let v = vocab_size;
        let vbeta = v as f64 * config.beta;
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut n_wt = vec![vec![0i64; v]; k];
        let mut n_t = vec![0i64; k];
        let mut n_dt: Vec<Vec<i64>> = docs.iter().map(|_| vec![0i64; k]).collect();
        let mut z: Vec<Vec<u16>> = docs
            .iter()
            .map(|segs| segs.iter().map(|_| rng.gen_range(0..k) as u16).collect())
            .collect();
        for (d, segs) in docs.iter().enumerate() {
            for (s, seg) in segs.iter().enumerate() {
                let t = z[d][s] as usize;
                for &w in seg {
                    n_wt[t][w as usize] += 1;
                    n_t[t] += 1;
                }
                n_dt[d][t] += seg.len() as i64;
            }
        }
        let mut log_probs = vec![0.0f64; k];
        for _ in 0..config.iters {
            for (d, segs) in docs.iter().enumerate() {
                for (s, seg) in segs.iter().enumerate() {
                    if seg.is_empty() {
                        continue;
                    }
                    let old = z[d][s] as usize;
                    for &w in seg {
                        n_wt[old][w as usize] -= 1;
                        n_t[old] -= 1;
                    }
                    n_dt[d][old] -= seg.len() as i64;
                    // log p(z) ∝ log(n_dt + alpha) + sum_w log((n_wt + beta)/(n_t + Vbeta))
                    // (within-segment count increments are ignored — the
                    //  standard PhraseLDA approximation).
                    let mut max_lp = f64::NEG_INFINITY;
                    for t in 0..k {
                        let mut lp = (n_dt[d][t] as f64 + config.alpha).ln();
                        let denom = (n_t[t] as f64 + vbeta).ln();
                        for &w in seg {
                            lp += (n_wt[t][w as usize] as f64 + config.beta).ln() - denom;
                        }
                        log_probs[t] = lp;
                        if lp > max_lp {
                            max_lp = lp;
                        }
                    }
                    let mut total = 0.0;
                    for lp in log_probs.iter_mut() {
                        *lp = (*lp - max_lp).exp();
                        total += *lp;
                    }
                    let mut u = rng.gen::<f64>() * total;
                    let mut new = k - 1;
                    for (t, &p) in log_probs.iter().enumerate() {
                        u -= p;
                        if u <= 0.0 {
                            new = t;
                            break;
                        }
                    }
                    z[d][s] = new as u16;
                    for &w in seg {
                        n_wt[new][w as usize] += 1;
                        n_t[new] += 1;
                    }
                    n_dt[d][new] += seg.len() as i64;
                }
            }
        }
        let total_tokens: i64 = n_t.iter().sum();
        let topic_word: Vec<Vec<f64>> = (0..k)
            .map(|t| {
                let denom = n_t[t] as f64 + vbeta;
                (0..v).map(|w| (n_wt[t][w] as f64 + config.beta) / denom).collect()
            })
            .collect();
        let doc_topic: Vec<Vec<f64>> = docs
            .iter()
            .enumerate()
            .map(|(d, segs)| {
                let len: i64 = segs.iter().map(|s| s.len() as i64).sum();
                let denom = len as f64 + k as f64 * config.alpha;
                (0..k).map(|t| (n_dt[d][t] as f64 + config.alpha) / denom).collect()
            })
            .collect();
        let topic_weight: Vec<f64> = n_t
            .iter()
            .map(|&c| if total_tokens > 0 { c as f64 / total_tokens as f64 } else { 0.0 })
            .collect();
        PhraseLdaModel { k, topic_word, doc_topic, segment_topics: z, topic_weight }
    }
}

/// In-sample token log-likelihood `Σ_d Σ_w c log Σ_z θ_dz φ_zw` used for
/// restart selection.
fn loglik(docs: &[Vec<Vec<u32>>], model: &PhraseLdaModel) -> f64 {
    let mut ll = 0.0;
    for (d, segs) in docs.iter().enumerate() {
        for seg in segs {
            for &w in seg {
                let p: f64 = (0..model.k)
                    .map(|z| model.doc_topic[d][z] * model.topic_word[z][w as usize])
                    .sum();
                ll += p.max(1e-300).ln();
            }
        }
    }
    ll
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Segmented documents in two themes; the phrase [0,1] always appears
    /// together, as does [5,6].
    fn segged(n: usize) -> Vec<Vec<Vec<u32>>> {
        (0..n)
            .map(|i| {
                if i % 2 == 0 {
                    vec![vec![0, 1], vec![2], vec![3], vec![0, 1]]
                } else {
                    vec![vec![5, 6], vec![7], vec![8], vec![5, 6]]
                }
            })
            .collect()
    }

    #[test]
    fn phrase_tokens_share_topics_and_themes_separate() {
        let docs = segged(40);
        let m = PhraseLda::fit(&docs, 10, &PhraseLdaConfig { k: 2, iters: 100, ..Default::default() });
        // words 0 and 1 should have nearly equal probability within their topic
        let t_low = if m.topic_word[0][0] > m.topic_word[1][0] { 0 } else { 1 };
        let p0 = m.topic_word[t_low][0];
        let p1 = m.topic_word[t_low][1];
        assert!((p0 - p1).abs() / p0.max(p1) < 0.1, "phrase words diverged: {p0} vs {p1}");
        // Themes separate.
        let mass_low_t: f64 = m.topic_word[t_low][..5].iter().sum();
        assert!(mass_low_t > 0.8, "theme not concentrated: {mass_low_t}");
    }

    #[test]
    fn distributions_normalized() {
        let docs = segged(10);
        let m = PhraseLda::fit(&docs, 10, &PhraseLdaConfig { k: 3, iters: 20, ..Default::default() });
        for row in &m.topic_word {
            assert!((row.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
        for row in &m.doc_topic {
            assert!((row.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
        let s: f64 = m.topic_weight.iter().sum();
        assert!((s - 1.0).abs() < 1e-9);
    }

    #[test]
    fn deterministic() {
        let docs = segged(10);
        let cfg = PhraseLdaConfig { k: 2, iters: 15, seed: 4, ..Default::default() };
        let a = PhraseLda::fit(&docs, 10, &cfg);
        let b = PhraseLda::fit(&docs, 10, &cfg);
        assert_eq!(a.segment_topics, b.segment_topics);
    }

    #[test]
    fn empty_segments_tolerated() {
        let docs = vec![vec![vec![], vec![0]], vec![vec![1]]];
        let m = PhraseLda::fit(&docs, 2, &PhraseLdaConfig { k: 2, iters: 5, ..Default::default() });
        assert_eq!(m.segment_topics[0].len(), 2);
    }
}
