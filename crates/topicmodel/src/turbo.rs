//! TurboTopics-lite — post-hoc merging of same-topic adjacent words.
//!
//! Blei & Lafferty's Turbo Topics \[12\] recursively merges adjacent
//! same-topic terms whose co-occurrence is statistically significant under
//! a back-off n-gram permutation test. The permutation test dominates its
//! runtime (Table 4.5 reports it as intractable beyond small corpora). This
//! "lite" implementation keeps the recursive merge structure but replaces
//! the permutation test with the closed-form significance z-score of
//! eq. 4.7, preserving the method's qualitative behaviour at a fraction of
//! its cost (cost is still several LDA sweeps plus repeated corpus scans).

use crate::lda::{Lda, LdaConfig, LdaModel};
use std::collections::HashMap;

/// Configuration for [`TurboTopics::run`].
#[derive(Debug, Clone)]
pub struct TurboTopicsConfig {
    /// LDA configuration for the initial topic assignment.
    pub lda: LdaConfig,
    /// Significance threshold (standard deviations) for merging.
    pub sig_threshold: f64,
    /// Minimum count for a merged pair to be considered.
    pub min_count: usize,
    /// Maximum merge rounds (phrases grow by one word per round).
    pub max_rounds: usize,
}

impl Default for TurboTopicsConfig {
    fn default() -> Self {
        Self { lda: LdaConfig::default(), sig_threshold: 3.0, min_count: 3, max_rounds: 3 }
    }
}

/// TurboTopics-lite runner.
#[derive(Debug, Default)]
pub struct TurboTopics;

/// Result: per topic, ranked `(phrase tokens, count)` lists (length >= 2),
/// plus the underlying LDA model.
#[derive(Debug, Clone)]
pub struct TurboResult {
    /// Per-topic merged phrases ranked by count.
    pub topic_phrases: Vec<Vec<(Vec<u32>, usize)>>,
    /// The LDA model the merge pass started from.
    pub lda: LdaModel,
}

impl TurboTopics {
    /// Runs LDA then the recursive significance-guided merge.
    pub fn run(docs: &[Vec<u32>], vocab_size: usize, config: &TurboTopicsConfig) -> TurboResult {
        let lda = Lda::fit(docs, vocab_size, &config.lda);
        let k = lda.k;
        // Working representation: per doc, a list of (phrase tokens, topic).
        let mut streams: Vec<Vec<(Vec<u32>, u16)>> = docs
            .iter()
            .enumerate()
            .map(|(d, doc)| {
                doc.iter()
                    .enumerate()
                    .map(|(i, &w)| (vec![w], lda.assignments[d][i]))
                    .collect()
            })
            .collect();
        let total_units: usize = streams.iter().map(Vec::len).sum();
        for _ in 0..config.max_rounds {
            // Count units and same-topic adjacent pairs.
            let mut unit_count: HashMap<&[u32], usize> = HashMap::new();
            for s in &streams {
                for (p, _) in s {
                    *unit_count.entry(p.as_slice()).or_insert(0) += 1;
                }
            }
            let mut pair_count: HashMap<(&[u32], &[u32]), usize> = HashMap::new();
            for s in &streams {
                for w in s.windows(2) {
                    if w[0].1 == w[1].1 {
                        *pair_count.entry((w[0].0.as_slice(), w[1].0.as_slice())).or_insert(0) += 1;
                    }
                }
            }
            // Significant pairs (eq. 4.7 style z-score).
            let l = total_units as f64;
            let mut merges: Vec<(Vec<u32>, Vec<u32>)> = Vec::new();
            // lesm-lint: allow(D2) — per-pair scores are independent and merges only feed a membership set
            for (&(a, b), &c) in &pair_count {
                if c < config.min_count {
                    continue;
                }
                let fa = unit_count[a] as f64;
                let fb = unit_count[b] as f64;
                let expected = fa * fb / l;
                let sig = (c as f64 - expected) / (c as f64).sqrt();
                if sig >= config.sig_threshold {
                    merges.push((a.to_vec(), b.to_vec()));
                }
            }
            if merges.is_empty() {
                break;
            }
            let merge_set: std::collections::HashSet<(Vec<u32>, Vec<u32>)> =
                merges.into_iter().collect();
            // Rewrite streams left-to-right, merging greedily.
            for s in &mut streams {
                let old = std::mem::take(s);
                let mut out: Vec<(Vec<u32>, u16)> = Vec::with_capacity(old.len());
                let mut iter = old.into_iter().peekable();
                while let Some((p, t)) = iter.next() {
                    let mut cur = (p, t);
                    while let Some((np, nt)) = iter.peek() {
                        if *nt == cur.1 && merge_set.contains(&(cur.0.clone(), np.clone())) {
                            if let Some((np, _)) = iter.next() {
                                cur.0.extend(np);
                            }
                        } else {
                            break;
                        }
                    }
                    out.push(cur);
                }
                *s = out;
            }
        }
        // Collect multi-word phrases per topic.
        let mut counts: Vec<HashMap<Vec<u32>, usize>> = (0..k).map(|_| HashMap::new()).collect();
        for s in &streams {
            for (p, t) in s {
                if p.len() >= 2 {
                    *counts[*t as usize].entry(p.clone()).or_insert(0) += 1;
                }
            }
        }
        let topic_phrases = counts
            .into_iter()
            .map(|m| {
                let mut v: Vec<(Vec<u32>, usize)> = m.into_iter().collect();
                v.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
                v
            })
            .collect();
        TurboResult { topic_phrases, lda }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn docs() -> Vec<Vec<u32>> {
        (0..40)
            .map(|i| {
                if i % 2 == 0 {
                    vec![0, 1, 2, 0, 1, 3, 0, 1]
                } else {
                    vec![5, 6, 7, 5, 6, 8, 5, 6]
                }
            })
            .collect()
    }

    #[test]
    fn merges_significant_collocations() {
        let d = docs();
        let cfg = TurboTopicsConfig {
            lda: LdaConfig { k: 2, iters: 80, ..Default::default() },
            sig_threshold: 2.0,
            min_count: 3,
            max_rounds: 2,
        };
        let r = TurboTopics::run(&d, 10, &cfg);
        let all: Vec<&Vec<u32>> =
            r.topic_phrases.iter().flatten().map(|(p, _)| p).collect();
        assert!(
            all.iter().any(|p| p.starts_with(&[0, 1])),
            "expected (0,1) merged, got {all:?}"
        );
        assert!(all.iter().any(|p| p.starts_with(&[5, 6])));
    }

    #[test]
    fn no_merges_on_random_text() {
        // Uniform random-ish text: no pair should be significant.
        let d: Vec<Vec<u32>> = (0..30)
            .map(|i| (0..8).map(|j| ((i * 13 + j * 7) % 20) as u32).collect())
            .collect();
        let cfg = TurboTopicsConfig {
            lda: LdaConfig { k: 2, iters: 20, ..Default::default() },
            sig_threshold: 6.0,
            min_count: 3,
            max_rounds: 2,
        };
        let r = TurboTopics::run(&d, 20, &cfg);
        let n_phrases: usize = r.topic_phrases.iter().map(Vec::len).sum();
        assert_eq!(n_phrases, 0, "spurious merges on noise");
    }
}
