//! Probabilistic latent semantic analysis (PLSA) fitted with EM.
//!
//! Included as the classic maximum-likelihood topic model (§2.1); its EM has
//! the guaranteed-non-decreasing likelihood property that our property
//! tests check, and it serves as a deterministic-given-seed comparator.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for [`Plsa::fit`].
#[derive(Debug, Clone)]
pub struct PlsaConfig {
    /// Number of topics.
    pub k: usize,
    /// EM iterations.
    pub iters: usize,
    /// RNG seed for initialization.
    pub seed: u64,
}

impl Default for PlsaConfig {
    fn default() -> Self {
        Self { k: 10, iters: 100, seed: 42 }
    }
}

/// A fitted PLSA model.
#[derive(Debug, Clone)]
pub struct PlsaModel {
    /// `k x V` topic-word distributions.
    pub topic_word: Vec<Vec<f64>>,
    /// `D x k` document-topic distributions.
    pub doc_topic: Vec<Vec<f64>>,
    /// Log-likelihood after each EM iteration (non-decreasing).
    pub loglik_trace: Vec<f64>,
}

/// PLSA fitter.
#[derive(Debug, Default)]
pub struct Plsa;

impl Plsa {
    /// Fits PLSA on token-id documents.
    pub fn fit(docs: &[Vec<u32>], vocab_size: usize, config: &PlsaConfig) -> PlsaModel {
        assert!(config.k > 0, "k must be positive");
        let k = config.k;
        let v = vocab_size;
        let d_count = docs.len();
        let mut rng = StdRng::seed_from_u64(config.seed);
        // Unique (doc, word) -> count lists per doc.
        let counts: Vec<Vec<(u32, f64)>> = docs
            .iter()
            .map(|doc| {
                let mut m: std::collections::HashMap<u32, f64> = std::collections::HashMap::new();
                for &w in doc {
                    *m.entry(w).or_insert(0.0) += 1.0;
                }
                let mut pairs: Vec<(u32, f64)> = m.into_iter().collect();
                pairs.sort_unstable_by_key(|&(w, _)| w);
                pairs
            })
            .collect();
        let mut phi: Vec<Vec<f64>> = (0..k)
            .map(|_| {
                let mut row: Vec<f64> = (0..v).map(|_| rng.gen::<f64>() + 0.1).collect();
                normalize(&mut row);
                row
            })
            .collect();
        let mut theta: Vec<Vec<f64>> = (0..d_count)
            .map(|_| {
                let mut row: Vec<f64> = (0..k).map(|_| rng.gen::<f64>() + 0.1).collect();
                normalize(&mut row);
                row
            })
            .collect();
        let mut loglik_trace = Vec::with_capacity(config.iters);
        let mut q = vec![0.0f64; k];
        for _ in 0..config.iters {
            let mut phi_new = vec![vec![1e-12f64; v]; k];
            let mut theta_new = vec![vec![1e-12f64; k]; d_count];
            let mut ll = 0.0;
            for (d, pairs) in counts.iter().enumerate() {
                for &(w, c) in pairs {
                    let w = w as usize;
                    let mut total = 0.0;
                    for t in 0..k {
                        q[t] = theta[d][t] * phi[t][w];
                        total += q[t];
                    }
                    if total <= 0.0 {
                        continue;
                    }
                    ll += c * total.ln();
                    for t in 0..k {
                        let r = c * q[t] / total;
                        phi_new[t][w] += r;
                        theta_new[d][t] += r;
                    }
                }
            }
            for row in &mut phi_new {
                normalize(row);
            }
            for row in &mut theta_new {
                normalize(row);
            }
            phi = phi_new;
            theta = theta_new;
            loglik_trace.push(ll);
        }
        PlsaModel { topic_word: phi, doc_topic: theta, loglik_trace }
    }
}

fn normalize(row: &mut [f64]) {
    let s: f64 = row.iter().sum();
    if s > 0.0 {
        for x in row.iter_mut() {
            *x /= s;
        }
    } else if !row.is_empty() {
        let u = 1.0 / row.len() as f64;
        row.iter_mut().for_each(|x| *x = u);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn themed_docs(n: usize) -> Vec<Vec<u32>> {
        (0..n)
            .map(|i| {
                let base = if i % 2 == 0 { 0u32 } else { 5u32 };
                (0..8).map(|j| base + (j % 5) as u32).collect()
            })
            .collect()
    }

    #[test]
    fn loglik_is_nondecreasing() {
        let docs = themed_docs(30);
        let m = Plsa::fit(&docs, 10, &PlsaConfig { k: 2, iters: 40, seed: 3 });
        for w in m.loglik_trace.windows(2) {
            assert!(w[1] >= w[0] - 1e-9, "EM likelihood decreased: {} -> {}", w[0], w[1]);
        }
    }

    #[test]
    fn distributions_normalized() {
        let docs = themed_docs(20);
        let m = Plsa::fit(&docs, 10, &PlsaConfig { k: 3, iters: 20, seed: 1 });
        for row in &m.topic_word {
            let s: f64 = row.iter().sum();
            assert!((s - 1.0).abs() < 1e-9);
        }
        for row in &m.doc_topic {
            let s: f64 = row.iter().sum();
            assert!((s - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn separates_themes() {
        let docs = themed_docs(60);
        let m = Plsa::fit(&docs, 10, &PlsaConfig { k: 2, iters: 80, seed: 7 });
        // Theme words should concentrate: p(w<5 | t) differs strongly by t.
        let mass_low: Vec<f64> =
            (0..2).map(|t| m.topic_word[t][..5].iter().sum::<f64>()).collect();
        assert!(
            (mass_low[0] - mass_low[1]).abs() > 0.5,
            "topics did not separate: {mass_low:?}"
        );
    }
}
