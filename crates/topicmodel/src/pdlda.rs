//! PD-LDA-like — a Pitman–Yor-free approximation of PD-LDA \[54\].
//!
//! The real PD-LDA couples a hierarchical Pitman–Yor process over n-grams
//! with LDA so that all words of an inferred n-gram share one topic. A
//! faithful HPY sampler is out of scope (see DESIGN.md §3); this
//! approximation keeps the two properties the dissertation's comparisons
//! exercise:
//!
//! 1. phrases and topics are inferred *jointly* — each Gibbs sweep
//!    re-samples both segmentation boundaries and segment topics, and
//! 2. the per-iteration cost is markedly higher than LDA or PhraseLDA
//!    (boundary resampling touches every adjacent pair), which is the
//!    runtime profile Table 4.5 reports.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// Configuration for [`PdLdaLike::fit`].
#[derive(Debug, Clone)]
pub struct PdLdaLikeConfig {
    /// Number of topics.
    pub k: usize,
    /// Document-topic Dirichlet hyperparameter.
    pub alpha: f64,
    /// Topic-word Dirichlet hyperparameter.
    pub beta: f64,
    /// Prior log-odds of a segmentation boundary *not* forming (stickiness
    /// prior; higher means longer phrases).
    pub stick_prior: f64,
    /// Gibbs sweeps.
    pub iters: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for PdLdaLikeConfig {
    fn default() -> Self {
        Self { k: 10, alpha: 0.5, beta: 0.01, stick_prior: 0.3, iters: 150, seed: 42 }
    }
}

/// A fitted PD-LDA-like model.
#[derive(Debug, Clone)]
pub struct PdLdaLikeModel {
    /// Number of topics.
    pub k: usize,
    /// `k x V` topic-word distributions.
    pub topic_word: Vec<Vec<f64>>,
    /// Final segmentation: per doc, segments of token ids.
    pub segments: Vec<Vec<Vec<u32>>>,
    /// Topic per segment.
    pub segment_topics: Vec<Vec<u16>>,
}

impl PdLdaLikeModel {
    /// Top-`n` multi-word phrases per topic by frequency.
    pub fn top_phrases(&self, n: usize) -> Vec<Vec<(Vec<u32>, usize)>> {
        let mut counts: Vec<HashMap<Vec<u32>, usize>> = (0..self.k).map(|_| HashMap::new()).collect();
        for (segs, tops) in self.segments.iter().zip(&self.segment_topics) {
            for (seg, &t) in segs.iter().zip(tops) {
                if seg.len() >= 2 {
                    *counts[t as usize].entry(seg.clone()).or_insert(0) += 1;
                }
            }
        }
        counts
            .into_iter()
            .map(|m| {
                let mut v: Vec<(Vec<u32>, usize)> = m.into_iter().collect();
                v.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
                v.truncate(n);
                v
            })
            .collect()
    }
}

/// PD-LDA-like fitter.
#[derive(Debug, Default)]
pub struct PdLdaLike;

impl PdLdaLike {
    /// Fits the joint segmentation/topic model.
    pub fn fit(docs: &[Vec<u32>], vocab_size: usize, config: &PdLdaLikeConfig) -> PdLdaLikeModel {
        assert!(config.k > 0, "k must be positive");
        let k = config.k;
        let v = vocab_size;
        let vbeta = v as f64 * config.beta;
        let mut rng = StdRng::seed_from_u64(config.seed);

        // State: per token: topic; per boundary (between i-1 and i): glued?
        let mut z: Vec<Vec<u16>> =
            docs.iter().map(|d| d.iter().map(|_| rng.gen_range(0..k) as u16).collect()).collect();
        let mut glued: Vec<Vec<bool>> = docs.iter().map(|d| vec![false; d.len()]).collect();
        let mut n_wt = vec![vec![0i64; v]; k];
        let mut n_t = vec![0i64; k];
        let mut n_dt: Vec<Vec<i64>> = docs.iter().map(|_| vec![0i64; k]).collect();
        // Bigram co-count for boundary stickiness.
        let mut pair_count: HashMap<(u32, u32), i64> = HashMap::new();
        let mut word_count = vec![0i64; v];
        let mut total_tokens = 0i64;
        for (d, doc) in docs.iter().enumerate() {
            for (i, &w) in doc.iter().enumerate() {
                let t = z[d][i] as usize;
                n_wt[t][w as usize] += 1;
                n_t[t] += 1;
                n_dt[d][t] += 1;
                word_count[w as usize] += 1;
                total_tokens += 1;
                if i > 0 {
                    *pair_count.entry((doc[i - 1], w)).or_insert(0) += 1;
                }
            }
        }
        let mut probs = vec![0.0f64; k];
        for _ in 0..config.iters {
            for (d, doc) in docs.iter().enumerate() {
                // (1) resample boundaries from bigram pointwise association
                //     and topic agreement.
                for i in 1..doc.len() {
                    let a = doc[i - 1];
                    let b = doc[i];
                    let pc = pair_count.get(&(a, b)).copied().unwrap_or(0) as f64;
                    let expect = (word_count[a as usize] as f64)
                        * (word_count[b as usize] as f64)
                        / total_tokens.max(1) as f64;
                    let assoc = ((pc + 0.5) / (expect + 0.5)).ln();
                    let same_topic = z[d][i] == z[d][i - 1];
                    let logit = config.stick_prior * assoc + if same_topic { 0.5 } else { -1.5 };
                    let p_glue = 1.0 / (1.0 + (-logit).exp());
                    glued[d][i] = rng.gen_bool(p_glue.clamp(1e-6, 1.0 - 1e-6));
                }
                glued[d][0] = false;
                // (2) resample one topic per segment (PhraseLDA style).
                let mut i = 0;
                while i < doc.len() {
                    let mut j = i + 1;
                    while j < doc.len() && glued[d][j] {
                        j += 1;
                    }
                    // remove segment tokens
                    for p in i..j {
                        let t = z[d][p] as usize;
                        n_wt[t][doc[p] as usize] -= 1;
                        n_t[t] -= 1;
                        n_dt[d][t] -= 1;
                    }
                    let mut max_lp = f64::NEG_INFINITY;
                    for t in 0..k {
                        let mut lp = (n_dt[d][t] as f64 + config.alpha).ln();
                        let denom = (n_t[t] as f64 + vbeta).ln();
                        for p in i..j {
                            lp += (n_wt[t][doc[p] as usize] as f64 + config.beta).ln() - denom;
                        }
                        probs[t] = lp;
                        if lp > max_lp {
                            max_lp = lp;
                        }
                    }
                    let mut total = 0.0;
                    for p in probs.iter_mut() {
                        *p = (*p - max_lp).exp();
                        total += *p;
                    }
                    let mut u = rng.gen::<f64>() * total;
                    let mut new = k - 1;
                    for (t, &p) in probs.iter().enumerate() {
                        u -= p;
                        if u <= 0.0 {
                            new = t;
                            break;
                        }
                    }
                    for p in i..j {
                        z[d][p] = new as u16;
                        n_wt[new][doc[p] as usize] += 1;
                        n_t[new] += 1;
                        n_dt[d][new] += 1;
                    }
                    i = j;
                }
            }
        }
        // Materialize segments.
        let mut segments = Vec::with_capacity(docs.len());
        let mut segment_topics = Vec::with_capacity(docs.len());
        for (d, doc) in docs.iter().enumerate() {
            let mut segs = Vec::new();
            let mut tops = Vec::new();
            let mut i = 0;
            while i < doc.len() {
                let mut j = i + 1;
                while j < doc.len() && glued[d][j] {
                    j += 1;
                }
                segs.push(doc[i..j].to_vec());
                tops.push(z[d][i]);
                i = j;
            }
            segments.push(segs);
            segment_topics.push(tops);
        }
        let topic_word: Vec<Vec<f64>> = (0..k)
            .map(|t| {
                let denom = n_t[t] as f64 + vbeta;
                (0..v).map(|w| (n_wt[t][w] as f64 + config.beta) / denom).collect()
            })
            .collect();
        PdLdaLikeModel { k, topic_word, segments, segment_topics }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn docs() -> Vec<Vec<u32>> {
        (0..40)
            .map(|i| {
                if i % 2 == 0 {
                    vec![0, 1, 2, 0, 1, 3, 0, 1]
                } else {
                    vec![5, 6, 7, 5, 6, 8, 5, 6]
                }
            })
            .collect()
    }

    #[test]
    fn segments_reconstruct_documents() {
        let d = docs();
        let m = PdLdaLike::fit(&d, 10, &PdLdaLikeConfig { k: 2, iters: 30, ..Default::default() });
        for (doc, segs) in d.iter().zip(&m.segments) {
            let flat: Vec<u32> = segs.iter().flatten().copied().collect();
            assert_eq!(&flat, doc, "segmentation must partition the document");
        }
    }

    #[test]
    fn strong_collocations_become_phrases() {
        let d = docs();
        let m = PdLdaLike::fit(&d, 10, &PdLdaLikeConfig { k: 2, iters: 60, ..Default::default() });
        let phrases = m.top_phrases(5);
        let all: Vec<&Vec<u32>> = phrases.iter().flatten().map(|(p, _)| p).collect();
        assert!(
            all.iter().any(|p| p.windows(2).any(|w| w == [0, 1])),
            "(0,1) should appear inside some phrase: {all:?}"
        );
    }

    #[test]
    fn deterministic() {
        let d = docs();
        let cfg = PdLdaLikeConfig { k: 2, iters: 10, seed: 5, ..Default::default() };
        let a = PdLdaLike::fit(&d, 10, &cfg);
        let b = PdLdaLike::fit(&d, 10, &cfg);
        assert_eq!(a.segments, b.segments);
    }
}
