//! TNG — Topical N-Gram baseline (Wang & McCallum \[93\], §4.4.2).
//!
//! A collapsed-Gibbs implementation of the topic-sharing TNG variant: every
//! token carries a topic `z_i` and a bigram-status bit `x_i`; `x_i = 1`
//! glues token `i` to token `i-1` (the pair is generated from a
//! word-specific bigram distribution and shares the previous token's
//! topic). Consecutive glued tokens form n-gram phrases.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// Configuration for [`Tng::fit`].
#[derive(Debug, Clone)]
pub struct TngConfig {
    /// Number of topics.
    pub k: usize,
    /// Document-topic Dirichlet hyperparameter.
    pub alpha: f64,
    /// Topic-word Dirichlet hyperparameter.
    pub beta: f64,
    /// Bigram-word Dirichlet hyperparameter.
    pub delta: f64,
    /// Beta prior on the bigram-status bit: `(gamma0, gamma1)`.
    pub gamma: (f64, f64),
    /// Gibbs sweeps.
    pub iters: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TngConfig {
    fn default() -> Self {
        Self { k: 10, alpha: 0.5, beta: 0.01, delta: 0.01, gamma: (1.0, 1.0), iters: 150, seed: 42 }
    }
}

/// A fitted TNG model.
#[derive(Debug, Clone)]
pub struct TngModel {
    /// Number of topics.
    pub k: usize,
    /// `k x V` unigram topic-word distributions.
    pub topic_word: Vec<Vec<f64>>,
    /// Topic of every token.
    pub z: Vec<Vec<u16>>,
    /// Bigram-status of every token (`x[i] = true` glues token i to i-1).
    pub x: Vec<Vec<bool>>,
}

impl TngModel {
    /// Extracts the top-`n` phrases (n-grams with glued tokens, length >= 2)
    /// per topic, ranked by frequency. Returns `phrases[t]` as
    /// `(token sequence, count)` lists.
    pub fn top_phrases(&self, docs: &[Vec<u32>], n: usize) -> Vec<Vec<(Vec<u32>, usize)>> {
        let mut counts: Vec<HashMap<Vec<u32>, usize>> = (0..self.k).map(|_| HashMap::new()).collect();
        for (d, doc) in docs.iter().enumerate() {
            let mut i = 0;
            while i < doc.len() {
                let mut j = i + 1;
                while j < doc.len() && self.x[d][j] {
                    j += 1;
                }
                if j - i >= 2 {
                    let t = self.z[d][i] as usize;
                    *counts[t].entry(doc[i..j].to_vec()).or_insert(0) += 1;
                }
                i = j;
            }
        }
        counts
            .into_iter()
            .map(|m| {
                let mut v: Vec<(Vec<u32>, usize)> = m.into_iter().collect();
                v.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
                v.truncate(n);
                v
            })
            .collect()
    }
}

/// TNG fitter.
#[derive(Debug, Default)]
pub struct Tng;

impl Tng {
    /// Fits TNG on token-id documents.
    pub fn fit(docs: &[Vec<u32>], vocab_size: usize, config: &TngConfig) -> TngModel {
        assert!(config.k > 0, "k must be positive");
        let k = config.k;
        let v = vocab_size;
        let vbeta = v as f64 * config.beta;
        let vdelta = v as f64 * config.delta;
        let mut rng = StdRng::seed_from_u64(config.seed);

        let mut n_wt = vec![vec![0i64; v]; k];
        let mut n_t = vec![0i64; k];
        let mut n_dt: Vec<Vec<i64>> = docs.iter().map(|_| vec![0i64; k]).collect();
        // Bigram-status counts per previous word.
        let mut c_x = vec![[0i64; 2]; v];
        // Bigram word counts: (topic, prev) -> cur -> count, plus denominators.
        let mut big: HashMap<(u16, u32), HashMap<u32, i64>> = HashMap::new();
        let mut big_tot: HashMap<(u16, u32), i64> = HashMap::new();

        let mut z: Vec<Vec<u16>> =
            docs.iter().map(|d| d.iter().map(|_| rng.gen_range(0..k) as u16).collect()).collect();
        let mut x: Vec<Vec<bool>> = docs.iter().map(|d| vec![false; d.len()]).collect();

        // Initialize counts (all x = 0: pure unigram start).
        for (d, doc) in docs.iter().enumerate() {
            for (i, &w) in doc.iter().enumerate() {
                let t = z[d][i] as usize;
                n_wt[t][w as usize] += 1;
                n_t[t] += 1;
                n_dt[d][t] += 1;
                if i > 0 {
                    c_x[doc[i - 1] as usize][0] += 1;
                }
            }
        }

        let mut probs = vec![0.0f64; 2 * k];
        for _ in 0..config.iters {
            for (d, doc) in docs.iter().enumerate() {
                for i in 0..doc.len() {
                    let w = doc[i];
                    // A token glued to by its successor keeps the successor
                    // consistent by only resampling z jointly; to keep the
                    // sampler simple we resample freely and let the
                    // successor adapt next sweep.
                    let old_z = z[d][i];
                    let old_x = x[d][i];
                    // --- remove ---
                    if old_x && i > 0 {
                        let prev = doc[i - 1];
                        let key = (old_z, prev);
                        if let Some(m) = big.get_mut(&key) {
                            if let Some(c) = m.get_mut(&w) {
                                *c -= 1;
                            }
                        }
                        if let Some(c) = big_tot.get_mut(&key) {
                            *c -= 1;
                        }
                        c_x[prev as usize][1] -= 1;
                    } else {
                        n_wt[old_z as usize][w as usize] -= 1;
                        n_t[old_z as usize] -= 1;
                        if i > 0 {
                            c_x[doc[i - 1] as usize][0] -= 1;
                        }
                    }
                    n_dt[d][old_z as usize] -= 1;

                    // --- sample (z, x) jointly ---
                    let can_glue = i > 0;
                    let prev_w = if can_glue { doc[i - 1] } else { 0 };
                    let prev_z = if can_glue { z[d][i - 1] } else { 0 };
                    let mut total = 0.0;
                    for t in 0..k {
                        // x = 0 branch.
                        let px0 = if can_glue {
                            (c_x[prev_w as usize][0] as f64 + config.gamma.0)
                                / ((c_x[prev_w as usize][0] + c_x[prev_w as usize][1]) as f64
                                    + config.gamma.0
                                    + config.gamma.1)
                        } else {
                            1.0
                        };
                        let p = px0
                            * (n_dt[d][t] as f64 + config.alpha)
                            * (n_wt[t][w as usize] as f64 + config.beta)
                            / (n_t[t] as f64 + vbeta);
                        probs[t] = p;
                        total += p;
                        // x = 1 branch: topic forced to prev_z; only that
                        // slot gets mass.
                        let p1 = if can_glue && t == prev_z as usize {
                            let px1 = (c_x[prev_w as usize][1] as f64 + config.gamma.1)
                                / ((c_x[prev_w as usize][0] + c_x[prev_w as usize][1]) as f64
                                    + config.gamma.0
                                    + config.gamma.1);
                            let key = (prev_z, prev_w);
                            let num = big
                                .get(&key)
                                .and_then(|m| m.get(&w))
                                .copied()
                                .unwrap_or(0) as f64
                                + config.delta;
                            let den = big_tot.get(&key).copied().unwrap_or(0) as f64 + vdelta;
                            px1 * (n_dt[d][t] as f64 + config.alpha) * num / den
                        } else {
                            0.0
                        };
                        probs[k + t] = p1;
                        total += p1;
                    }
                    let mut u = rng.gen::<f64>() * total;
                    let mut choice = 2 * k - 1;
                    for (c, &p) in probs.iter().enumerate() {
                        u -= p;
                        if u <= 0.0 {
                            choice = c;
                            break;
                        }
                    }
                    let (new_z, new_x) =
                        if choice < k { (choice as u16, false) } else { ((choice - k) as u16, true) };

                    // --- add ---
                    if new_x {
                        let key = (new_z, prev_w);
                        *big.entry(key).or_default().entry(w).or_insert(0) += 1;
                        *big_tot.entry(key).or_insert(0) += 1;
                        c_x[prev_w as usize][1] += 1;
                    } else {
                        n_wt[new_z as usize][w as usize] += 1;
                        n_t[new_z as usize] += 1;
                        if i > 0 {
                            c_x[prev_w as usize][0] += 1;
                        }
                    }
                    n_dt[d][new_z as usize] += 1;
                    z[d][i] = new_z;
                    x[d][i] = new_x;
                }
            }
        }
        let topic_word: Vec<Vec<f64>> = (0..k)
            .map(|t| {
                let denom = n_t[t] as f64 + vbeta;
                (0..v).map(|w| (n_wt[t][w] as f64 + config.beta) / denom).collect()
            })
            .collect();
        TngModel { k, topic_word, z, x }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Documents where (0,1) is a strong collocation in theme A and (5,6) in
    /// theme B.
    fn docs() -> Vec<Vec<u32>> {
        (0..40)
            .map(|i| {
                if i % 2 == 0 {
                    vec![0, 1, 2, 0, 1, 3, 0, 1]
                } else {
                    vec![5, 6, 7, 5, 6, 8, 5, 6]
                }
            })
            .collect()
    }

    #[test]
    fn finds_collocations_as_phrases() {
        let d = docs();
        let m = Tng::fit(&d, 10, &TngConfig { k: 2, iters: 120, ..Default::default() });
        let phrases = m.top_phrases(&d, 3);
        let mut found_01 = false;
        let mut found_56 = false;
        for t in 0..2 {
            for (p, _) in &phrases[t] {
                if p == &vec![0, 1] || (p.len() > 2 && p[..2] == [0, 1]) {
                    found_01 = true;
                }
                if p == &vec![5, 6] || (p.len() > 2 && p[..2] == [5, 6]) {
                    found_56 = true;
                }
            }
        }
        assert!(found_01, "collocation (0,1) not recovered: {phrases:?}");
        assert!(found_56, "collocation (5,6) not recovered");
    }

    #[test]
    fn first_token_never_glued() {
        let d = docs();
        let m = Tng::fit(&d, 10, &TngConfig { k: 2, iters: 30, ..Default::default() });
        for row in &m.x {
            assert!(!row[0], "x[0] must be false");
        }
    }

    #[test]
    fn glued_tokens_share_topic_of_head() {
        let d = docs();
        let m = Tng::fit(&d, 10, &TngConfig { k: 2, iters: 60, ..Default::default() });
        // A glued token was sampled with topic = prev topic at sampling
        // time; after the final sweep the tail of each run should agree
        // with its head for the overwhelming majority of runs.
        let mut agree = 0usize;
        let mut total = 0usize;
        for (doc_i, doc) in d.iter().enumerate() {
            for i in 1..doc.len() {
                if m.x[doc_i][i] {
                    total += 1;
                    if m.z[doc_i][i] == m.z[doc_i][i - 1] {
                        agree += 1;
                    }
                }
            }
        }
        if total > 0 {
            assert!(agree as f64 / total as f64 > 0.8, "{agree}/{total}");
        }
    }

    #[test]
    fn deterministic() {
        let d = docs();
        let cfg = TngConfig { k: 2, iters: 20, seed: 3, ..Default::default() };
        let a = Tng::fit(&d, 10, &cfg);
        let b = Tng::fit(&d, 10, &cfg);
        assert_eq!(a.z, b.z);
        assert_eq!(a.x, b.x);
    }
}
