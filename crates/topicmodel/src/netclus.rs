//! NetClus — ranking-based clustering of star-schema heterogeneous networks.
//!
//! The state-of-the-art comparator of §3.3 (Sun et al., "NetClus", as used
//! through the implementation of \[25\]). Documents sit at the star center,
//! linked to words and typed entities. The algorithm alternates between
//! estimating per-cluster *ranking distributions* for every attribute type
//! (smoothed toward the global distribution by `lambda_s`) and
//! re-estimating each document's cluster posterior — a multi-typed mixture
//! of unigrams. NetClus is flat; for hierarchy experiments the harness
//! re-runs it on hard-partitioned document subsets (as NetClus-based
//! hierarchies are built in §3.3.2).

use lesm_corpus::Corpus;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for [`NetClus::fit`].
#[derive(Debug, Clone)]
pub struct NetClusConfig {
    /// Number of clusters.
    pub k: usize,
    /// Smoothing toward the global distribution (`lambda_S` in §3.3; the
    /// paper grid-searches 0.3–0.7).
    pub lambda_s: f64,
    /// EM-style iterations.
    pub iters: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for NetClusConfig {
    fn default() -> Self {
        Self { k: 6, lambda_s: 0.3, iters: 60, seed: 42 }
    }
}

/// A fitted NetClus model.
///
/// Type indices follow the collapsed-network convention: entity types
/// first, the term type last (index `corpus.entities.num_types()`).
#[derive(Debug, Clone)]
pub struct NetClusModel {
    /// Number of clusters.
    pub k: usize,
    /// `rank[z][type][item]`: smoothed ranking distribution of each type in
    /// cluster `z`.
    pub rank: Vec<Vec<Vec<f64>>>,
    /// `D x k` cluster posteriors.
    pub doc_cluster: Vec<Vec<f64>>,
    /// Cluster priors.
    pub prior: Vec<f64>,
}

impl NetClusModel {
    /// Top `n` items of type `x` in cluster `z`.
    pub fn top_items(&self, z: usize, x: usize, n: usize) -> Vec<(u32, f64)> {
        let mut idx: Vec<(u32, f64)> =
            self.rank[z][x].iter().enumerate().map(|(i, &p)| (i as u32, p)).collect();
        idx.sort_by(|a, b| b.1.total_cmp(&a.1));
        idx.truncate(n);
        idx
    }

    /// Hard cluster of document `d`.
    pub fn argmax_cluster(&self, d: usize) -> usize {
        self.doc_cluster[d]
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(z, _)| z)
            .unwrap_or(0)
    }
}

/// NetClus fitter.
#[derive(Debug, Default)]
pub struct NetClus;

impl NetClus {
    /// Fits NetClus on all documents of `corpus`.
    pub fn fit(corpus: &Corpus, config: &NetClusConfig) -> NetClusModel {
        let all: Vec<usize> = (0..corpus.num_docs()).collect();
        Self::fit_subset(corpus, &all, config)
    }

    /// Fits NetClus on a subset of documents (used for recursive hierarchy
    /// construction in the experiment harness).
    pub fn fit_subset(corpus: &Corpus, doc_ids: &[usize], config: &NetClusConfig) -> NetClusModel {
        assert!(config.k > 0, "k must be positive");
        let k = config.k;
        let n_etypes = corpus.entities.num_types();
        let term_type = n_etypes;
        let n_types = n_etypes + 1;
        let type_sizes: Vec<usize> = (0..n_etypes)
            .map(|t| corpus.entities.count(t))
            .chain(std::iter::once(corpus.num_words()))
            .collect();
        let mut rng = StdRng::seed_from_u64(config.seed);

        // Per-doc typed attribute lists: (type, item, count).
        let attrs: Vec<Vec<(usize, u32, f64)>> = doc_ids
            .iter()
            .map(|&d| {
                let doc = &corpus.docs[d];
                let mut list: Vec<(usize, u32, f64)> = Vec::new();
                let mut counts: std::collections::HashMap<u32, f64> = std::collections::HashMap::new();
                for &w in &doc.tokens {
                    *counts.entry(w).or_insert(0.0) += 1.0;
                }
                let mut words: Vec<(u32, f64)> = counts.into_iter().collect();
                words.sort_unstable_by_key(|&(w, _)| w);
                for (w, c) in words {
                    list.push((term_type, w, c));
                }
                for e in &doc.entities {
                    list.push((e.etype, e.id, 1.0));
                }
                list
            })
            .collect();

        // Global distributions for smoothing.
        let mut global: Vec<Vec<f64>> = type_sizes.iter().map(|&n| vec![1e-9; n]).collect();
        for list in &attrs {
            for &(x, i, c) in list {
                global[x][i as usize] += c;
            }
        }
        for g in &mut global {
            normalize(g);
        }

        // Random soft initialization.
        let mut post: Vec<Vec<f64>> = attrs
            .iter()
            .map(|_| {
                let mut row: Vec<f64> = (0..k).map(|_| rng.gen::<f64>() + 0.1).collect();
                normalize(&mut row);
                row
            })
            .collect();
        let mut prior = vec![1.0 / k as f64; k];
        let mut rank = vec![vec![Vec::new(); n_types]; k];

        for _ in 0..config.iters {
            // Ranking step: per-cluster type distributions, smoothed.
            for (z, rank_z) in rank.iter_mut().enumerate() {
                for (x, r) in rank_z.iter_mut().enumerate() {
                    *r = vec![1e-9; type_sizes[x]];
                }
                for (list, p) in attrs.iter().zip(&post) {
                    let w = p[z];
                    if w <= 1e-12 {
                        continue;
                    }
                    for &(x, i, c) in list {
                        rank_z[x][i as usize] += w * c;
                    }
                }
                for (x, r) in rank_z.iter_mut().enumerate() {
                    normalize(r);
                    for (ri, &gi) in r.iter_mut().zip(&global[x]) {
                        *ri = (1.0 - config.lambda_s) * *ri + config.lambda_s * gi;
                    }
                }
            }
            // Posterior step.
            let mut new_prior = vec![1e-12; k];
            for (list, p) in attrs.iter().zip(post.iter_mut()) {
                let mut logp: Vec<f64> = (0..k).map(|z| prior[z].max(1e-12).ln()).collect();
                for &(x, i, c) in list {
                    for (z, lp) in logp.iter_mut().enumerate() {
                        *lp += c * rank[z][x][i as usize].max(1e-300).ln();
                    }
                }
                let max_lp = logp.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                let mut total = 0.0;
                for lp in logp.iter_mut() {
                    *lp = (*lp - max_lp).exp();
                    total += *lp;
                }
                for (z, lp) in logp.iter().enumerate() {
                    p[z] = lp / total;
                    new_prior[z] += p[z];
                }
            }
            normalize(&mut new_prior);
            prior = new_prior;
        }
        NetClusModel { k, rank, doc_cluster: post, prior }
    }
}

fn normalize(row: &mut [f64]) {
    let s: f64 = row.iter().sum();
    if s > 0.0 {
        row.iter_mut().for_each(|x| *x /= s);
    } else if !row.is_empty() {
        let u = 1.0 / row.len() as f64;
        row.iter_mut().for_each(|x| *x = u);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lesm_corpus::Corpus;

    /// Two themes with theme-specific authors.
    fn corpus() -> Corpus {
        let mut c = Corpus::new();
        let author = c.entities.add_type("author");
        for i in 0..40 {
            if i % 2 == 0 {
                let d = c.push_text("query database index storage");
                c.link_entity(d, author, "alice").unwrap();
                c.link_entity(d, author, "adam").unwrap();
            } else {
                let d = c.push_text("ranking retrieval search relevance");
                c.link_entity(d, author, "bob").unwrap();
                c.link_entity(d, author, "bella").unwrap();
            }
        }
        c
    }

    #[test]
    fn separates_clusters_and_ranks_entities() {
        let c = corpus();
        let m = NetClus::fit(&c, &NetClusConfig { k: 2, lambda_s: 0.2, iters: 40, seed: 1 });
        let z0 = m.argmax_cluster(0);
        let z1 = m.argmax_cluster(1);
        assert_ne!(z0, z1, "themes should split");
        for d in 0..20 {
            let expect = if d % 2 == 0 { z0 } else { z1 };
            assert_eq!(m.argmax_cluster(d), expect);
        }
        // alice (id 0) should top the author ranking of cluster z0.
        let top = m.top_items(z0, 0, 1);
        assert!(top[0].0 == 0 || top[0].0 == 1, "expected a db-theme author, got {:?}", top);
    }

    #[test]
    fn rankings_are_distributions() {
        let c = corpus();
        let m = NetClus::fit(&c, &NetClusConfig { k: 2, iters: 10, ..Default::default() });
        for z in 0..2 {
            for x in 0..2 {
                let s: f64 = m.rank[z][x].iter().sum();
                assert!((s - 1.0).abs() < 1e-6, "rank[{z}][{x}] sums to {s}");
            }
        }
        let s: f64 = m.prior.iter().sum();
        assert!((s - 1.0).abs() < 1e-9);
    }

    #[test]
    fn subset_fit_restricts_documents() {
        let c = corpus();
        let subset: Vec<usize> = (0..10).collect();
        let m = NetClus::fit_subset(&c, &subset, &NetClusConfig { k: 2, iters: 10, ..Default::default() });
        assert_eq!(m.doc_cluster.len(), 10);
    }
}
