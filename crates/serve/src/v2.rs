//! Snapshot format v2 — the zero-copy, mmap-friendly layout (DESIGN.md
//! §13).
//!
//! v1 (see [`crate::snapshot`]) is a streaming wire format: loading it
//! deserializes every record into heap-allocated structures, which is
//! fine at 400 documents and fatal at 400k. v2 keeps the same *values*
//! (floats as raw little-endian bits, maps in sorted-key order — the v1
//! semantics) but lays the hot query-time data out as alignment-padded
//! arenas behind a fixed-offset section table, so the load hot path is:
//!
//! 1. map the file ([`crate::mapping::Mapping`]: `mmap` or an aligned
//!    read fallback),
//! 2. verify the word-lane FNV trailer checksum,
//! 3. validate the section table and every arena's bounds, offset
//!    monotonicity, UTF-8, and sort invariants **once**,
//! 4. hand out typed `&[u32]`/`&[u64]`/`&[f64]`/`&str` views that borrow
//!    directly from the mapping. No per-section heap deserialization.
//!
//! Checksum-then-borrow makes step 4 safe against corrupt files; step 3
//! makes it safe against *crafted* files with a valid checksum, which is
//! why every invariant an infallible accessor relies on is checked at
//! load time.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! offset 0   magic "LESM" (4) | version=2 (4) | section count (4) | reserved (4)
//! offset 16  section table: count × { id u32, reserved u32, offset u64, length u64 }
//! ...        sections, each starting at a 64-byte-aligned offset
//! EOF-8      u64 checksum: 4-lane FNV-1a over the 8-byte LE words of the body
//! ```
//!
//! Within a section, scalars are u64 and arrays are padded to their
//! element alignment; because every section starts 64-byte aligned and
//! the mapping base is at least 8-byte aligned, every array view is
//! correctly aligned for its element type. The rarely-read remainder of
//! the model (EM fits, per-topic phi/networks, entity links, segments)
//! lives in a single *cold* section in the v1 wire encoding, decoded only
//! by [`MappedSnapshot::to_snapshot`] — never on the load hot path.
//!
//! Incrementally updated artifacts carry one extra *optional* section,
//! `delta-lineage` (id 11, [`DeltaInfo`]): the artifact stays full and
//! self-contained, the section only records which base artifact it was
//! derived from and the base's append-only id ranges. Readers that don't
//! know the id skip it (the section table tolerates unknown ids).

use crate::mapping::Mapping;
use crate::snapshot::{self, Snapshot, MAGIC};
use crate::wire::{ByteReader, ByteWriter};
use crate::SnapshotError;
use lesm_core::pipeline::MinedStructure;
use lesm_corpus::{Corpus, Doc, EntityRef};
use lesm_hier::hierarchy::HierTopic;
use lesm_hier::TopicHierarchy;
use std::collections::HashMap;
use std::sync::Arc;

/// The v2 format version tag.
pub const FORMAT_VERSION_V2: u32 = 2;

const SEC_VOCAB: u32 = 1;
const SEC_ENTITIES: u32 = 2;
const SEC_DOCS: u32 = 3;
const SEC_TOPICS: u32 = 4;
const SEC_PHRASES: u32 = 5;
const SEC_TOPIC_ENTITIES: u32 = 6;
const SEC_PTF: u32 = 7;
const SEC_DOC_TOPIC: u32 = 8;
const SEC_DOC_IDS: u32 = 9;
const SEC_COLD: u32 = 10;
const SEC_DELTA: u32 = 11;
const N_SECTIONS: usize = 10;

const HEADER_LEN: usize = 16;
const TABLE_ENTRY_LEN: usize = 24;
const SECTION_ALIGN: usize = 64;

/// Human-readable v2 section name (for `lesm snapshot inspect`).
fn v2_section_name(id: u32) -> &'static str {
    match id {
        SEC_VOCAB => "vocab",
        SEC_ENTITIES => "entities",
        SEC_DOCS => "docs",
        SEC_TOPICS => "topics",
        SEC_PHRASES => "phrases",
        SEC_TOPIC_ENTITIES => "topic-entities",
        SEC_PTF => "phrase-topic-freq",
        SEC_DOC_TOPIC => "doc-topic",
        SEC_DOC_IDS => "doc-ids",
        SEC_COLD => "cold",
        SEC_DELTA => "delta-lineage",
        _ => "unknown",
    }
}

/// Delta lineage carried by an incrementally updated artifact (section
/// `delta-lineage`, id 11). The artifact itself is always *full* — every
/// section covers all documents — so readers need no base artifact to
/// serve it; the lineage records which base it was derived from and how
/// much of each append-only id range the base already covered, and drives
/// the compaction policy (an update whose chain would exceed the
/// configured depth is written without this section, resetting the chain).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeltaInfo {
    /// File name of the base artifact this delta was mined against
    /// (e.g. `v0007.lesm`).
    pub base_artifact: String,
    /// Documents the base already covered; ids `>= base_docs` are appended.
    pub base_docs: u64,
    /// Words the base vocabulary already interned.
    pub base_words: u64,
    /// Per-entity-type catalog sizes in the base (aligned with the
    /// artifact's entity types).
    pub base_entities: Vec<u64>,
    /// Length of the update chain ending at this artifact (1 = first
    /// update on a full base).
    pub chain_depth: u64,
}

/// 4-lane FNV-1a over 8-byte words. The independent lanes break the
/// sequential multiply dependency chain (≈4x throughput over the byte
/// FNV used by v1) while staying a pure deterministic function of the
/// word sequence; the fold hashes the lane digests plus the word count.
pub(crate) fn checksum_words(words: &[u64]) -> u64 {
    const BASIS: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x1000_0000_01b3;
    let mut l0 = BASIS ^ 1;
    let mut l1 = BASIS ^ 2;
    let mut l2 = BASIS ^ 3;
    let mut l3 = BASIS ^ 4;
    let mut chunks = words.chunks_exact(4);
    for c in &mut chunks {
        l0 = (l0 ^ c[0]).wrapping_mul(PRIME);
        l1 = (l1 ^ c[1]).wrapping_mul(PRIME);
        l2 = (l2 ^ c[2]).wrapping_mul(PRIME);
        l3 = (l3 ^ c[3]).wrapping_mul(PRIME);
    }
    let mut lanes = [l0, l1, l2, l3];
    for (j, &w) in chunks.remainder().iter().enumerate() {
        lanes[j] = (lanes[j] ^ w).wrapping_mul(PRIME);
    }
    let mut h = BASIS ^ (words.len() as u64);
    for l in lanes {
        h = (h ^ l).wrapping_mul(PRIME);
    }
    h
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

struct ArenaWriter {
    buf: Vec<u8>,
}

impl ArenaWriter {
    fn align(&mut self, a: usize) {
        while !self.buf.len().is_multiple_of(a) {
            self.buf.push(0);
        }
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }
    fn bytes(&mut self, b: &[u8]) {
        self.buf.extend_from_slice(b);
    }
    /// Writes the prefix-sum bounds array for `lens` (n+1 u64 entries).
    fn bounds<I: IntoIterator<Item = usize>>(&mut self, lens: I) {
        self.align(8);
        let mut acc = 0u64;
        self.u64(0);
        for len in lens {
            acc += len as u64;
            self.u64(acc);
        }
    }
    /// Pads to the section alignment and returns the section's offset.
    fn begin_section(&mut self) -> usize {
        self.align(SECTION_ALIGN);
        self.buf.len()
    }
}

/// Serializes a corpus + mined structure as a v2 artifact with identity
/// document ids (document `d` is globally `d`). Fails with
/// [`SnapshotError::TooLarge`] if any id or count overflows its 32-bit
/// wire field — the save refuses rather than truncating.
pub fn save_snapshot_v2(corpus: &Corpus, mined: &MinedStructure) -> Result<Vec<u8>, SnapshotError> {
    save_snapshot_v2_with_ids(corpus, mined, None)
}

/// Writes a v2 artifact to `path`.
pub fn save_snapshot_v2_file(
    path: &str,
    corpus: &Corpus,
    mined: &MinedStructure,
) -> Result<(), SnapshotError> {
    std::fs::write(path, save_snapshot_v2(corpus, mined)?).map_err(SnapshotError::Io)
}

/// Serializes a v2 artifact. `doc_ids`, when given, maps the local
/// document index to its global id (used by shards so merged responses
/// render the same document numbers as an unsharded server); it must
/// have one entry per document.
pub fn save_snapshot_v2_with_ids(
    corpus: &Corpus,
    mined: &MinedStructure,
    doc_ids: Option<&[u64]>,
) -> Result<Vec<u8>, SnapshotError> {
    save_snapshot_v2_with_lineage(corpus, mined, doc_ids, None)
}

/// Serializes a v2 artifact, optionally stamping it with delta lineage
/// (see [`DeltaInfo`]). Artifacts written without lineage are compacted
/// full artifacts; readers treat both identically apart from
/// [`MappedSnapshot::delta_info`].
pub fn save_snapshot_v2_with_lineage(
    corpus: &Corpus,
    mined: &MinedStructure,
    doc_ids: Option<&[u64]>,
    delta: Option<&DeltaInfo>,
) -> Result<Vec<u8>, SnapshotError> {
    let n_sections = N_SECTIONS + usize::from(delta.is_some());
    let mut w = ArenaWriter { buf: Vec::new() };
    w.bytes(&MAGIC);
    w.u32(FORMAT_VERSION_V2);
    w.u32(crate::wire_u32(n_sections, "section count")?);
    w.u32(0);
    // Placeholder table, patched once section extents are known.
    w.buf.resize(HEADER_LEN + n_sections * TABLE_ENTRY_LEN, 0);
    let mut table: Vec<(u32, u64, u64)> = Vec::with_capacity(n_sections);

    // --- vocab ---
    let start = w.begin_section();
    {
        let n = corpus.vocab.len();
        let n32 = crate::wire_u32(n, "vocab size")?;
        w.u64(n as u64);
        w.bounds((0..n32).map(|id| corpus.vocab.name_or_unk(id).len()));
        for id in 0..n32 {
            let name = corpus.vocab.name_or_unk(id);
            w.bytes(name.as_bytes());
        }
        w.align(4);
        let mut sorted: Vec<u32> = (0..n32).collect();
        sorted.sort_unstable_by(|&a, &b| {
            corpus.vocab.name_or_unk(a).cmp(corpus.vocab.name_or_unk(b)).then(a.cmp(&b))
        });
        for id in sorted {
            w.u32(id);
        }
    }
    table.push((SEC_VOCAB, start as u64, (w.buf.len() - start) as u64));

    // --- entities ---
    let start = w.begin_section();
    {
        let nt = corpus.entities.num_types();
        w.u64(nt as u64);
        w.bounds((0..nt).map(|t| corpus.entities.type_name(t).unwrap_or("").len()));
        for t in 0..nt {
            w.bytes(corpus.entities.type_name(t).unwrap_or("").as_bytes());
        }
        w.bounds((0..nt).map(|t| corpus.entities.count(t)));
        w.align(8);
        let ent_name = |t: usize, id: u32| -> &str {
            corpus.entities.table(t).and_then(|tab| tab.name(id)).unwrap_or("")
        };
        w.u64(0);
        let mut acc = 0u64;
        for t in 0..nt {
            for id in 0..crate::wire_u32(corpus.entities.count(t), "entity count")? {
                acc += ent_name(t, id).len() as u64;
                w.u64(acc);
            }
        }
        for t in 0..nt {
            for id in 0..crate::wire_u32(corpus.entities.count(t), "entity count")? {
                w.bytes(ent_name(t, id).as_bytes());
            }
        }
    }
    table.push((SEC_ENTITIES, start as u64, (w.buf.len() - start) as u64));

    // --- docs ---
    let start = w.begin_section();
    {
        let n = corpus.docs.len();
        w.u64(n as u64);
        w.bounds(corpus.docs.iter().map(|d| d.tokens.len()));
        w.align(4);
        for d in &corpus.docs {
            for &tok in &d.tokens {
                w.u32(tok);
            }
        }
    }
    table.push((SEC_DOCS, start as u64, (w.buf.len() - start) as u64));

    // --- topics ---
    let start = w.begin_section();
    {
        let topics = &mined.hierarchy.topics;
        let n = topics.len();
        w.u64(n as u64);
        w.align(8);
        for t in topics {
            w.u64(t.parent.map_or(u64::MAX, |p| p as u64));
        }
        for t in topics {
            w.u64(t.level as u64);
        }
        for t in topics {
            w.f64(t.rho);
        }
        w.bounds(topics.iter().map(|t| t.children.len()));
        for t in topics {
            for &c in &t.children {
                w.u64(c as u64);
            }
        }
        w.bounds(topics.iter().map(|t| t.path.len()));
        for t in topics {
            w.bytes(t.path.as_bytes());
        }
    }
    table.push((SEC_TOPICS, start as u64, (w.buf.len() - start) as u64));

    // --- phrases ---
    let start = w.begin_section();
    {
        let lists = &mined.topic_phrases;
        w.u64(lists.len() as u64);
        w.bounds(lists.iter().map(|l| l.len()));
        w.bounds(lists.iter().flat_map(|l| l.iter()).map(|p| p.tokens.len()));
        w.align(4);
        for p in lists.iter().flatten() {
            for &tok in &p.tokens {
                w.u32(tok);
            }
        }
        w.align(8);
        for p in lists.iter().flatten() {
            w.f64(p.score);
        }
        for p in lists.iter().flatten() {
            w.f64(p.topic_freq);
        }
    }
    table.push((SEC_PHRASES, start as u64, (w.buf.len() - start) as u64));

    // --- topic entities ---
    let start = w.begin_section();
    {
        let per_topic = &mined.topic_entities;
        w.u64(per_topic.len() as u64);
        w.bounds(per_topic.iter().map(|cells| cells.len()));
        w.bounds(per_topic.iter().flat_map(|cells| cells.iter()).map(|list| list.len()));
        w.align(4);
        for list in per_topic.iter().flatten() {
            for &(id, _) in list {
                w.u32(id);
            }
        }
        w.align(8);
        for list in per_topic.iter().flatten() {
            for &(_, score) in list {
                w.f64(score);
            }
        }
    }
    table.push((SEC_TOPIC_ENTITIES, start as u64, (w.buf.len() - start) as u64));

    // --- phrase-topic frequency tables (sorted-key order, as v1) ---
    let start = w.begin_section();
    {
        let tables: Vec<Vec<(&Vec<u32>, f64)>> = mined
            .phrase_topic_freq
            .iter()
            .map(|table| {
                let mut entries: Vec<(&Vec<u32>, f64)> =
                    table.iter().map(|(k, &v)| (k, v)).collect();
                entries.sort_unstable_by(|a, b| a.0.cmp(b.0));
                entries
            })
            .collect();
        w.u64(tables.len() as u64);
        w.bounds(tables.iter().map(|t| t.len()));
        w.bounds(tables.iter().flat_map(|t| t.iter()).map(|(p, _)| p.len()));
        w.align(4);
        for (phrase, _) in tables.iter().flatten() {
            for &tok in phrase.iter() {
                w.u32(tok);
            }
        }
        w.align(8);
        for &(_, freq) in tables.iter().flatten() {
            w.f64(freq);
        }
    }
    table.push((SEC_PTF, start as u64, (w.buf.len() - start) as u64));

    // --- doc-topic weights ---
    let start = w.begin_section();
    {
        let rows = &mined.doc_topic;
        w.u64(rows.len() as u64);
        w.bounds(rows.iter().map(|r| r.len()));
        for row in rows {
            for &v in row {
                w.f64(v);
            }
        }
    }
    table.push((SEC_DOC_TOPIC, start as u64, (w.buf.len() - start) as u64));

    // --- global doc ids ---
    let start = w.begin_section();
    {
        let n = corpus.docs.len();
        w.u64(n as u64);
        w.align(8);
        match doc_ids {
            Some(ids) => {
                for d in 0..n {
                    w.u64(ids.get(d).copied().unwrap_or(d as u64));
                }
            }
            None => {
                for d in 0..n {
                    w.u64(d as u64);
                }
            }
        }
    }
    table.push((SEC_DOC_IDS, start as u64, (w.buf.len() - start) as u64));

    // --- cold remainder (v1 wire encoding; only to_snapshot reads it) ---
    let start = w.begin_section();
    {
        let mut cw = ByteWriter::new();
        let h = &mined.hierarchy;
        cw.put_usize(h.type_names.len());
        for name in &h.type_names {
            cw.put_str(name);
        }
        cw.put_usize(h.topics.len());
        for topic in &h.topics {
            cw.put_usize(topic.phi.len());
            for row in &topic.phi {
                cw.put_f64_seq(row);
            }
            snapshot::encode_network(&mut cw, &topic.network);
        }
        cw.put_usize(h.fits.len());
        for fit in &h.fits {
            cw.put_option(fit.as_ref(), snapshot::encode_fit);
        }
        cw.put_usize(h.alphas.len());
        for alpha in &h.alphas {
            cw.put_option(alpha.as_ref(), |w, a| w.put_f64_seq(a));
        }
        cw.put_usize(corpus.docs.len());
        for doc in &corpus.docs {
            cw.put_usize(doc.entities.len());
            for e in &doc.entities {
                cw.put_u32(crate::wire_u32(e.etype, "entity type id")?);
                cw.put_u32(e.id);
            }
            cw.put_option(doc.label.as_ref(), |w, &l| w.put_u32(l));
            cw.put_option(doc.year.as_ref(), |w, &y| w.put_i32(y));
        }
        cw.put_usize(mined.segments.len());
        for doc_segs in &mined.segments {
            cw.put_usize(doc_segs.len());
            for seg in doc_segs {
                cw.put_u32_seq(seg);
            }
        }
        w.bytes(&cw.into_bytes());
    }
    table.push((SEC_COLD, start as u64, (w.buf.len() - start) as u64));

    // --- delta lineage (optional; incremental updates only) ---
    if let Some(d) = delta {
        let start = w.begin_section();
        w.u64(d.base_docs);
        w.u64(d.base_words);
        w.u64(d.chain_depth);
        w.u64(d.base_entities.len() as u64);
        for &c in &d.base_entities {
            w.u64(c);
        }
        w.u64(d.base_artifact.len() as u64);
        w.bytes(d.base_artifact.as_bytes());
        table.push((SEC_DELTA, start as u64, (w.buf.len() - start) as u64));
    }

    // Patch the table, pad the body to a whole number of words, append
    // the checksum trailer.
    // lesm-lint: allow(D2) — `table` is a Vec built in fixed section order, not a hash map
    for (i, (id, off, len)) in table.iter().enumerate() {
        let at = HEADER_LEN + i * TABLE_ENTRY_LEN;
        w.buf[at..at + 4].copy_from_slice(&id.to_le_bytes());
        w.buf[at + 8..at + 16].copy_from_slice(&off.to_le_bytes());
        w.buf[at + 16..at + 24].copy_from_slice(&len.to_le_bytes());
    }
    w.align(8);
    let words: Vec<u64> = w
        .buf
        .chunks_exact(8)
        .map(|c| u64::from_le_bytes([c[0], c[1], c[2], c[3], c[4], c[5], c[6], c[7]]))
        .collect();
    let checksum = checksum_words(&words);
    w.buf.extend_from_slice(&checksum.to_le_bytes());
    Ok(w.buf)
}

// ---------------------------------------------------------------------------
// Loader
// ---------------------------------------------------------------------------

/// A validated view of one array within the mapping: absolute byte
/// offset plus element count.
#[derive(Clone, Copy, Debug, Default)]
struct ArrayRef {
    off: usize,
    count: usize,
}

/// One entry of the artifact's section table (exposed for inspection).
#[derive(Clone, Copy, Debug)]
pub struct SectionInfo {
    /// Section id.
    pub id: u32,
    /// Absolute byte offset.
    pub offset: u64,
    /// Length in bytes.
    pub len: u64,
}

#[derive(Debug, Default)]
struct Layout {
    // vocab
    n_words: usize,
    word_name_offsets: ArrayRef,
    word_names: ArrayRef,
    word_sorted: ArrayRef,
    // entities
    n_types: usize,
    type_name_offsets: ArrayRef,
    type_names: ArrayRef,
    type_bounds: ArrayRef,
    ent_name_offsets: ArrayRef,
    ent_names: ArrayRef,
    // docs
    n_docs: usize,
    doc_tok_bounds: ArrayRef,
    doc_tokens: ArrayRef,
    // topics
    n_topics: usize,
    parent: ArrayRef,
    level: ArrayRef,
    rho: ArrayRef,
    child_bounds: ArrayRef,
    children: ArrayRef,
    path_offsets: ArrayRef,
    paths: ArrayRef,
    // phrases
    phrase_topic_bounds: ArrayRef,
    phrase_tok_bounds: ArrayRef,
    phrase_tokens: ArrayRef,
    phrase_scores: ArrayRef,
    phrase_freqs: ArrayRef,
    // topic entities
    te_cell_bounds: ArrayRef,
    te_entry_bounds: ArrayRef,
    te_ids: ArrayRef,
    te_scores: ArrayRef,
    // phrase-topic freq
    ptf_topic_bounds: ArrayRef,
    ptf_tok_bounds: ArrayRef,
    ptf_tokens: ArrayRef,
    ptf_freqs: ArrayRef,
    // doc-topic
    dt_row_bounds: ArrayRef,
    dt_values: ArrayRef,
    // doc ids
    doc_ids: ArrayRef,
    // cold
    cold_off: usize,
    cold_len: usize,
    // delta lineage (absent on compacted full artifacts)
    delta: Option<DeltaInfo>,
}

/// Bounds-checked sequential reader over one section of the mapping.
struct Cursor<'m> {
    map: &'m Mapping,
    pos: usize,
    end: usize,
}

impl<'m> Cursor<'m> {
    fn new(map: &'m Mapping, off: usize, len: usize) -> Self {
        Cursor { map, pos: off, end: off + len }
    }

    fn align(&mut self, a: usize) -> Result<(), SnapshotError> {
        let next = self.pos.div_ceil(a) * a;
        if next > self.end {
            return Err(SnapshotError::Truncated {
                offset: self.pos,
                needed: next - self.pos,
                available: self.end - self.pos,
            });
        }
        self.pos = next;
        Ok(())
    }

    fn u64(&mut self) -> Result<u64, SnapshotError> {
        self.align(8)?;
        if self.pos + 8 > self.end {
            return Err(SnapshotError::Truncated {
                offset: self.pos,
                needed: 8,
                available: self.end - self.pos,
            });
        }
        let b = &self.map.bytes()[self.pos..self.pos + 8];
        self.pos += 8;
        Ok(u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }

    fn count(&mut self, what: &str) -> Result<usize, SnapshotError> {
        let at = self.pos;
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| SnapshotError::Malformed {
            offset: at,
            what: format!("{what} count {v} overflows usize"),
        })
    }

    /// Claims an array of `count` elements of `elem` bytes each, aligned
    /// to `align`, and advances past it.
    fn array(
        &mut self,
        count: usize,
        elem: usize,
        align: usize,
        what: &str,
    ) -> Result<ArrayRef, SnapshotError> {
        self.align(align)?;
        let bytes = count.checked_mul(elem).ok_or_else(|| SnapshotError::Malformed {
            offset: self.pos,
            what: format!("{what} length overflows"),
        })?;
        if self.pos + bytes > self.end {
            return Err(SnapshotError::Truncated {
                offset: self.pos,
                needed: bytes,
                available: self.end - self.pos,
            });
        }
        let r = ArrayRef { off: self.pos, count };
        self.pos += bytes;
        Ok(r)
    }
}

/// Validates a prefix-sum bounds array (first 0, nondecreasing) and
/// returns its final value — the element count of the array it indexes.
fn check_bounds(map: &Mapping, r: ArrayRef, what: &str) -> Result<usize, SnapshotError> {
    let v = map.view_u64(r.off, r.count);
    if v.first() != Some(&0) {
        return Err(SnapshotError::Malformed {
            offset: r.off,
            what: format!("{what} bounds do not start at 0"),
        });
    }
    for w in v.windows(2) {
        if w[0] > w[1] {
            return Err(SnapshotError::Malformed {
                offset: r.off,
                what: format!("{what} bounds are not monotonic"),
            });
        }
    }
    usize::try_from(*v.last().unwrap_or(&0)).map_err(|_| SnapshotError::Malformed {
        offset: r.off,
        what: format!("{what} total length overflows usize"),
    })
}

/// Validates that every `[offsets[i], offsets[i+1])` slice of the byte
/// arena is valid UTF-8, so string accessors can be infallible.
fn check_utf8(
    map: &Mapping,
    offsets: ArrayRef,
    arena: ArrayRef,
    what: &str,
) -> Result<(), SnapshotError> {
    let offs = map.view_u64(offsets.off, offsets.count);
    let bytes = &map.bytes()[arena.off..arena.off + arena.count];
    for w in offs.windows(2) {
        let (a, b) = (w[0] as usize, w[1] as usize);
        if std::str::from_utf8(&bytes[a..b]).is_err() {
            return Err(SnapshotError::Malformed {
                offset: arena.off + a,
                what: format!("{what} arena entry is not valid UTF-8"),
            });
        }
    }
    Ok(())
}

/// A v2 snapshot backed by a memory mapping. All accessors borrow typed
/// views directly from the mapping and are infallible: every invariant
/// they rely on was validated once at load time.
#[derive(Debug)]
pub struct MappedSnapshot {
    map: Arc<Mapping>,
    layout: Layout,
    sections: Vec<SectionInfo>,
}

impl MappedSnapshot {
    /// Maps and validates the artifact at `path`.
    pub fn open(path: &str) -> Result<Self, SnapshotError> {
        Self::from_mapping(Mapping::open(path)?)
    }

    /// Copies `bytes` into an aligned buffer and validates them. Accepts
    /// arbitrarily (mis)aligned input.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, SnapshotError> {
        Self::from_mapping(Mapping::from_bytes(bytes))
    }

    fn from_mapping(map: Mapping) -> Result<Self, SnapshotError> {
        let len = map.len();
        if len < 8 {
            return Err(SnapshotError::Truncated { offset: 0, needed: 8, available: len });
        }
        let bytes = map.bytes();
        let found = [bytes[0], bytes[1], bytes[2], bytes[3]];
        if found != MAGIC {
            return Err(SnapshotError::BadMagic { found });
        }
        let version = u32::from_le_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]);
        if version != FORMAT_VERSION_V2 {
            return Err(SnapshotError::VersionMismatch {
                found: version,
                supported: FORMAT_VERSION_V2,
            });
        }
        if len < HEADER_LEN + 8 {
            return Err(SnapshotError::Truncated {
                offset: 8,
                needed: HEADER_LEN + 8,
                available: len,
            });
        }
        let body_len = len - 8;
        if !body_len.is_multiple_of(8) {
            return Err(SnapshotError::Malformed {
                offset: body_len,
                what: format!("body length {body_len} is not a multiple of 8"),
            });
        }
        let trailer = &bytes[body_len..];
        let stored = u64::from_le_bytes([
            trailer[0], trailer[1], trailer[2], trailer[3], trailer[4], trailer[5], trailer[6],
            trailer[7],
        ]);
        let actual = checksum_words(map.view_u64(0, body_len / 8));
        if stored != actual {
            return Err(SnapshotError::ChecksumMismatch { expected: stored, actual });
        }

        let sections = parse_section_table(&map, body_len)?;
        let find = |id: u32| -> Result<(usize, usize), SnapshotError> {
            sections
                .iter()
                .find(|s| s.id == id)
                .map(|s| (s.offset as usize, s.len as usize))
                .ok_or_else(|| SnapshotError::Malformed {
                    offset: HEADER_LEN,
                    what: format!("missing section {id} ({})", v2_section_name(id)),
                })
        };

        let mut layout = Layout::default();
        parse_vocab(&map, find(SEC_VOCAB)?, &mut layout)?;
        parse_entities(&map, find(SEC_ENTITIES)?, &mut layout)?;
        parse_docs(&map, find(SEC_DOCS)?, &mut layout)?;
        parse_topics(&map, find(SEC_TOPICS)?, &mut layout)?;
        parse_phrases(&map, find(SEC_PHRASES)?, &mut layout)?;
        parse_topic_entities(&map, find(SEC_TOPIC_ENTITIES)?, &mut layout)?;
        parse_ptf(&map, find(SEC_PTF)?, &mut layout)?;
        parse_doc_topic(&map, find(SEC_DOC_TOPIC)?, &mut layout)?;
        parse_doc_ids(&map, find(SEC_DOC_IDS)?, &mut layout)?;
        let (cold_off, cold_len) = find(SEC_COLD)?;
        layout.cold_off = cold_off;
        layout.cold_len = cold_len;
        if let Some(s) = sections.iter().find(|s| s.id == SEC_DELTA) {
            layout.delta =
                Some(parse_delta(&map, (s.offset as usize, s.len as usize), &layout)?);
        }

        Ok(MappedSnapshot { map: Arc::new(map), layout, sections })
    }

    /// Delta lineage for incrementally updated artifacts; `None` on full
    /// (compacted) artifacts.
    pub fn delta_info(&self) -> Option<&DeltaInfo> {
        self.layout.delta.as_ref()
    }

    /// The parsed section table (for `lesm snapshot inspect`).
    pub fn sections(&self) -> &[SectionInfo] {
        &self.sections
    }

    /// Total artifact size in bytes.
    pub fn artifact_len(&self) -> usize {
        self.map.len()
    }

    fn u64s(&self, r: ArrayRef) -> &[u64] {
        self.map.view_u64(r.off, r.count)
    }
    fn u32s(&self, r: ArrayRef) -> &[u32] {
        self.map.view_u32(r.off, r.count)
    }
    fn f64s(&self, r: ArrayRef) -> &[f64] {
        self.map.view_f64(r.off, r.count)
    }
    fn arena_str(&self, offsets: ArrayRef, arena: ArrayRef, i: usize) -> &str {
        let offs = self.u64s(offsets);
        let (a, b) = (offs[i] as usize, offs[i + 1] as usize);
        let bytes = &self.map.bytes()[arena.off + a..arena.off + b];
        // Validated at load; the fallback keeps the accessor infallible.
        std::str::from_utf8(bytes).unwrap_or("")
    }
    fn span(&self, bounds: ArrayRef, i: usize) -> (usize, usize) {
        let b = self.u64s(bounds);
        (b[i] as usize, b[i + 1] as usize)
    }

    // --- vocabulary ---

    /// Number of vocabulary words.
    pub fn num_words(&self) -> usize {
        self.layout.n_words
    }

    /// The word's surface form, or `"<unk>"` out of range (matching
    /// [`lesm_corpus::Vocabulary::name_or_unk`]).
    pub fn word_or_unk(&self, id: u32) -> &str {
        if (id as usize) < self.layout.n_words {
            self.arena_str(self.layout.word_name_offsets, self.layout.word_names, id as usize)
        } else {
            "<unk>"
        }
    }

    /// The word id for `name` (binary search over the name-sorted id
    /// permutation; ties resolve to the smallest id, matching first-wins
    /// interning).
    pub fn word_id(&self, name: &str) -> Option<u32> {
        let sorted = self.u32s(self.layout.word_sorted);
        let at = sorted.partition_point(|&id| {
            self.arena_str(self.layout.word_name_offsets, self.layout.word_names, id as usize)
                < name
        });
        let &id = sorted.get(at)?;
        let found =
            self.arena_str(self.layout.word_name_offsets, self.layout.word_names, id as usize);
        (found == name).then_some(id)
    }

    /// Renders token ids joined by spaces (matching
    /// [`lesm_corpus::Vocabulary::render`]).
    pub fn render_tokens(&self, ids: &[u32]) -> String {
        let mut out = String::new();
        for (i, &id) in ids.iter().enumerate() {
            if i > 0 {
                out.push(' ');
            }
            out.push_str(self.word_or_unk(id));
        }
        out
    }

    // --- entities ---

    /// Number of entity types.
    pub fn num_types(&self) -> usize {
        self.layout.n_types
    }

    /// Entity type name, if in range.
    pub fn type_name(&self, t: usize) -> Option<&str> {
        (t < self.layout.n_types)
            .then(|| self.arena_str(self.layout.type_name_offsets, self.layout.type_names, t))
    }

    /// Entity surface name with the `"<unk-entity>"` fallback (matching
    /// [`lesm_corpus::EntityCatalog::name`]).
    pub fn entity_name(&self, t: usize, id: u32) -> &str {
        if t >= self.layout.n_types {
            return "<unk-entity>";
        }
        let (a, b) = self.span(self.layout.type_bounds, t);
        let global = a + id as usize;
        if global >= b {
            return "<unk-entity>";
        }
        self.arena_str(self.layout.ent_name_offsets, self.layout.ent_names, global)
    }

    // --- documents ---

    /// Number of documents in this artifact (shard-local).
    pub fn num_docs(&self) -> usize {
        self.layout.n_docs
    }

    /// Token ids of document `d`.
    pub fn doc_tokens(&self, d: usize) -> &[u32] {
        let (a, b) = self.span(self.layout.doc_tok_bounds, d);
        &self.u32s(self.layout.doc_tokens)[a..b]
    }

    /// The global id of local document `d` (identity for unsharded
    /// artifacts).
    pub fn doc_id(&self, d: usize) -> u64 {
        self.u64s(self.layout.doc_ids)[d]
    }

    /// Renders document `d`'s tokens (matching
    /// [`lesm_corpus::Corpus::render_doc`], which returns `""` out of
    /// range).
    pub fn render_doc(&self, d: usize) -> String {
        if d >= self.layout.n_docs {
            return String::new();
        }
        self.render_tokens(self.doc_tokens(d))
    }

    // --- topics ---

    /// Number of topics.
    pub fn num_topics(&self) -> usize {
        self.layout.n_topics
    }

    /// Parent topic of `t`.
    pub fn parent(&self, t: usize) -> Option<usize> {
        let v = self.u64s(self.layout.parent)[t];
        (v != u64::MAX).then_some(v as usize)
    }

    /// Hierarchy level of `t`.
    pub fn level(&self, t: usize) -> usize {
        self.u64s(self.layout.level)[t] as usize
    }

    /// Background mixing weight of `t`.
    pub fn rho(&self, t: usize) -> f64 {
        self.f64s(self.layout.rho)[t]
    }

    /// Child topic ids of `t`.
    pub fn children(&self, t: usize) -> &[u64] {
        let (a, b) = self.span(self.layout.child_bounds, t);
        &self.u64s(self.layout.children)[a..b]
    }

    /// Path string of `t` (e.g. `"o/2/1"`).
    pub fn path(&self, t: usize) -> &str {
        self.arena_str(self.layout.path_offsets, self.layout.paths, t)
    }

    /// Leaf topics (no children), ascending (matching
    /// [`lesm_hier::TopicHierarchy::leaves`]).
    pub fn leaves(&self) -> Vec<usize> {
        (0..self.layout.n_topics).filter(|&t| self.children(t).is_empty()).collect()
    }

    // --- ranked phrases ---

    /// Number of ranked phrases for topic `t`.
    pub fn phrase_count(&self, t: usize) -> usize {
        let (a, b) = self.span(self.layout.phrase_topic_bounds, t);
        b - a
    }

    /// The `i`-th ranked phrase of topic `t`: (tokens, score, topic
    /// frequency), in the original ranked order.
    pub fn phrase(&self, t: usize, i: usize) -> (&[u32], f64, f64) {
        let (a, _) = self.span(self.layout.phrase_topic_bounds, t);
        let p = a + i;
        let (ta, tb) = self.span(self.layout.phrase_tok_bounds, p);
        (
            &self.u32s(self.layout.phrase_tokens)[ta..tb],
            self.f64s(self.layout.phrase_scores)[p],
            self.f64s(self.layout.phrase_freqs)[p],
        )
    }

    // --- ranked entities ---

    /// Number of per-type entity cells for topic `t`.
    pub fn entity_cells(&self, t: usize) -> usize {
        let (a, b) = self.span(self.layout.te_cell_bounds, t);
        b - a
    }

    /// The ranked entity list for topic `t`, type cell `x`: parallel
    /// (ids, scores) slices.
    pub fn topic_entities(&self, t: usize, x: usize) -> (&[u32], &[f64]) {
        let (a, _) = self.span(self.layout.te_cell_bounds, t);
        let (ea, eb) = self.span(self.layout.te_entry_bounds, a + x);
        (&self.u32s(self.layout.te_ids)[ea..eb], &self.f64s(self.layout.te_scores)[ea..eb])
    }

    // --- phrase-topic frequency ---

    /// Number of phrase-frequency entries for topic `t`.
    pub fn ptf_count(&self, t: usize) -> usize {
        let (a, b) = self.span(self.layout.ptf_topic_bounds, t);
        b - a
    }

    /// The `i`-th phrase-frequency entry of topic `t` (entries are stored
    /// in ascending phrase-key order — the same order v1's sorted-key
    /// serialization and the owned query path's collect-then-sort use).
    pub fn ptf_entry(&self, t: usize, i: usize) -> (&[u32], f64) {
        let (a, _) = self.span(self.layout.ptf_topic_bounds, t);
        let e = a + i;
        let (ta, tb) = self.span(self.layout.ptf_tok_bounds, e);
        (&self.u32s(self.layout.ptf_tokens)[ta..tb], self.f64s(self.layout.ptf_freqs)[e])
    }

    // --- doc-topic weights ---

    /// Document `d`'s topic weight row.
    pub fn doc_topic_row(&self, d: usize) -> &[f64] {
        let (a, b) = self.span(self.layout.dt_row_bounds, d);
        &self.f64s(self.layout.dt_values)[a..b]
    }

    /// Document `d`'s weight for topic `t` (0.0 past the row's end).
    pub fn doc_topic(&self, d: usize, t: usize) -> f64 {
        self.doc_topic_row(d).get(t).copied().unwrap_or(0.0)
    }

    /// The leaf topic with the highest weight for document `d` (matching
    /// [`lesm_core::pipeline::MinedStructure::doc_leaf`]).
    pub fn doc_leaf(&self, d: usize) -> usize {
        self.leaves()
            .into_iter()
            .max_by(|&a, &b| self.doc_topic(d, a).total_cmp(&self.doc_topic(d, b)))
            .unwrap_or(0)
    }

    // --- full decode (cold path) ---

    /// Fully decodes the artifact into an owned [`Snapshot`] — the only
    /// place the cold section is read. Used by tooling and tests; the
    /// serve hot path never calls this.
    pub fn to_snapshot(&self) -> Result<Snapshot, SnapshotError> {
        let cold_bytes =
            &self.map.bytes()[self.layout.cold_off..self.layout.cold_off + self.layout.cold_len];
        let mut r = ByteReader::new(cold_bytes);

        // Hierarchy extras.
        let n_hier_types = r.get_len(8)?;
        let mut type_names = Vec::with_capacity(n_hier_types);
        for _ in 0..n_hier_types {
            type_names.push(r.get_str()?);
        }
        let n_cold_topics = r.get_len(8)?;
        if n_cold_topics != self.layout.n_topics {
            return Err(SnapshotError::Malformed {
                offset: self.layout.cold_off + r.position(),
                what: format!(
                    "cold section has {n_cold_topics} topics but the topics section has {}",
                    self.layout.n_topics
                ),
            });
        }
        let mut topics = Vec::with_capacity(n_cold_topics);
        for t in 0..n_cold_topics {
            let n_phi = r.get_len(8)?;
            let mut phi = Vec::with_capacity(n_phi);
            for _ in 0..n_phi {
                phi.push(r.get_f64_seq()?);
            }
            let network = snapshot::decode_network(&mut r)?;
            topics.push(HierTopic {
                parent: self.parent(t),
                children: self.children(t).iter().map(|&c| c as usize).collect(),
                level: self.level(t),
                path: self.path(t).to_string(),
                phi,
                rho: self.rho(t),
                network,
            });
        }
        let n_fits = r.get_len(1)?;
        let mut fits = Vec::with_capacity(n_fits);
        for _ in 0..n_fits {
            fits.push(r.get_option(snapshot::decode_fit)?);
        }
        let n_alphas = r.get_len(1)?;
        let mut alphas = Vec::with_capacity(n_alphas);
        for _ in 0..n_alphas {
            alphas.push(r.get_option(|r| r.get_f64_seq())?);
        }
        let hierarchy = TopicHierarchy { type_names, topics, fits, alphas };

        // Corpus: hot arenas + cold per-doc extras.
        let mut corpus = Corpus::new();
        for w in 0..crate::wire_u32(self.layout.n_words, "vocab size")? {
            corpus.vocab.intern(self.word_or_unk(w));
        }
        for t in 0..self.layout.n_types {
            let (a, b) = self.span(self.layout.type_bounds, t);
            let ty = corpus.entities.add_type(self.type_name(t).unwrap_or(""));
            for id in 0..crate::wire_u32(b - a, "entity count")? {
                corpus.entities.intern(ty, self.entity_name(t, id)).map_err(|e| {
                    SnapshotError::Malformed {
                        offset: self.layout.cold_off,
                        what: format!("entity intern failed: {e}"),
                    }
                })?;
            }
        }
        let n_cold_docs = r.get_len(1)?;
        if n_cold_docs != self.layout.n_docs {
            return Err(SnapshotError::Malformed {
                offset: self.layout.cold_off + r.position(),
                what: format!(
                    "cold section has {n_cold_docs} docs but the docs section has {}",
                    self.layout.n_docs
                ),
            });
        }
        for d in 0..n_cold_docs {
            let n_links = r.get_len(8)?;
            let mut entities = Vec::with_capacity(n_links);
            for _ in 0..n_links {
                let at = r.position();
                let etype = r.get_u32()? as usize;
                let id = r.get_u32()?;
                if etype >= self.layout.n_types {
                    return Err(SnapshotError::Malformed {
                        offset: self.layout.cold_off + at,
                        what: format!(
                            "entity type {etype} out of range ({} types)",
                            self.layout.n_types
                        ),
                    });
                }
                entities.push(EntityRef::new(etype, id));
            }
            let label = r.get_option(|r| r.get_u32())?;
            let year = r.get_option(|r| r.get_i32())?;
            corpus.docs.push(Doc { tokens: self.doc_tokens(d).to_vec(), entities, label, year });
        }

        // Segments.
        let n_seg_docs = r.get_len(8)?;
        let mut segments = Vec::with_capacity(n_seg_docs);
        for _ in 0..n_seg_docs {
            let n = r.get_len(8)?;
            let mut doc_segs = Vec::with_capacity(n);
            for _ in 0..n {
                doc_segs.push(r.get_u32_seq()?);
            }
            segments.push(doc_segs);
        }

        // Hot structure arrays back into owned form.
        let topic_phrases = (0..self.layout.n_topics)
            .map(|t| {
                (0..self.phrase_count(t))
                    .map(|i| {
                        let (tokens, score, topic_freq) = self.phrase(t, i);
                        lesm_phrases::TopicalPhrase { tokens: tokens.to_vec(), score, topic_freq }
                    })
                    .collect()
            })
            .collect();
        let topic_entities = (0..self.layout.n_topics)
            .map(|t| {
                (0..self.entity_cells(t))
                    .map(|x| {
                        let (ids, scores) = self.topic_entities(t, x);
                        ids.iter().copied().zip(scores.iter().copied()).collect()
                    })
                    .collect()
            })
            .collect();
        let phrase_topic_freq = (0..self.layout.n_topics)
            .map(|t| {
                let mut table = HashMap::with_capacity(self.ptf_count(t));
                for i in 0..self.ptf_count(t) {
                    let (tokens, freq) = self.ptf_entry(t, i);
                    table.insert(tokens.to_vec(), freq);
                }
                table
            })
            .collect();
        let doc_topic =
            (0..self.layout.n_docs).map(|d| self.doc_topic_row(d).to_vec()).collect();

        Ok(Snapshot {
            corpus,
            mined: MinedStructure {
                hierarchy,
                topic_phrases,
                topic_entities,
                phrase_topic_freq,
                segments,
                doc_topic,
            },
        })
    }
}

fn parse_section_table(map: &Mapping, body_len: usize) -> Result<Vec<SectionInfo>, SnapshotError> {
    let bytes = map.bytes();
    let count = u32::from_le_bytes([bytes[8], bytes[9], bytes[10], bytes[11]]) as usize;
    let table_end = HEADER_LEN.saturating_add(count.saturating_mul(TABLE_ENTRY_LEN));
    if table_end > body_len {
        return Err(SnapshotError::Malformed {
            offset: 8,
            what: format!("section table ({count} entries) extends past the body"),
        });
    }
    let mut sections = Vec::with_capacity(count);
    for i in 0..count {
        let at = HEADER_LEN + i * TABLE_ENTRY_LEN;
        let id = u32::from_le_bytes([bytes[at], bytes[at + 1], bytes[at + 2], bytes[at + 3]]);
        let mut w = [0u8; 8];
        w.copy_from_slice(&bytes[at + 8..at + 16]);
        let off = u64::from_le_bytes(w);
        w.copy_from_slice(&bytes[at + 16..at + 24]);
        let len = u64::from_le_bytes(w);
        let off_us = usize::try_from(off).map_err(|_| SnapshotError::Malformed {
            offset: at,
            what: format!("section {id} offset overflows usize"),
        })?;
        let len_us = usize::try_from(len).map_err(|_| SnapshotError::Malformed {
            offset: at,
            what: format!("section {id} length overflows usize"),
        })?;
        if !off_us.is_multiple_of(SECTION_ALIGN) {
            return Err(SnapshotError::Malformed {
                offset: at,
                what: format!("section {id} offset {off} is not {SECTION_ALIGN}-byte aligned"),
            });
        }
        let end = off_us.saturating_add(len_us);
        if end > body_len {
            return Err(SnapshotError::Malformed {
                offset: at,
                what: format!("section {id} extends past the artifact body"),
            });
        }
        sections.push(SectionInfo { id, offset: off, len });
    }
    Ok(sections)
}

fn parse_vocab(
    map: &Mapping,
    (off, len): (usize, usize),
    layout: &mut Layout,
) -> Result<(), SnapshotError> {
    let mut c = Cursor::new(map, off, len);
    let n = c.count("vocab")?;
    let offsets = c.array(n + 1, 8, 8, "vocab name offsets")?;
    let arena_len = check_bounds(map, offsets, "vocab name")?;
    let names = c.array(arena_len, 1, 1, "vocab name arena")?;
    check_utf8(map, offsets, names, "vocab name")?;
    let sorted = c.array(n, 4, 4, "vocab sorted ids")?;
    // The sorted array must be a permutation of 0..n in nondecreasing
    // name order for binary-search lookups to be correct.
    let sorted_view = map.view_u32(sorted.off, sorted.count);
    let mut seen = vec![false; n];
    for &id in sorted_view {
        match seen.get_mut(id as usize) {
            Some(s) if !*s => *s = true,
            _ => {
                return Err(SnapshotError::Malformed {
                    offset: sorted.off,
                    what: format!("vocab sorted ids are not a permutation (id {id})"),
                })
            }
        }
    }
    let offs = map.view_u64(offsets.off, offsets.count);
    let arena = &map.bytes()[names.off..names.off + names.count];
    let name_of = |id: u32| &arena[offs[id as usize] as usize..offs[id as usize + 1] as usize];
    for w in sorted_view.windows(2) {
        if name_of(w[0]) > name_of(w[1]) {
            return Err(SnapshotError::Malformed {
                offset: sorted.off,
                what: "vocab sorted ids are not in name order".into(),
            });
        }
    }
    layout.n_words = n;
    layout.word_name_offsets = offsets;
    layout.word_names = names;
    layout.word_sorted = sorted;
    Ok(())
}

fn parse_entities(
    map: &Mapping,
    (off, len): (usize, usize),
    layout: &mut Layout,
) -> Result<(), SnapshotError> {
    let mut c = Cursor::new(map, off, len);
    let nt = c.count("entity types")?;
    let type_name_offsets = c.array(nt + 1, 8, 8, "entity type name offsets")?;
    let tn_len = check_bounds(map, type_name_offsets, "entity type name")?;
    let type_names = c.array(tn_len, 1, 1, "entity type name arena")?;
    check_utf8(map, type_name_offsets, type_names, "entity type name")?;
    let type_bounds = c.array(nt + 1, 8, 8, "entity type bounds")?;
    let n_entities = check_bounds(map, type_bounds, "entity type")?;
    let ent_name_offsets = c.array(n_entities + 1, 8, 8, "entity name offsets")?;
    let en_len = check_bounds(map, ent_name_offsets, "entity name")?;
    let ent_names = c.array(en_len, 1, 1, "entity name arena")?;
    check_utf8(map, ent_name_offsets, ent_names, "entity name")?;
    layout.n_types = nt;
    layout.type_name_offsets = type_name_offsets;
    layout.type_names = type_names;
    layout.type_bounds = type_bounds;
    layout.ent_name_offsets = ent_name_offsets;
    layout.ent_names = ent_names;
    Ok(())
}

fn parse_docs(
    map: &Mapping,
    (off, len): (usize, usize),
    layout: &mut Layout,
) -> Result<(), SnapshotError> {
    let mut c = Cursor::new(map, off, len);
    let n = c.count("docs")?;
    let tok_bounds = c.array(n + 1, 8, 8, "doc token bounds")?;
    let n_tokens = check_bounds(map, tok_bounds, "doc token")?;
    let tokens = c.array(n_tokens, 4, 4, "doc tokens")?;
    layout.n_docs = n;
    layout.doc_tok_bounds = tok_bounds;
    layout.doc_tokens = tokens;
    Ok(())
}

fn parse_topics(
    map: &Mapping,
    (off, len): (usize, usize),
    layout: &mut Layout,
) -> Result<(), SnapshotError> {
    let mut c = Cursor::new(map, off, len);
    let n = c.count("topics")?;
    let parent = c.array(n, 8, 8, "topic parents")?;
    let level = c.array(n, 8, 8, "topic levels")?;
    let rho = c.array(n, 8, 8, "topic rho")?;
    let child_bounds = c.array(n + 1, 8, 8, "topic child bounds")?;
    let n_children = check_bounds(map, child_bounds, "topic child")?;
    let children = c.array(n_children, 8, 8, "topic children")?;
    let path_offsets = c.array(n + 1, 8, 8, "topic path offsets")?;
    let p_len = check_bounds(map, path_offsets, "topic path")?;
    let paths = c.array(p_len, 1, 1, "topic path arena")?;
    check_utf8(map, path_offsets, paths, "topic path")?;
    layout.n_topics = n;
    layout.parent = parent;
    layout.level = level;
    layout.rho = rho;
    layout.child_bounds = child_bounds;
    layout.children = children;
    layout.path_offsets = path_offsets;
    layout.paths = paths;
    Ok(())
}

fn parse_phrases(
    map: &Mapping,
    (off, len): (usize, usize),
    layout: &mut Layout,
) -> Result<(), SnapshotError> {
    let mut c = Cursor::new(map, off, len);
    let n = c.count("phrase topics")?;
    if n != layout.n_topics {
        return Err(SnapshotError::Malformed {
            offset: off,
            what: format!("phrases section has {n} topics, topics section {}", layout.n_topics),
        });
    }
    let topic_bounds = c.array(n + 1, 8, 8, "phrase topic bounds")?;
    let n_phrases = check_bounds(map, topic_bounds, "phrase")?;
    let tok_bounds = c.array(n_phrases + 1, 8, 8, "phrase token bounds")?;
    let n_tokens = check_bounds(map, tok_bounds, "phrase token")?;
    let tokens = c.array(n_tokens, 4, 4, "phrase tokens")?;
    let scores = c.array(n_phrases, 8, 8, "phrase scores")?;
    let freqs = c.array(n_phrases, 8, 8, "phrase freqs")?;
    layout.phrase_topic_bounds = topic_bounds;
    layout.phrase_tok_bounds = tok_bounds;
    layout.phrase_tokens = tokens;
    layout.phrase_scores = scores;
    layout.phrase_freqs = freqs;
    Ok(())
}

fn parse_topic_entities(
    map: &Mapping,
    (off, len): (usize, usize),
    layout: &mut Layout,
) -> Result<(), SnapshotError> {
    let mut c = Cursor::new(map, off, len);
    let n = c.count("topic-entity topics")?;
    if n != layout.n_topics {
        return Err(SnapshotError::Malformed {
            offset: off,
            what: format!(
                "topic-entities section has {n} topics, topics section {}",
                layout.n_topics
            ),
        });
    }
    let cell_bounds = c.array(n + 1, 8, 8, "topic-entity cell bounds")?;
    let n_cells = check_bounds(map, cell_bounds, "topic-entity cell")?;
    let entry_bounds = c.array(n_cells + 1, 8, 8, "topic-entity entry bounds")?;
    let n_entries = check_bounds(map, entry_bounds, "topic-entity entry")?;
    let ids = c.array(n_entries, 4, 4, "topic-entity ids")?;
    let scores = c.array(n_entries, 8, 8, "topic-entity scores")?;
    layout.te_cell_bounds = cell_bounds;
    layout.te_entry_bounds = entry_bounds;
    layout.te_ids = ids;
    layout.te_scores = scores;
    Ok(())
}

fn parse_ptf(
    map: &Mapping,
    (off, len): (usize, usize),
    layout: &mut Layout,
) -> Result<(), SnapshotError> {
    let mut c = Cursor::new(map, off, len);
    let n = c.count("phrase-freq topics")?;
    if n != layout.n_topics {
        return Err(SnapshotError::Malformed {
            offset: off,
            what: format!(
                "phrase-topic-freq section has {n} topics, topics section {}",
                layout.n_topics
            ),
        });
    }
    let topic_bounds = c.array(n + 1, 8, 8, "phrase-freq topic bounds")?;
    let n_entries = check_bounds(map, topic_bounds, "phrase-freq entry")?;
    let tok_bounds = c.array(n_entries + 1, 8, 8, "phrase-freq token bounds")?;
    let n_tokens = check_bounds(map, tok_bounds, "phrase-freq token")?;
    let tokens = c.array(n_tokens, 4, 4, "phrase-freq tokens")?;
    let freqs = c.array(n_entries, 8, 8, "phrase-freq freqs")?;
    // Entries must be in strictly ascending phrase-key order within each
    // topic: the query path sums them in stored order and must match the
    // owned collect-then-sort order bit for bit.
    let tb = map.view_u64(topic_bounds.off, topic_bounds.count);
    let eb = map.view_u64(tok_bounds.off, tok_bounds.count);
    let toks = map.view_u32(tokens.off, tokens.count);
    for t in 0..n {
        for e in tb[t] as usize..(tb[t + 1] as usize).saturating_sub(1) {
            let a = &toks[eb[e] as usize..eb[e + 1] as usize];
            let b = &toks[eb[e + 1] as usize..eb[e + 2] as usize];
            if a >= b {
                return Err(SnapshotError::Malformed {
                    offset: tokens.off,
                    what: format!("phrase-freq entries of topic {t} are not sorted"),
                });
            }
        }
    }
    layout.ptf_topic_bounds = topic_bounds;
    layout.ptf_tok_bounds = tok_bounds;
    layout.ptf_tokens = tokens;
    layout.ptf_freqs = freqs;
    Ok(())
}

fn parse_doc_topic(
    map: &Mapping,
    (off, len): (usize, usize),
    layout: &mut Layout,
) -> Result<(), SnapshotError> {
    let mut c = Cursor::new(map, off, len);
    let n = c.count("doc-topic rows")?;
    if n != layout.n_docs {
        return Err(SnapshotError::Malformed {
            offset: off,
            what: format!("doc-topic section has {n} rows, docs section {}", layout.n_docs),
        });
    }
    let row_bounds = c.array(n + 1, 8, 8, "doc-topic row bounds")?;
    let n_values = check_bounds(map, row_bounds, "doc-topic value")?;
    let values = c.array(n_values, 8, 8, "doc-topic values")?;
    layout.dt_row_bounds = row_bounds;
    layout.dt_values = values;
    Ok(())
}

fn parse_doc_ids(
    map: &Mapping,
    (off, len): (usize, usize),
    layout: &mut Layout,
) -> Result<(), SnapshotError> {
    let mut c = Cursor::new(map, off, len);
    let n = c.count("doc ids")?;
    if n != layout.n_docs {
        return Err(SnapshotError::Malformed {
            offset: off,
            what: format!("doc-ids section has {n} entries, docs section {}", layout.n_docs),
        });
    }
    layout.doc_ids = c.array(n, 8, 8, "doc ids")?;
    Ok(())
}

/// Decodes and validates the optional delta-lineage section. Runs after
/// every mandatory section so the base ranges can be checked against the
/// artifact's own (superset) ranges.
fn parse_delta(
    map: &Mapping,
    (off, len): (usize, usize),
    layout: &Layout,
) -> Result<DeltaInfo, SnapshotError> {
    let mut c = Cursor::new(map, off, len);
    let base_docs = c.u64()?;
    let base_words = c.u64()?;
    let chain_depth = c.u64()?;
    if chain_depth == 0 {
        return Err(SnapshotError::Malformed {
            offset: off,
            what: "delta lineage chain depth is 0".to_string(),
        });
    }
    if base_docs > layout.n_docs as u64 || base_words > layout.n_words as u64 {
        return Err(SnapshotError::Malformed {
            offset: off,
            what: format!(
                "delta lineage base ranges ({base_docs} docs, {base_words} words) exceed \
                 the artifact's ({} docs, {} words)",
                layout.n_docs, layout.n_words
            ),
        });
    }
    let nt = c.count("delta lineage entity types")?;
    if nt != layout.n_types {
        return Err(SnapshotError::Malformed {
            offset: off,
            what: format!(
                "delta lineage has {nt} entity types, entities section {}",
                layout.n_types
            ),
        });
    }
    let counts = c.array(nt, 8, 8, "delta lineage entity counts")?;
    let base_entities: Vec<u64> = map.view_u64(counts.off, counts.count).to_vec();
    let type_bounds = map.view_u64(layout.type_bounds.off, layout.type_bounds.count);
    for (t, &have) in base_entities.iter().enumerate() {
        let total = type_bounds[t + 1] - type_bounds[t];
        if have > total {
            return Err(SnapshotError::Malformed {
                offset: counts.off,
                what: format!(
                    "delta lineage base entity count {have} for type {t} exceeds the \
                     artifact's {total}"
                ),
            });
        }
    }
    let name_len = c.count("delta lineage base name")?;
    let name_ref = c.array(name_len, 1, 1, "delta lineage base name")?;
    let name_bytes = &map.bytes()[name_ref.off..name_ref.off + name_ref.count];
    let base_artifact = std::str::from_utf8(name_bytes)
        .map_err(|_| SnapshotError::Malformed {
            offset: name_ref.off,
            what: "delta lineage base name is not valid UTF-8".to_string(),
        })?
        .to_string();
    Ok(DeltaInfo { base_artifact, base_docs, base_words, base_entities, chain_depth })
}

// ---------------------------------------------------------------------------
// Version sniffing and inspection
// ---------------------------------------------------------------------------

/// Reads the format version of the artifact at `path` without loading it.
pub fn snapshot_version_file(path: &str) -> Result<u32, SnapshotError> {
    use std::io::Read as _;
    let mut f = std::fs::File::open(path).map_err(SnapshotError::Io)?;
    let mut head = [0u8; 8];
    f.read_exact(&mut head).map_err(SnapshotError::Io)?;
    let found = [head[0], head[1], head[2], head[3]];
    if found != MAGIC {
        return Err(SnapshotError::BadMagic { found });
    }
    Ok(u32::from_le_bytes([head[4], head[5], head[6], head[7]]))
}

/// Renders a deterministic human-readable description of a v1 or v2
/// artifact: format version, size, checksum status, and the section
/// table with offsets, lengths, and offset alignment.
pub fn describe_artifact(bytes: &[u8]) -> Result<String, SnapshotError> {
    use std::fmt::Write as _;
    if bytes.len() < 8 {
        return Err(SnapshotError::Truncated { offset: 0, needed: 8, available: bytes.len() });
    }
    let found = [bytes[0], bytes[1], bytes[2], bytes[3]];
    if found != MAGIC {
        return Err(SnapshotError::BadMagic { found });
    }
    let version = u32::from_le_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]);
    let mut out = String::new();
    let _ = writeln!(out, "format version: {version}");
    let _ = writeln!(out, "size: {} bytes", bytes.len());
    if bytes.len() < 16 {
        let _ = writeln!(out, "checksum: <artifact too short>");
        return Ok(out);
    }
    let trailer_at = bytes.len() - 8;
    let mut w = [0u8; 8];
    w.copy_from_slice(&bytes[trailer_at..]);
    let stored = u64::from_le_bytes(w);
    let checksum_ok = match version {
        1 => snapshot::fnv1a64(&bytes[..trailer_at]) == stored,
        FORMAT_VERSION_V2 => {
            trailer_at.is_multiple_of(8)
                && checksum_words(
                    &bytes[..trailer_at]
                        .chunks_exact(8)
                        .map(|c| {
                            u64::from_le_bytes([c[0], c[1], c[2], c[3], c[4], c[5], c[6], c[7]])
                        })
                        .collect::<Vec<u64>>(),
                ) == stored
        }
        other => {
            return Err(SnapshotError::VersionMismatch {
                found: other,
                supported: FORMAT_VERSION_V2,
            })
        }
    };
    let _ = writeln!(
        out,
        "checksum: {stored:#018x} ({})",
        if checksum_ok { "ok" } else { "MISMATCH" }
    );
    // Section table: v1 is (id u32, off u64, len u64) after an 8+4 byte
    // header; v2 adds a reserved pad word per entry and to the header.
    let (table_at, entry_len) = if version == 1 { (12, 20) } else { (HEADER_LEN, TABLE_ENTRY_LEN) };
    let count = u32::from_le_bytes([bytes[8], bytes[9], bytes[10], bytes[11]]) as usize;
    let _ = writeln!(out, "sections: {count}");
    let _ = writeln!(out, "  {:>3}  {:<18} {:>12} {:>12} {:>6}", "id", "name", "offset", "length", "align");
    for i in 0..count {
        let at = table_at + i * entry_len;
        if at + entry_len > trailer_at {
            let _ = writeln!(out, "  <table truncated at entry {i}>");
            break;
        }
        let id = u32::from_le_bytes([bytes[at], bytes[at + 1], bytes[at + 2], bytes[at + 3]]);
        let field_at = if version == 1 { at + 4 } else { at + 8 };
        w.copy_from_slice(&bytes[field_at..field_at + 8]);
        let off = u64::from_le_bytes(w);
        w.copy_from_slice(&bytes[field_at + 8..field_at + 16]);
        let len = u64::from_le_bytes(w);
        let name = if version == 1 {
            match id {
                1 => "corpus",
                2 => "structure",
                _ => "unknown",
            }
        } else {
            v2_section_name(id)
        };
        let align = if off == 0 { 1 } else { 1u64 << off.trailing_zeros().min(6) };
        let _ = writeln!(out, "  {id:>3}  {name:<18} {off:>12} {len:>12} {align:>6}");
    }
    Ok(out)
}

/// Renders [`describe_artifact`] for the file at `path`, prefixed with
/// the file name.
pub fn describe_artifact_file(path: &str) -> Result<String, SnapshotError> {
    let bytes = std::fs::read(path).map_err(SnapshotError::Io)?;
    Ok(format!("file: {path}\n{}", describe_artifact(&bytes)?))
}
