//! The threaded query server.
//!
//! Architecture (DESIGN.md §9): one acceptor thread plus a fixed pool of
//! `workers` handler threads. The acceptor pushes accepted connections
//! into an `std::sync::mpsc` channel; workers pull from the shared
//! receiver (briefly locking it, Rust-book style), parse the request,
//! consult the sharded LRU response cache, and run the query against the
//! immutable snapshot. Handlers are pure functions of the snapshot, so
//! responses are byte-identical to offline CLI output for any worker
//! count.
//!
//! Robustness: per-connection read/write timeouts (a slow client costs a
//! worker at most `read_timeout + write_timeout`), request-head size
//! caps, and graceful shutdown via [`ServerHandle::shutdown`] or an
//! operator-touched signal file polled by the acceptor.

use crate::cache::ShardedLruCache;
use crate::http::{parse_request, HttpParseError, Request, Response};
use crate::metrics::{Endpoint, Metrics};
use crate::snapshot::Snapshot;
use crate::ServeError;
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:8080` (`:0` for an ephemeral port).
    pub addr: String,
    /// Fixed worker-thread count (≥ 1).
    pub workers: usize,
    /// Response-cache capacity in entries (`0` disables caching).
    pub cache_capacity: usize,
    /// Number of cache lock shards.
    pub cache_shards: usize,
    /// Per-connection read timeout.
    pub read_timeout: Duration,
    /// Per-connection write timeout.
    pub write_timeout: Duration,
    /// When set, the acceptor polls for this file and shuts down
    /// gracefully once it exists (operator signal without in-process
    /// coordination).
    pub shutdown_file: Option<PathBuf>,
    /// Top-N used by `/search`, `/topics/{id}` and `/hierarchy` rendering
    /// (matches the CLI's fixed 10 so responses are byte-identical).
    pub top_n: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".into(),
            workers: 4,
            cache_capacity: 1024,
            cache_shards: 8,
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
            shutdown_file: None,
            top_n: 10,
        }
    }
}

struct ServerState {
    snapshot: Snapshot,
    cache: ShardedLruCache<Response>,
    metrics: Metrics,
    top_n: usize,
}

/// The query server. Construct with [`Server::start`]; the returned
/// [`ServerHandle`] owns the threads.
pub struct Server;

impl Server {
    /// Binds `config.addr` and spawns the acceptor and worker threads.
    pub fn start(snapshot: Snapshot, config: ServerConfig) -> Result<ServerHandle, ServeError> {
        if config.workers == 0 {
            return Err(ServeError::InvalidConfig("workers must be >= 1".into()));
        }
        let listener = TcpListener::bind(&config.addr).map_err(ServeError::Io)?;
        let addr = listener.local_addr().map_err(ServeError::Io)?;

        let state = Arc::new(ServerState {
            snapshot,
            cache: ShardedLruCache::new(config.cache_capacity, config.cache_shards),
            metrics: Metrics::new(),
            top_n: config.top_n,
        });
        let stop = Arc::new(AtomicBool::new(false));
        let (tx, rx) = channel::<TcpStream>();
        let rx = Arc::new(Mutex::new(rx));

        let mut threads = Vec::with_capacity(config.workers + 1);
        for _ in 0..config.workers {
            let rx = Arc::clone(&rx);
            let state = Arc::clone(&state);
            let cfg = config.clone();
            threads.push(std::thread::spawn(move || worker_loop(&rx, &state, &cfg)));
        }
        // The acceptor blocks in `accept()` (no polling, so accepted
        // connections see zero added latency). Shutdown wakes it with a
        // throwaway connection to its own port after setting the flag.
        {
            let stop = Arc::clone(&stop);
            threads.push(std::thread::spawn(move || {
                loop {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            if stop.load(Ordering::SeqCst) {
                                break;
                            }
                            if tx.send(stream).is_err() {
                                break;
                            }
                        }
                        Err(_) => {
                            if stop.load(Ordering::SeqCst) {
                                break;
                            }
                            std::thread::sleep(Duration::from_millis(5));
                        }
                    }
                }
                // Dropping the sender unblocks the workers: they drain any
                // queued connections, then exit on the channel disconnect.
                drop(tx);
            }));
        }
        // Optional operator-signal watcher: polls for the shutdown file
        // and triggers the same stop-and-wake path the handle uses.
        if let Some(path) = config.shutdown_file.clone() {
            let stop = Arc::clone(&stop);
            threads.push(std::thread::spawn(move || loop {
                if stop.load(Ordering::SeqCst) {
                    break;
                }
                if path.exists() {
                    stop.store(true, Ordering::SeqCst);
                    let _ = TcpStream::connect(addr);
                    break;
                }
                std::thread::sleep(Duration::from_millis(50));
            }));
        }
        Ok(ServerHandle { addr, stop, threads, state })
    }
}

fn worker_loop(
    rx: &Arc<Mutex<Receiver<TcpStream>>>,
    state: &Arc<ServerState>,
    config: &ServerConfig,
) {
    loop {
        // Lock only for the duration of the channel wait, not the handling.
        // A poisoned mutex means a sibling worker panicked mid-wait; the
        // receiver itself is still valid, so recover it rather than
        // cascading the panic through the whole pool.
        let received = rx
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .recv_timeout(Duration::from_millis(50));
        match received {
            Ok(stream) => handle_connection(stream, state, config),
            Err(RecvTimeoutError::Timeout) => continue,
            Err(RecvTimeoutError::Disconnected) => break,
        }
    }
}

fn handle_connection(stream: TcpStream, state: &Arc<ServerState>, config: &ServerConfig) {
    // Accepted sockets may inherit the listener's non-blocking mode on
    // some platforms; force blocking-with-timeouts so a slow or silent
    // client costs a worker at most read_timeout + write_timeout.
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_read_timeout(Some(config.read_timeout));
    let _ = stream.set_write_timeout(Some(config.write_timeout));
    // lesm-lint: allow(D3) — wall-clock guards the per-connection timeout; it never reaches a response body
    let started = Instant::now();
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let (endpoint, response) = match parse_request(&mut reader) {
        Ok(req) => route(&req, state),
        Err(HttpParseError::TooLarge) => {
            (Endpoint::Other, Response::error(400, "request head too large"))
        }
        Err(HttpParseError::BadRequestLine(line)) => {
            (Endpoint::Other, Response::error(400, &format!("bad request line: {line}")))
        }
        Err(HttpParseError::Incomplete) => {
            (Endpoint::Other, Response::error(408, "incomplete request"))
        }
    };
    let mut out = stream;
    let _ = response.write_to(&mut out);
    state
        .metrics
        .record_request(endpoint, response.status >= 400, started.elapsed());
}

fn route(req: &Request, state: &Arc<ServerState>) -> (Endpoint, Response) {
    let endpoint = match req.path.as_str() {
        "/search" => Endpoint::Search,
        "/hierarchy" => Endpoint::Hierarchy,
        "/healthz" => Endpoint::Healthz,
        "/metrics" => Endpoint::Metrics,
        p if p.starts_with("/topics/") => Endpoint::Topics,
        _ => Endpoint::Other,
    };
    if req.method != "GET" {
        return (endpoint, Response::error(405, "only GET is supported"));
    }
    match endpoint {
        Endpoint::Healthz => (endpoint, Response::ok("ok\n")),
        Endpoint::Metrics => (endpoint, Response::ok(state.metrics.render())),
        Endpoint::Other => (endpoint, Response::error(404, "no such endpoint")),
        _ => (endpoint, cached(endpoint, req, state)),
    }
}

/// Serves a query endpoint through the response cache. Only successful
/// responses are cached; the key is the full request target, so distinct
/// queries never collide.
fn cached(endpoint: Endpoint, req: &Request, state: &Arc<ServerState>) -> Response {
    let key = req.target();
    if let Some(hit) = state.cache.get(&key) {
        state.metrics.record_cache_hit(endpoint);
        return (*hit).clone();
    }
    state.metrics.record_cache_miss(endpoint);
    let response = match endpoint {
        Endpoint::Search => handle_search(req, state),
        Endpoint::Topics => handle_topic(req, state),
        Endpoint::Hierarchy => handle_hierarchy(state),
        // Non-query endpoints never reach here (route() answers them
        // directly); answer 404 instead of panicking if that ever changes.
        _ => Response::error(404, "no such endpoint"),
    };
    if response.status == 200 {
        state.cache.put(key, Arc::new(response.clone()));
    }
    response
}

fn handle_search(req: &Request, state: &Arc<ServerState>) -> Response {
    let Some(query) = req.query_param("q") else {
        return Response::error(400, "missing query parameter q");
    };
    let top = match req.query_param("top") {
        None => state.top_n,
        Some(raw) => match raw.parse::<usize>() {
            Ok(n) if n > 0 => n,
            _ => return Response::error(400, "top must be a positive integer"),
        },
    };
    let snapshot = &state.snapshot;
    let hits = lesm_core::search::search(&snapshot.corpus, &snapshot.mined, &query, top);
    let lines = lesm_core::search::render_hits(&snapshot.corpus, &snapshot.mined, &hits);
    // Byte-identical to the CLI, which prints one line per hit.
    let mut body = String::new();
    for line in lines {
        body.push_str(&line);
        body.push('\n');
    }
    Response::ok(body)
}

fn handle_topic(req: &Request, state: &Arc<ServerState>) -> Response {
    let raw_id = req.path.strip_prefix("/topics/").unwrap_or("");
    let Ok(id) = raw_id.parse::<usize>() else {
        return Response::error(400, "topic id must be a non-negative integer");
    };
    let snapshot = &state.snapshot;
    if id >= snapshot.mined.hierarchy.len() {
        return Response::error(404, "no such topic");
    }
    let mut body = snapshot.mined.render_topic(&snapshot.corpus, id, state.top_n);
    body.push('\n');
    Response::ok(body)
}

fn handle_hierarchy(state: &Arc<ServerState>) -> Response {
    let snapshot = &state.snapshot;
    Response::json(lesm_core::export::hierarchy_to_json(
        &snapshot.corpus,
        &snapshot.mined,
        state.top_n,
    ))
}

/// Running-server handle: the bound address, the shutdown flag, and the
/// spawned threads.
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    threads: Vec<JoinHandle<()>>,
    state: Arc<ServerState>,
}

impl ServerHandle {
    /// The actually bound socket address (resolves `:0` ephemeral ports).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Server counters (shared with the handler threads).
    pub fn metrics(&self) -> &Metrics {
        &self.state.metrics
    }

    /// Number of responses currently cached.
    pub fn cached_responses(&self) -> usize {
        self.state.cache.len()
    }

    /// Requests a graceful stop and joins every thread: the acceptor
    /// stops accepting, workers drain queued connections, then exit.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Wake the acceptor out of its blocking `accept()`.
        let _ = TcpStream::connect(self.addr);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }

    /// Blocks until the server stops on its own (e.g. via the shutdown
    /// signal file).
    pub fn join(mut self) {
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}
