//! The threaded query server.
//!
//! Architecture (DESIGN.md §9, §13): one acceptor thread plus a fixed
//! pool of `workers` handler threads. The acceptor pushes accepted
//! connections into a **bounded** `std::sync::mpsc::sync_channel`;
//! workers pull from the shared receiver (briefly locking it, Rust-book
//! style), parse the request, consult the sharded LRU response cache, and
//! run the query against the current model. When the queue is full the
//! acceptor sheds the connection with `503 Service Unavailable` instead
//! of letting latency grow without bound — backpressure is explicit and
//! typed, and shed connections are counted in `/metrics`.
//!
//! A server runs one of two backends:
//!
//! * **Local**: an owned v1 [`Snapshot`] or a zero-copy mapped v2
//!   artifact, behind [`Model`]. The model sits in an `RwLock<Arc<..>>`
//!   so a store watcher can hot-swap versions under live traffic: each
//!   request clones the `Arc` once and keeps that model for its whole
//!   lifetime, the swap repoints the lock and clears the response cache.
//! * **Front**: no model; fan-out over the shards of a manifest
//!   ([`crate::front::Front`]), byte-identical to a single server over
//!   the unsharded model.
//!
//! Handlers are pure functions of the model, so responses are
//! byte-identical to offline CLI output for any worker count, cache
//! state, or shard count.

use crate::cache::ShardedLruCache;
use crate::front::Front;
use crate::http::{parse_request, HttpParseError, Request, Response};
use crate::metrics::{Endpoint, Metrics};
use crate::query::Model;
use crate::snapshot::Snapshot;
use crate::ServeError;
use lesm_query::QueryIndex;
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, RecvTimeoutError, TrySendError};
use std::sync::{Arc, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:8080` (`:0` for an ephemeral port).
    pub addr: String,
    /// Fixed worker-thread count (≥ 1).
    pub workers: usize,
    /// Accepted connections queued ahead of the workers before the
    /// acceptor sheds new arrivals with 503 (≥ 1).
    pub queue_depth: usize,
    /// Response-cache capacity in entries (`0` disables caching).
    pub cache_capacity: usize,
    /// Number of cache lock shards.
    pub cache_shards: usize,
    /// Per-connection read timeout.
    pub read_timeout: Duration,
    /// Per-connection write timeout.
    pub write_timeout: Duration,
    /// When set, the acceptor polls for this file and shuts down
    /// gracefully once it exists (operator signal without in-process
    /// coordination).
    pub shutdown_file: Option<PathBuf>,
    /// Top-N used by `/search`, `/topics/{id}` and `/hierarchy` rendering
    /// (matches the CLI's fixed 10 so responses are byte-identical).
    pub top_n: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".into(),
            workers: 4,
            queue_depth: 128,
            cache_capacity: 1024,
            cache_shards: 8,
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
            shutdown_file: None,
            top_n: 10,
        }
    }
}

enum Backend {
    Local(RwLock<Arc<Model>>),
    Front(Front),
}

/// The memoized query-engine state: the canonical parts serialization
/// (served verbatim at `/internal/qparts`) and the index built from the
/// same parts (executed by `POST /query`). Built lazily on first use —
/// local backends extract parts from the model, fronts fan out to every
/// shard's `/internal/qparts` and merge — and invalidated on hot-swap.
struct QueryState {
    parts_text: String,
    index: QueryIndex,
}

struct ServerState {
    backend: Backend,
    cache: ShardedLruCache<Response>,
    metrics: Metrics,
    top_n: usize,
    query: RwLock<Option<Arc<QueryState>>>,
}

impl ServerState {
    /// The model serving this request (local backends only). The `Arc`
    /// clone pins the version for the request's lifetime; a concurrent
    /// hot-swap affects only later requests.
    fn model(&self) -> Option<Arc<Model>> {
        match &self.backend {
            Backend::Local(model) => {
                Some(Arc::clone(&model.read().unwrap_or_else(|p| p.into_inner())))
            }
            Backend::Front(_) => None,
        }
    }

    /// The query state, building and memoizing it on first use. Failures
    /// (front with an unreachable shard, a model that fails to decode)
    /// are returned as the response to send and are *not* memoized, so a
    /// recovered shard serves the next request normally. Two workers
    /// racing the first build both compute the identical state; the last
    /// write wins, which is harmless because the build is deterministic.
    fn query_state(&self) -> Result<Arc<QueryState>, Response> {
        if let Some(qs) = self.query.read().unwrap_or_else(|p| p.into_inner()).as_ref() {
            return Ok(Arc::clone(qs));
        }
        let parts = match &self.backend {
            Backend::Local(_) => {
                let model =
                    self.model().ok_or_else(|| Response::error(404, "no such endpoint"))?;
                model
                    .query_parts()
                    .map_err(|e| Response::error(500, &format!("query index build failed: {e}")))?
            }
            Backend::Front(front) => front.fetch_parts()?,
        };
        let parts_text = parts.to_text();
        let index = QueryIndex::build(parts)
            .map_err(|e| Response::error(500, &format!("query index build failed: {e}")))?;
        let qs = Arc::new(QueryState { parts_text, index });
        *self.query.write().unwrap_or_else(|p| p.into_inner()) = Some(Arc::clone(&qs));
        Ok(qs)
    }
}

/// The query server. Construct with one of the `start_*` methods; the
/// returned [`ServerHandle`] owns the threads.
pub struct Server;

impl Server {
    /// Serves an owned v1 snapshot (the original, still-supported entry
    /// point).
    pub fn start(snapshot: Snapshot, config: ServerConfig) -> Result<ServerHandle, ServeError> {
        Self::start_model(Model::Owned(Box::new(snapshot)), config)
    }

    /// Serves any loaded model (owned v1 or mapped v2).
    pub fn start_model(model: Model, config: ServerConfig) -> Result<ServerHandle, ServeError> {
        Self::start_backend(Backend::Local(RwLock::new(Arc::new(model))), config)
    }

    /// Serves a versioned snapshot store directory with hot-swap: loads
    /// the `CURRENT` version, then polls the pointer and swaps the model
    /// (and clears the response cache) whenever a new version is
    /// published.
    pub fn start_store(dir: &Path, config: ServerConfig) -> Result<ServerHandle, ServeError> {
        let (version, model) = crate::store::load_current(dir)
            .map_err(|e| ServeError::InvalidConfig(format!("store {}: {e}", dir.display())))?;
        let mut handle = Self::start_backend(Backend::Local(RwLock::new(Arc::new(model))), config)?;
        let state = Arc::clone(&handle.state);
        let stop = Arc::clone(&handle.stop);
        let dir = dir.to_path_buf();
        handle.threads.push(std::thread::spawn(move || {
            let mut active = version;
            while !stop.load(Ordering::SeqCst) {
                std::thread::sleep(Duration::from_millis(20));
                let Ok(Some(next)) = crate::store::current_version(&dir) else { continue };
                if next == active {
                    continue;
                }
                // A bad publish must not take down serving: keep the
                // active version until the new artifact loads cleanly.
                match crate::query::load_model_file(&dir.join(&next).to_string_lossy()) {
                    Ok(model) => {
                        if let Backend::Local(slot) = &state.backend {
                            *slot.write().unwrap_or_else(|p| p.into_inner()) = Arc::new(model);
                        }
                        state.cache.clear();
                        // The query index is a pure function of the model:
                        // drop it with the old version.
                        *state.query.write().unwrap_or_else(|p| p.into_inner()) = None;
                        active = next;
                    }
                    Err(_) => continue,
                }
            }
        }));
        Ok(handle)
    }

    /// Starts a front server over already-running shard servers.
    pub fn start_front(
        shards: Vec<String>,
        config: ServerConfig,
    ) -> Result<ServerHandle, ServeError> {
        let front = Front::new(shards, config.read_timeout)?;
        Self::start_backend(Backend::Front(front), config)
    }

    /// Boots a complete sharded deployment from a `manifest.json`: one
    /// local shard server per shard artifact (ephemeral ports, shard
    /// files resolved relative to the manifest), then a front over them
    /// bound at `config.addr`. Shutting down the returned handle shuts
    /// the whole tree down.
    pub fn start_sharded(
        manifest_path: &Path,
        config: ServerConfig,
    ) -> Result<ServerHandle, ServeError> {
        let manifest = crate::shard::load_manifest(manifest_path)?;
        let dir = manifest_path.parent().unwrap_or(Path::new("."));
        let mut children = Vec::with_capacity(manifest.files.len());
        let mut addrs = Vec::with_capacity(manifest.files.len());
        for file in &manifest.files {
            let path = dir.join(file);
            let model = crate::query::load_model_file(&path.to_string_lossy())
                .map_err(|e| ServeError::InvalidConfig(format!("shard {file}: {e}")))?;
            let shard_config = ServerConfig {
                addr: "127.0.0.1:0".into(),
                shutdown_file: None,
                ..config.clone()
            };
            let child = Self::start_model(model, shard_config)?;
            addrs.push(child.addr().to_string());
            children.push(child);
        }
        let mut handle = Self::start_front(addrs, config)?;
        handle.children = children;
        Ok(handle)
    }

    fn start_backend(backend: Backend, config: ServerConfig) -> Result<ServerHandle, ServeError> {
        if config.workers == 0 {
            return Err(ServeError::InvalidConfig("workers must be >= 1".into()));
        }
        if config.queue_depth == 0 {
            return Err(ServeError::InvalidConfig("queue_depth must be >= 1".into()));
        }
        let listener = TcpListener::bind(&config.addr).map_err(ServeError::Io)?;
        let addr = listener.local_addr().map_err(ServeError::Io)?;

        let state = Arc::new(ServerState {
            backend,
            cache: ShardedLruCache::new(config.cache_capacity, config.cache_shards),
            metrics: Metrics::new(),
            top_n: config.top_n,
            query: RwLock::new(None),
        });
        let stop = Arc::new(AtomicBool::new(false));
        let (tx, rx) = sync_channel::<TcpStream>(config.queue_depth);
        let rx = Arc::new(Mutex::new(rx));

        let mut threads = Vec::with_capacity(config.workers + 1);
        for _ in 0..config.workers {
            let rx = Arc::clone(&rx);
            let state = Arc::clone(&state);
            let cfg = config.clone();
            threads.push(std::thread::spawn(move || worker_loop(&rx, &state, &cfg)));
        }
        // The acceptor blocks in `accept()` (no polling, so accepted
        // connections see zero added latency). Shutdown wakes it with a
        // throwaway connection to its own port after setting the flag.
        {
            let stop = Arc::clone(&stop);
            let state = Arc::clone(&state);
            let write_timeout = config.write_timeout;
            threads.push(std::thread::spawn(move || {
                loop {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            if stop.load(Ordering::SeqCst) {
                                break;
                            }
                            match tx.try_send(stream) {
                                Ok(()) => {}
                                // Queue full: shed with a typed 503
                                // instead of queueing unbounded latency.
                                Err(TrySendError::Full(stream)) => {
                                    shed(stream, write_timeout);
                                    state.metrics.record_shed();
                                }
                                Err(TrySendError::Disconnected(_)) => break,
                            }
                        }
                        Err(_) => {
                            if stop.load(Ordering::SeqCst) {
                                break;
                            }
                            std::thread::sleep(Duration::from_millis(5));
                        }
                    }
                }
                // Dropping the sender unblocks the workers: they drain any
                // queued connections, then exit on the channel disconnect.
                drop(tx);
            }));
        }
        // Optional operator-signal watcher: polls for the shutdown file
        // and triggers the same stop-and-wake path the handle uses.
        if let Some(path) = config.shutdown_file.clone() {
            let stop = Arc::clone(&stop);
            threads.push(std::thread::spawn(move || loop {
                if stop.load(Ordering::SeqCst) {
                    break;
                }
                if path.exists() {
                    stop.store(true, Ordering::SeqCst);
                    let _ = TcpStream::connect(addr);
                    break;
                }
                std::thread::sleep(Duration::from_millis(50));
            }));
        }
        Ok(ServerHandle { addr, stop, threads, state, children: Vec::new() })
    }
}

/// Writes the load-shedding 503 straight from the acceptor. The write is
/// one small buffer into a fresh socket's send buffer, so it effectively
/// never blocks; the timeout bounds the pathological case.
fn shed(stream: TcpStream, write_timeout: Duration) {
    let _ = stream.set_write_timeout(Some(write_timeout));
    let mut out = stream;
    let _ = Response::error(503, "server overloaded, retry later").write_to(&mut out);
}

fn worker_loop(
    rx: &Arc<Mutex<Receiver<TcpStream>>>,
    state: &Arc<ServerState>,
    config: &ServerConfig,
) {
    loop {
        // Lock only for the duration of the channel wait, not the handling.
        // A poisoned mutex means a sibling worker panicked mid-wait; the
        // receiver itself is still valid, so recover it rather than
        // cascading the panic through the whole pool.
        let received = rx
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .recv_timeout(Duration::from_millis(50));
        match received {
            Ok(stream) => handle_connection(stream, state, config),
            Err(RecvTimeoutError::Timeout) => continue,
            Err(RecvTimeoutError::Disconnected) => break,
        }
    }
}

fn handle_connection(stream: TcpStream, state: &Arc<ServerState>, config: &ServerConfig) {
    // Accepted sockets may inherit the listener's non-blocking mode on
    // some platforms; force blocking-with-timeouts so a slow or silent
    // client costs a worker at most read_timeout + write_timeout.
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_read_timeout(Some(config.read_timeout));
    let _ = stream.set_write_timeout(Some(config.write_timeout));
    // lesm-lint: allow(D3, D4) — wall-clock guards the per-connection timeout; it never reaches a response body
    let started = Instant::now();
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let (endpoint, response) = match parse_request(&mut reader) {
        Ok(req) => route(&req, state),
        Err(HttpParseError::TooLarge) => {
            (Endpoint::Other, Arc::new(Response::error(400, "request head too large")))
        }
        Err(HttpParseError::BodyTooLarge) => {
            (Endpoint::Other, Arc::new(Response::error(400, "request body too large")))
        }
        Err(HttpParseError::BadContentLength) => {
            (Endpoint::Other, Arc::new(Response::error(400, "bad content-length header")))
        }
        Err(HttpParseError::BadRequestLine(line)) => {
            (Endpoint::Other, Arc::new(Response::error(400, &format!("bad request line: {line}"))))
        }
        Err(HttpParseError::Incomplete) => {
            (Endpoint::Other, Arc::new(Response::error(408, "incomplete request")))
        }
    };
    let mut out = stream;
    let _ = response.write_to(&mut out);
    state
        .metrics
        .record_request(endpoint, response.status >= 400, started.elapsed());
}

fn route(req: &Request, state: &Arc<ServerState>) -> (Endpoint, Arc<Response>) {
    let endpoint = match req.path.as_str() {
        "/search" => Endpoint::Search,
        "/hierarchy" => Endpoint::Hierarchy,
        "/healthz" => Endpoint::Healthz,
        "/metrics" => Endpoint::Metrics,
        "/internal/search" | "/internal/qparts" => Endpoint::Internal,
        "/query" => Endpoint::Query,
        p if p.starts_with("/topics/") => Endpoint::Topics,
        _ => Endpoint::Other,
    };
    // `/query` takes its program in the body, so it is the one POST
    // endpoint; everything else stays GET-only.
    let expected = if endpoint == Endpoint::Query { "POST" } else { "GET" };
    if req.method != expected {
        let message = if endpoint == Endpoint::Query {
            "use POST for /query"
        } else {
            "only GET is supported"
        };
        return (endpoint, Arc::new(Response::error(405, message)));
    }
    match endpoint {
        Endpoint::Healthz => (endpoint, Arc::new(Response::ok("ok\n"))),
        Endpoint::Metrics => (endpoint, Arc::new(Response::ok(state.metrics.render()))),
        Endpoint::Other => (endpoint, Arc::new(Response::error(404, "no such endpoint"))),
        _ => (endpoint, cached(endpoint, req, state)),
    }
}

/// Serves a query endpoint through the response cache. Only successful
/// responses are cached; the key is the full request target — plus the
/// body for `POST /query` — so distinct queries never collide. Hits hand
/// back the cached `Arc` — no byte of the response is copied until it is
/// written to the socket.
fn cached(endpoint: Endpoint, req: &Request, state: &Arc<ServerState>) -> Arc<Response> {
    let key = req.cache_key();
    if let Some(hit) = state.cache.get(&key) {
        state.metrics.record_cache_hit(endpoint);
        return hit;
    }
    state.metrics.record_cache_miss(endpoint);
    let response = Arc::new(compute(endpoint, req, state));
    if response.status == 200 {
        state.cache.put(key, Arc::clone(&response));
    }
    response
}

fn compute(endpoint: Endpoint, req: &Request, state: &Arc<ServerState>) -> Response {
    // The query engine runs the same code path on every backend: a local
    // server indexes its own model, a front indexes the shard-merged
    // parts, and `run_query` over either index is byte-identical to the
    // unsharded answer (DESIGN.md §14).
    match endpoint {
        Endpoint::Query => return handle_query(req, state),
        Endpoint::Internal if req.path == "/internal/qparts" => {
            return match state.query_state() {
                Ok(qs) => Response::ok(qs.parts_text.clone()),
                Err(response) => response,
            };
        }
        _ => {}
    }
    if let Backend::Front(front) = &state.backend {
        return match endpoint {
            Endpoint::Search => front.search(req, state.top_n, false),
            Endpoint::Internal => front.search(req, state.top_n, true),
            Endpoint::Topics | Endpoint::Hierarchy => front.forward(req),
            // Non-query endpoints never reach here (route() answers them
            // directly); answer 404 instead of panicking if that changes.
            _ => Response::error(404, "no such endpoint"),
        };
    }
    let Some(model) = state.model() else {
        return Response::error(404, "no such endpoint");
    };
    match endpoint {
        Endpoint::Search => handle_search(req, &model, state.top_n, false),
        Endpoint::Internal => handle_search(req, &model, state.top_n, true),
        Endpoint::Topics => handle_topic(req, &model, state.top_n),
        Endpoint::Hierarchy => Response::json(model.hierarchy_json(state.top_n)),
        _ => Response::error(404, "no such endpoint"),
    }
}

/// Executes `POST /query`: parse, run, render — all inside
/// `lesm_query::run_query`, which is a pure function of (index, body).
/// Malformed programs and cursors are the client's fault (400, typed
/// message); only an index that cannot be built is a server error.
fn handle_query(req: &Request, state: &Arc<ServerState>) -> Response {
    let qs = match state.query_state() {
        Ok(qs) => qs,
        Err(response) => return response,
    };
    match lesm_query::run_query(&qs.index, &req.body) {
        Ok(body) => Response::json(body),
        Err(e) if e.is_request_error() => Response::error(400, &e.to_string()),
        Err(e) => Response::error(500, &e.to_string()),
    }
}

fn handle_search(req: &Request, model: &Model, default_top: usize, internal: bool) -> Response {
    let Some(query) = req.query_param("q") else {
        return Response::error(400, "missing query parameter q");
    };
    let top = match req.query_param("top") {
        None => default_top,
        Some(raw) => match raw.parse::<usize>() {
            Ok(n) if n > 0 => n,
            _ => return Response::error(400, "top must be a positive integer"),
        },
    };
    let lines = if internal {
        model.internal_search_lines(&query, top)
    } else {
        model.search_lines(&query, top)
    };
    // Byte-identical to the CLI, which prints one line per hit.
    let mut body = String::new();
    for line in lines {
        body.push_str(&line);
        body.push('\n');
    }
    Response::ok(body)
}

fn handle_topic(req: &Request, model: &Model, top_n: usize) -> Response {
    let raw_id = req.path.strip_prefix("/topics/").unwrap_or("");
    let Ok(id) = raw_id.parse::<usize>() else {
        return Response::error(400, "topic id must be a non-negative integer");
    };
    match model.render_topic(id, top_n) {
        Some(mut body) => {
            body.push('\n');
            Response::ok(body)
        }
        None => Response::error(404, "no such topic"),
    }
}

/// Running-server handle: the bound address, the shutdown flag, the
/// spawned threads, and (for sharded deployments) the shard servers.
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    threads: Vec<JoinHandle<()>>,
    state: Arc<ServerState>,
    children: Vec<ServerHandle>,
}

impl ServerHandle {
    /// The actually bound socket address (resolves `:0` ephemeral ports).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Server counters (shared with the handler threads).
    pub fn metrics(&self) -> &Metrics {
        &self.state.metrics
    }

    /// Number of responses currently cached.
    pub fn cached_responses(&self) -> usize {
        self.state.cache.len()
    }

    /// Addresses of the shard servers owned by this handle (sharded
    /// deployments only; empty otherwise).
    pub fn shard_addrs(&self) -> Vec<SocketAddr> {
        self.children.iter().map(ServerHandle::addr).collect()
    }

    /// Requests a graceful stop and joins every thread: the acceptor
    /// stops accepting, workers drain queued connections, then exit.
    /// Shard servers owned by this handle stop after the front.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Wake the acceptor out of its blocking `accept()`.
        let _ = TcpStream::connect(self.addr);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
        for child in self.children.drain(..) {
            child.shutdown();
        }
    }

    /// Blocks until the server stops on its own (e.g. via the shutdown
    /// signal file).
    pub fn join(mut self) {
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
        for child in self.children.drain(..) {
            child.shutdown();
        }
    }
}
