//! The front tier of a sharded deployment.
//!
//! A front server owns no model. It holds the shard address list from a
//! shard manifest and answers the same endpoints a single server does:
//!
//! * `/topics/{id}` and `/hierarchy` depend only on the mined structure,
//!   which sharding replicates to every shard, so any shard gives the
//!   byte-identical answer. The front routes each request target through
//!   a deterministic consistent-hash ring purely to spread load; ring
//!   choice can never change response bytes.
//! * `/search` depends on the documents, which are partitioned. The
//!   front fans out to **every** shard's `/internal/search`, whose lines
//!   carry raw score bits and the global document id ahead of the
//!   rendered text, merges them under the exact total order a single
//!   server sorts with — score (descending, `total_cmp`) then global
//!   document id (ascending) — truncates to `top`, and strips the
//!   prefixes. Because each document lives on exactly one shard and the
//!   order is total, the merged page is byte-identical to the unsharded
//!   answer for any shard count (DESIGN.md §11, §13).
//!
//! * `POST /query` needs the whole document set at once (traversals
//!   cross shard boundaries), so the front instead fetches every shard's
//!   `/internal/qparts` contribution once, merges them into the exact
//!   parts an unsharded server extracts, and runs the same query engine
//!   locally (see `ServerState::query_state`; DESIGN.md §14).
//!
//! Fronts also answer `/internal/search` (returning merged lines *with*
//! prefixes) and `/internal/qparts` (returning the merged parts), so
//! fronts compose over fronts.

use crate::cache::FnvHasher;
use crate::client::{http_get, FetchedResponse};
use crate::http::{Request, Response};
use crate::ServeError;
use std::hash::Hasher;
use std::time::Duration;

/// Virtual nodes per shard on the consistent-hash ring. Enough to spread
/// load within a few percent of even for small shard counts.
const VNODES: usize = 64;

/// Shard fan-out state for a front server.
#[derive(Debug)]
pub struct Front {
    shards: Vec<String>,
    /// Sorted (hash point, shard index) ring.
    ring: Vec<(u64, usize)>,
    timeout: Duration,
}

fn fnv(key: &str) -> u64 {
    let mut h = FnvHasher::default();
    h.write(key.as_bytes());
    // FNV-1a alone avalanches poorly in its last step: keys differing
    // only in trailing digits hash into a narrow band, which starves
    // ring arcs. A 64-bit mix finalizer (MurmurHash3's fmix64) spreads
    // them across the full ring. Still fully deterministic.
    let mut x = h.finish();
    x ^= x >> 33;
    x = x.wrapping_mul(0xff51_afd7_ed55_8ccd);
    x ^= x >> 33;
    x = x.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    x ^= x >> 33;
    x
}

impl Front {
    /// A front over the given shard addresses (e.g. `127.0.0.1:9000`).
    pub fn new(shards: Vec<String>, timeout: Duration) -> Result<Self, ServeError> {
        if shards.is_empty() {
            return Err(ServeError::InvalidConfig("front needs at least one shard".into()));
        }
        let mut ring = Vec::with_capacity(shards.len() * VNODES);
        for (i, addr) in shards.iter().enumerate() {
            for v in 0..VNODES {
                ring.push((fnv(&format!("{addr}#{v}")), i));
            }
        }
        // Ties (equal hash points) resolve by shard index so the ring is
        // a pure function of the address list.
        ring.sort_unstable();
        Ok(Self { shards, ring, timeout })
    }

    /// The shard addresses, in manifest order.
    pub fn shards(&self) -> &[String] {
        &self.shards
    }

    /// Deterministically picks the shard responsible for `key`: the first
    /// ring point at or after `hash(key)`, wrapping around.
    pub fn pick(&self, key: &str) -> &str {
        let h = fnv(key);
        let i = self.ring.partition_point(|&(point, _)| point < h);
        let (_, shard) = self.ring[i % self.ring.len()];
        &self.shards[shard]
    }

    /// Forwards a replicated-structure request (`/topics/*`,
    /// `/hierarchy`) to the ring-picked shard and relays its response.
    pub fn forward(&self, req: &Request) -> Response {
        let target = req.target();
        match http_get(self.pick(&target), &target, self.timeout) {
            Ok(fetched) => relay(fetched),
            Err(e) => Response::error(503, &format!("shard unavailable: {e}")),
        }
    }

    /// Answers `/search` (stripped lines) or `/internal/search` (merged
    /// lines with score-bits/doc-id prefixes intact) by full fan-out.
    pub fn search(&self, req: &Request, default_top: usize, internal: bool) -> Response {
        // Mirror the single-server parameter validation byte for byte.
        if req.query_param("q").is_none() {
            return Response::error(400, "missing query parameter q");
        }
        let top = match req.query_param("top") {
            None => default_top,
            Some(raw) => match raw.parse::<usize>() {
                Ok(n) if n > 0 => n,
                _ => return Response::error(400, "top must be a positive integer"),
            },
        };
        let target = if req.raw_query.is_empty() {
            "/internal/search".to_string()
        } else {
            format!("/internal/search?{}", req.raw_query)
        };
        let mut merged: Vec<(f64, u64, String)> = Vec::new();
        for addr in &self.shards {
            let fetched = match http_get(addr, &target, self.timeout) {
                Ok(f) => f,
                Err(e) => return Response::error(503, &format!("shard unavailable: {e}")),
            };
            if fetched.status != 200 {
                return Response::error(503, &format!("shard {addr} answered {}", fetched.status));
            }
            for line in fetched.text().lines() {
                match parse_internal_line(line) {
                    Some(entry) => merged.push(entry),
                    None => {
                        return Response::error(503, &format!("shard {addr} sent a bad line"));
                    }
                }
            }
        }
        // The exact order `lesm_core::search::search` sorts hits into;
        // (score, doc) pairs are unique across shards, so this order is
        // total and the merge is deterministic.
        merged.sort_by(|a, b| b.0.total_cmp(&a.0).then_with(|| a.1.cmp(&b.1)));
        merged.truncate(top);
        let mut body = String::new();
        for (score, doc, line) in &merged {
            if internal {
                body.push_str(&format!("{:016x} {} {}", score.to_bits(), doc, line));
            } else {
                body.push_str(line);
            }
            body.push('\n');
        }
        Response::ok(body)
    }

    /// Fetches `/internal/qparts` from **every** shard and merges the
    /// contributions into the parts an unsharded server would extract:
    /// replicated metadata from the first shard, document records
    /// re-sorted by global id. Any unreachable or malformed shard aborts
    /// with the 503 to send — a partial index would silently answer
    /// queries wrong, which is worse than failing loudly.
    pub fn fetch_parts(&self) -> Result<lesm_query::IndexParts, Response> {
        let mut parts = Vec::with_capacity(self.shards.len());
        for addr in &self.shards {
            let fetched = http_get(addr, "/internal/qparts", self.timeout)
                .map_err(|e| Response::error(503, &format!("shard unavailable: {e}")))?;
            if fetched.status != 200 {
                return Err(Response::error(
                    503,
                    &format!("shard {addr} answered {}", fetched.status),
                ));
            }
            let p = lesm_query::IndexParts::parse_text(&fetched.text()).map_err(|e| {
                Response::error(503, &format!("shard {addr} sent bad parts: {e}"))
            })?;
            parts.push(p);
        }
        lesm_query::IndexParts::merge(parts)
            .map_err(|e| Response::error(503, &format!("parts merge failed: {e}")))
    }
}

/// Parses one `/internal/search` line: `{score_bits:016x} {doc} {rest}`.
fn parse_internal_line(line: &str) -> Option<(f64, u64, String)> {
    let (bits_hex, rest) = line.split_once(' ')?;
    let (doc_str, rendered) = rest.split_once(' ')?;
    let bits = u64::from_str_radix(bits_hex, 16).ok()?;
    let doc = doc_str.parse().ok()?;
    Some((f64::from_bits(bits), doc, rendered.to_string()))
}

/// Converts a fetched shard response into one the front can serve.
fn relay(fetched: FetchedResponse) -> Response {
    let content_type: &'static str = if fetched.content_type.starts_with("application/json") {
        "application/json"
    } else {
        "text/plain; charset=utf-8"
    };
    Response { status: fetched.status, content_type, body: fetched.body }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_pick_is_deterministic_and_complete() {
        let shards = vec!["a:1".to_string(), "b:2".to_string(), "c:3".to_string()];
        let front = Front::new(shards.clone(), Duration::from_secs(1)).expect("front");
        let mut seen = std::collections::HashSet::new();
        for i in 0..1000 {
            let key = format!("/topics/{i}");
            let picked = front.pick(&key).to_string();
            assert_eq!(picked, front.pick(&key), "pick must be stable");
            seen.insert(picked);
        }
        // With 64 vnodes per shard, 1000 keys must touch every shard.
        assert_eq!(seen.len(), shards.len());
    }

    #[test]
    fn empty_shard_list_is_invalid() {
        assert!(Front::new(Vec::new(), Duration::from_secs(1)).is_err());
    }

    #[test]
    fn internal_lines_round_trip() {
        let line = format!("{:016x} 42 doc    42  score 1.500  topic o/1  text", 1.5f64.to_bits());
        let (score, doc, rest) = parse_internal_line(&line).expect("parse");
        assert_eq!(score, 1.5);
        assert_eq!(doc, 42);
        assert_eq!(rest, "doc    42  score 1.500  topic o/1  text");
        assert!(parse_internal_line("garbage").is_none());
        assert!(parse_internal_line("zz 1 x").is_none());
    }
}
