//! `lesm-serve` — the mine-once / serve-many subsystem (ROADMAP north
//! star: production-scale query serving over mined latent structures).
//!
//! Two layers:
//!
//! 1. **Snapshot store** ([`snapshot`]): a versioned binary artifact
//!    format (`.lesm`) persisting a [`lesm_core::MinedStructure`] plus the
//!    query-time slice of the corpus, with a checksummed, sectioned,
//!    length-prefixed layout and typed load errors. `load(save(m))` is
//!    bit-identical to `m`.
//! 2. **Query server** ([`server`]): a dependency-free `std::net`
//!    HTTP/1.1 server with a fixed worker thread pool over `std::sync::mpsc`
//!    channels, a sharded LRU response cache behind `std::sync::Mutex`
//!    shards (the workspace has no `parking_lot`; the sharding keeps lock
//!    hold times short instead), per-endpoint request/latency/cache
//!    counters at `GET /metrics`, `GET /healthz`, graceful shutdown via an
//!    in-process flag or a signal file, and per-connection read/write
//!    timeouts so a slow client cannot wedge a worker.
//!
//! Serving is deterministic: every endpoint's response is byte-identical
//! to the offline CLI output for the same snapshot, for any worker count.

// DESIGN.md §10: library code must surface typed errors, not unwraps.
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod cache;
pub mod client;
pub mod front;
pub mod http;
pub mod mapping;
pub mod metrics;
pub mod query;
pub mod server;
pub mod shard;
pub mod snapshot;
pub mod store;
pub mod v2;
pub mod wire;

pub use cache::ShardedLruCache;
pub use front::Front;
pub use metrics::Metrics;
pub use query::{load_model_file, Model};
pub use server::{Server, ServerConfig, ServerHandle};
pub use shard::{load_manifest, shard_model, write_shards, ShardBy, ShardManifest};
pub use snapshot::{
    is_snapshot_bytes, is_snapshot_file, load_snapshot, load_snapshot_file, save_snapshot,
    save_snapshot_file, Snapshot, FORMAT_VERSION, MAGIC,
};
pub use v2::{
    describe_artifact, describe_artifact_file, save_snapshot_v2, save_snapshot_v2_file,
    save_snapshot_v2_with_ids, save_snapshot_v2_with_lineage, snapshot_version_file, DeltaInfo,
    MappedSnapshot, FORMAT_VERSION_V2,
};

/// Typed failures loading or saving snapshot artifacts.
#[derive(Debug)]
pub enum SnapshotError {
    /// Underlying file I/O failed.
    Io(std::io::Error),
    /// The artifact does not start with the `LESM` magic.
    BadMagic {
        /// The four bytes actually found.
        found: [u8; 4],
    },
    /// The artifact was written by an incompatible format version.
    VersionMismatch {
        /// Version stored in the artifact.
        found: u32,
        /// Version this build supports.
        supported: u32,
    },
    /// The trailer checksum does not match the artifact contents.
    ChecksumMismatch {
        /// Checksum stored in the trailer.
        expected: u64,
        /// Checksum recomputed over the artifact.
        actual: u64,
    },
    /// The artifact ends before a record completes.
    Truncated {
        /// Byte offset of the failed read.
        offset: usize,
        /// Bytes the read needed.
        needed: usize,
        /// Bytes actually available.
        available: usize,
    },
    /// A structurally invalid record (bad tag, bad UTF-8, inconsistent
    /// lengths, out-of-range references).
    Malformed {
        /// Byte offset of the failed read.
        offset: usize,
        /// Human-readable description.
        what: String,
    },
    /// A count or id exceeds the wire format's 32-bit field — writing
    /// would silently truncate, so the save refuses instead.
    TooLarge {
        /// Which field overflowed.
        what: &'static str,
        /// The offending value.
        value: usize,
    },
}

/// Converts a count/id to the wire's `u32`, refusing values the field
/// cannot hold instead of truncating them.
pub(crate) fn wire_u32(value: usize, what: &'static str) -> Result<u32, SnapshotError> {
    u32::try_from(value).map_err(|_| SnapshotError::TooLarge { what, value })
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot I/O: {e}"),
            SnapshotError::BadMagic { found } => {
                write!(f, "not a snapshot: bad magic {found:?} (expected {:?})", snapshot::MAGIC)
            }
            SnapshotError::VersionMismatch { found, supported } => {
                write!(f, "snapshot format version {found} unsupported (this build reads {supported})")
            }
            SnapshotError::ChecksumMismatch { expected, actual } => write!(
                f,
                "snapshot checksum mismatch: trailer {expected:#018x}, contents {actual:#018x}"
            ),
            SnapshotError::Truncated { offset, needed, available } => write!(
                f,
                "snapshot truncated at byte {offset}: needed {needed} bytes, {available} available"
            ),
            SnapshotError::Malformed { offset, what } => {
                write!(f, "malformed snapshot at byte {offset}: {what}")
            }
            SnapshotError::TooLarge { what, value } => {
                write!(f, "cannot save snapshot: {what} is {value}, over the u32 wire limit")
            }
        }
    }
}

impl std::error::Error for SnapshotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapshotError::Io(e) => Some(e),
            _ => None,
        }
    }
}

/// Failures starting or running the query server.
#[derive(Debug)]
pub enum ServeError {
    /// Binding or configuring the listener socket failed.
    Io(std::io::Error),
    /// Invalid server configuration.
    InvalidConfig(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "server I/O: {e}"),
            ServeError::InvalidConfig(msg) => write!(f, "invalid server config: {msg}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Io(e) => Some(e),
            _ => None,
        }
    }
}
