//! Minimal HTTP/1.1 request parsing and response writing.
//!
//! Hand-rolled over `std::io` in the same spirit as the workspace's
//! vendored stand-ins — the request line and headers are parsed with
//! explicit size caps, bodies are read only up to a hard cap (`POST
//! /query` is the single body-carrying endpoint), and responses always
//! close the connection (`Connection: close`), which keeps the
//! worker-pool accounting trivial.

use std::io::{BufRead, Write};

/// Cap on the request line plus all header lines, in bytes.
const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Cap on the number of header lines.
const MAX_HEADERS: usize = 100;
/// Cap on a request body (`POST /query` payloads), in bytes.
pub const MAX_BODY_BYTES: usize = 64 * 1024;

/// A parsed request head.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// The method verb, e.g. `GET`.
    pub method: String,
    /// Decoded path component, e.g. `/topics/3`.
    pub path: String,
    /// Raw query string (no leading `?`; empty when absent).
    pub raw_query: String,
    /// Request body (empty for bodyless requests; UTF-8, lossy).
    pub body: String,
}

impl Request {
    /// The request target as received (path plus `?query` when present).
    pub fn target(&self) -> String {
        if self.raw_query.is_empty() {
            self.path.clone()
        } else {
            format!("{}?{}", self.path, self.raw_query)
        }
    }

    /// The response-cache key: the target, plus the body for
    /// body-carrying requests so distinct `POST /query` payloads never
    /// collide. Body-carrying keys start `/query\n`, a prefix no
    /// cacheable GET endpoint routes to, so the two key spaces are
    /// disjoint.
    pub fn cache_key(&self) -> String {
        if self.body.is_empty() {
            self.target()
        } else {
            format!("{}\n{}", self.target(), self.body)
        }
    }

    /// Decoded value of query parameter `name`, if present.
    pub fn query_param(&self, name: &str) -> Option<String> {
        self.raw_query.split('&').find_map(|pair| {
            let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
            (percent_decode(k) == name).then(|| percent_decode(v))
        })
    }
}

/// Why a request could not be parsed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HttpParseError {
    /// The peer closed or timed out before a full head arrived.
    Incomplete,
    /// The request line was not `METHOD TARGET HTTP/1.x`.
    BadRequestLine(String),
    /// The head exceeded [`MAX_HEAD_BYTES`] or [`MAX_HEADERS`].
    TooLarge,
    /// A `Content-Length` header did not parse as an integer.
    BadContentLength,
    /// The declared body length exceeded [`MAX_BODY_BYTES`].
    BodyTooLarge,
}

impl std::fmt::Display for HttpParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpParseError::Incomplete => write!(f, "connection closed mid-request"),
            HttpParseError::BadRequestLine(line) => write!(f, "bad request line {line:?}"),
            HttpParseError::TooLarge => write!(f, "request head too large"),
            HttpParseError::BadContentLength => write!(f, "bad content-length header"),
            HttpParseError::BodyTooLarge => write!(f, "request body too large"),
        }
    }
}

/// Decodes `%XX` escapes and `+` (space) in a URL component. Invalid
/// escapes are kept literally; invalid UTF-8 is replaced.
pub fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b'%' => {
                let hex = bytes.get(i + 1..i + 3);
                match hex.and_then(|h| u8::from_str_radix(std::str::from_utf8(h).ok()?, 16).ok()) {
                    Some(b) => {
                        out.push(b);
                        i += 3;
                    }
                    None => {
                        out.push(b'%');
                        i += 1;
                    }
                }
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Reads and parses one request head from `reader`.
pub fn parse_request<R: BufRead>(reader: &mut R) -> Result<Request, HttpParseError> {
    let mut head_bytes = 0usize;
    let mut line = String::new();
    if read_line(reader, &mut line, &mut head_bytes)? == 0 {
        return Err(HttpParseError::Incomplete);
    }
    let request_line = line.trim_end_matches(['\r', '\n']).to_string();
    let mut parts = request_line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) if !m.is_empty() && v.starts_with("HTTP/1.") => {
            (m.to_string(), t.to_string(), v)
        }
        _ => return Err(HttpParseError::BadRequestLine(request_line)),
    };
    let _ = version;
    // Drain headers up to the blank line. Only `Content-Length` is
    // interpreted (it frames the body of `POST /query`); everything else
    // must still be consumed for well-formed clients.
    let mut content_length = 0usize;
    for _ in 0..MAX_HEADERS {
        line.clear();
        if read_line(reader, &mut line, &mut head_bytes)? == 0 {
            return Err(HttpParseError::Incomplete);
        }
        if line == "\r\n" || line == "\n" {
            let body = read_body(reader, content_length)?;
            let (raw_path, raw_query) =
                target.split_once('?').unwrap_or((target.as_str(), ""));
            return Ok(Request {
                method,
                path: percent_decode(raw_path),
                raw_query: raw_query.to_string(),
                body,
            });
        }
        let trimmed = line.trim_end_matches(['\r', '\n']);
        if let Some((name, value)) = trimmed.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length =
                    value.trim().parse().map_err(|_| HttpParseError::BadContentLength)?;
            }
        }
    }
    Err(HttpParseError::TooLarge)
}

/// Reads exactly `content_length` body bytes (lossy UTF-8), enforcing
/// [`MAX_BODY_BYTES`] *before* allocating or reading anything.
fn read_body<R: BufRead>(reader: &mut R, content_length: usize) -> Result<String, HttpParseError> {
    if content_length == 0 {
        return Ok(String::new());
    }
    if content_length > MAX_BODY_BYTES {
        return Err(HttpParseError::BodyTooLarge);
    }
    let mut buf = vec![0u8; content_length];
    reader.read_exact(&mut buf).map_err(|_| HttpParseError::Incomplete)?;
    Ok(String::from_utf8_lossy(&buf).into_owned())
}

fn read_line<R: BufRead>(
    reader: &mut R,
    line: &mut String,
    head_bytes: &mut usize,
) -> Result<usize, HttpParseError> {
    let n = reader.read_line(line).map_err(|_| HttpParseError::Incomplete)?;
    *head_bytes += n;
    if *head_bytes > MAX_HEAD_BYTES {
        return Err(HttpParseError::TooLarge);
    }
    Ok(n)
}

/// A response ready to serialize.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Response body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// A 200 with a `text/plain` body.
    pub fn ok(body: impl Into<Vec<u8>>) -> Self {
        Self { status: 200, content_type: "text/plain; charset=utf-8", body: body.into() }
    }

    /// A 200 with an `application/json` body.
    pub fn json(body: impl Into<Vec<u8>>) -> Self {
        Self { status: 200, content_type: "application/json", body: body.into() }
    }

    /// An error response with a plain-text message body.
    pub fn error(status: u16, message: &str) -> Self {
        Self {
            status,
            content_type: "text/plain; charset=utf-8",
            body: format!("{message}\n").into_bytes(),
        }
    }

    fn reason(&self) -> &'static str {
        match self.status {
            200 => "OK",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            408 => "Request Timeout",
            503 => "Service Unavailable",
            _ => "Internal Server Error",
        }
    }

    /// Serializes status line, headers, and body to `writer`.
    pub fn write_to<W: Write>(&self, writer: &mut W) -> std::io::Result<()> {
        write!(
            writer,
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
            self.status,
            self.reason(),
            self.content_type,
            self.body.len()
        )?;
        writer.write_all(&self.body)?;
        writer.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(raw: &str) -> Result<Request, HttpParseError> {
        parse_request(&mut raw.as_bytes())
    }

    #[test]
    fn parses_request_line_and_query() {
        let req = parse("GET /search?q=query+processing&top=5 HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/search");
        assert_eq!(req.query_param("q").as_deref(), Some("query processing"));
        assert_eq!(req.query_param("top").as_deref(), Some("5"));
        assert_eq!(req.query_param("missing"), None);
        assert_eq!(req.target(), "/search?q=query+processing&top=5");
        assert!(req.body.is_empty());
        assert_eq!(req.cache_key(), req.target());
    }

    #[test]
    fn parses_post_body_by_content_length() {
        let raw = "POST /query HTTP/1.1\r\nHost: x\r\nContent-Length: 9\r\n\r\n{\"a\":[]}\ntrailing ignored";
        let req = parse(raw).unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/query");
        assert_eq!(req.body, "{\"a\":[]}\n");
        assert_eq!(req.cache_key(), "/query\n{\"a\":[]}\n");
    }

    #[test]
    fn body_limits_are_typed() {
        let huge = format!("POST /query HTTP/1.1\r\nContent-Length: {}\r\n\r\n", MAX_BODY_BYTES + 1);
        assert!(matches!(parse(&huge), Err(HttpParseError::BodyTooLarge)));
        assert!(matches!(
            parse("POST /query HTTP/1.1\r\nContent-Length: nope\r\n\r\n"),
            Err(HttpParseError::BadContentLength)
        ));
        // Declared length longer than the stream: incomplete, not a hang.
        assert!(matches!(
            parse("POST /query HTTP/1.1\r\nContent-Length: 50\r\n\r\nshort"),
            Err(HttpParseError::Incomplete)
        ));
    }

    #[test]
    fn percent_decoding() {
        assert_eq!(percent_decode("a%20b%2Fc"), "a b/c");
        assert_eq!(percent_decode("a+b"), "a b");
        assert_eq!(percent_decode("100%"), "100%"); // invalid escape kept
        assert_eq!(percent_decode("%zz"), "%zz");
    }

    #[test]
    fn rejects_malformed_heads() {
        assert!(matches!(parse(""), Err(HttpParseError::Incomplete)));
        assert!(matches!(
            parse("GARBAGE\r\n\r\n"),
            Err(HttpParseError::BadRequestLine(_))
        ));
        assert!(matches!(
            parse("GET /x HTTP/1.1\r\nHost: x\r\n"), // missing blank line
            Err(HttpParseError::Incomplete)
        ));
        let huge = format!("GET /x HTTP/1.1\r\n{}\r\n", "A: b\r\n".repeat(200));
        assert!(matches!(parse(&huge), Err(HttpParseError::TooLarge)));
    }

    #[test]
    fn response_serialization_includes_length_and_close() {
        let mut out = Vec::new();
        Response::ok("body\n").write_to(&mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 5\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.ends_with("\r\n\r\nbody\n"));
        let mut err = Vec::new();
        Response::error(404, "no such topic").write_to(&mut err).unwrap();
        assert!(String::from_utf8(err).unwrap().starts_with("HTTP/1.1 404 Not Found\r\n"));
        let mut shed = Vec::new();
        Response::error(503, "overloaded").write_to(&mut shed).unwrap();
        assert!(String::from_utf8(shed)
            .unwrap()
            .starts_with("HTTP/1.1 503 Service Unavailable\r\n"));
    }
}
