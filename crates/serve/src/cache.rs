//! Sharded LRU response cache.
//!
//! Keys are hashed to one of `N` shards; each shard is an independent
//! LRU behind its own `std::sync::Mutex` (no `parking_lot` in this
//! offline workspace — short critical sections plus sharding fill the
//! same role of keeping contention negligible). Recency is tracked with
//! a monotonically increasing per-shard tick; eviction scans for the
//! minimum tick, which is O(shard capacity) but shards are small and
//! eviction is off the common hit path.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};
use std::sync::{Arc, Mutex};

/// FNV-1a — a few adds and multiplies per byte, no per-hasher random
/// state. Cache keys are short request paths, where this hashes several
/// times faster than `DefaultHasher`'s SipHash; keys come from our own
/// route table, not an attacker, so HashDoS resistance buys nothing
/// here. Used both to pick the shard and inside each shard's map.
#[derive(Default)]
pub struct FnvHasher(u64);

impl Hasher for FnvHasher {
    fn write(&mut self, bytes: &[u8]) {
        let mut h = if self.0 == 0 { 0xcbf2_9ce4_8422_2325 } else { self.0 };
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        self.0 = h;
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

type FnvBuildHasher = BuildHasherDefault<FnvHasher>;

struct Shard<V> {
    map: HashMap<String, (u64, Arc<V>), FnvBuildHasher>,
    tick: u64,
    capacity: usize,
}

impl<V> Shard<V> {
    fn get(&mut self, key: &str) -> Option<Arc<V>> {
        self.tick += 1;
        let tick = self.tick;
        self.map.get_mut(key).map(|slot| {
            slot.0 = tick;
            Arc::clone(&slot.1)
        })
    }

    fn put(&mut self, key: String, value: Arc<V>) {
        self.tick += 1;
        if !self.map.contains_key(&key) && self.map.len() >= self.capacity {
            // Ticks are unique per operation (`get` and `put` both advance
            // the counter first), so the minimum is a single entry and map
            // iteration order cannot change which key gets evicted.
            // lesm-lint: allow(D2) — per-operation ticks are unique; min-by-tick has exactly one winner
            let oldest = self.map.iter().min_by_key(|(_, (tick, _))| *tick).map(|(k, _)| k.clone());
            if let Some(oldest) = oldest {
                self.map.remove(&oldest);
            }
        }
        self.map.insert(key, (self.tick, value));
    }
}

/// A thread-safe string-keyed LRU cache split into lock shards.
///
/// `capacity == 0` disables caching entirely (`get` always misses, `put`
/// is a no-op) — used by benchmarks to measure uncached latency.
pub struct ShardedLruCache<V> {
    shards: Vec<Mutex<Shard<V>>>,
    // Decided once at construction: the hit path must not touch any
    // shard lock other than the key's own. (An earlier revision derived
    // this by locking *every* shard on every get/put, which made cached
    // lookups slower than recomputing the response.)
    disabled: bool,
}

impl<V> ShardedLruCache<V> {
    /// A cache holding at most `capacity` entries across `shards` shards.
    pub fn new(capacity: usize, shards: usize) -> Self {
        let shards = shards.max(1);
        let per_shard = capacity.div_ceil(shards);
        Self {
            shards: (0..shards)
                .map(|_| {
                    Mutex::new(Shard {
                        map: HashMap::default(),
                        tick: 0,
                        capacity: per_shard,
                    })
                })
                .collect(),
            disabled: capacity == 0,
        }
    }

    fn shard(&self, key: &str) -> &Mutex<Shard<V>> {
        let mut h = FnvHasher::default();
        h.write(key.as_bytes());
        &self.shards[(h.finish() as usize) % self.shards.len()]
    }

    // Shard locks recover from poisoning (`into_inner`) instead of
    // panicking: a worker that died holding a shard leaves at worst a
    // stale recency ordering, which only affects which entry gets
    // evicted next — never correctness of cached responses.

    /// Looks up `key`, refreshing its recency on a hit.
    pub fn get(&self, key: &str) -> Option<Arc<V>> {
        if self.disabled {
            return None;
        }
        self.shard(key).lock().unwrap_or_else(|poisoned| poisoned.into_inner()).get(key)
    }

    /// Inserts `key`, evicting the shard's least recently used entry when
    /// the shard is full.
    pub fn put(&self, key: String, value: Arc<V>) {
        if self.disabled {
            return;
        }
        self.shard(&key).lock().unwrap_or_else(|poisoned| poisoned.into_inner()).put(key, value);
    }

    /// Drops every entry (used when a new snapshot version is swapped in
    /// under live traffic — stale responses must not outlive the model
    /// they were computed from).
    pub fn clear(&self) {
        for shard in &self.shards {
            let mut shard = shard.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
            shard.map.clear();
            shard.tick = 0;
        }
    }

    /// Total entries currently cached (for tests and metrics).
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap_or_else(|poisoned| poisoned.into_inner()).map.len())
            .sum()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_after_put_miss_before() {
        let cache: ShardedLruCache<String> = ShardedLruCache::new(8, 2);
        assert!(cache.get("a").is_none());
        cache.put("a".into(), Arc::new("va".into()));
        assert_eq!(cache.get("a").as_deref(), Some(&"va".to_string()));
    }

    #[test]
    fn evicts_least_recently_used_within_a_shard() {
        // One shard so the eviction order is fully observable.
        let cache: ShardedLruCache<u32> = ShardedLruCache::new(2, 1);
        cache.put("a".into(), Arc::new(1));
        cache.put("b".into(), Arc::new(2));
        assert!(cache.get("a").is_some()); // refresh "a"; "b" is now LRU
        cache.put("c".into(), Arc::new(3));
        assert!(cache.get("b").is_none(), "b should have been evicted");
        assert!(cache.get("a").is_some());
        assert!(cache.get("c").is_some());
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let cache: ShardedLruCache<u32> = ShardedLruCache::new(0, 4);
        cache.put("a".into(), Arc::new(1));
        assert!(cache.get("a").is_none());
        assert!(cache.is_empty());
    }

    #[test]
    fn updating_an_existing_key_does_not_evict() {
        let cache: ShardedLruCache<u32> = ShardedLruCache::new(2, 1);
        cache.put("a".into(), Arc::new(1));
        cache.put("b".into(), Arc::new(2));
        cache.put("a".into(), Arc::new(10));
        assert_eq!(cache.get("a").as_deref(), Some(&10));
        assert_eq!(cache.get("b").as_deref(), Some(&2));
    }

    #[test]
    fn clear_empties_every_shard() {
        let cache: ShardedLruCache<u32> = ShardedLruCache::new(32, 4);
        for i in 0..20 {
            cache.put(format!("k{i}"), Arc::new(i));
        }
        assert!(!cache.is_empty());
        cache.clear();
        assert!(cache.is_empty());
        assert!(cache.get("k3").is_none());
        cache.put("k3".into(), Arc::new(99));
        assert_eq!(cache.get("k3").as_deref(), Some(&99));
    }

    #[test]
    fn concurrent_access_is_safe() {
        let cache: Arc<ShardedLruCache<usize>> = Arc::new(ShardedLruCache::new(64, 8));
        std::thread::scope(|scope| {
            for t in 0..4 {
                let cache = Arc::clone(&cache);
                scope.spawn(move || {
                    for i in 0..200 {
                        let key = format!("k{}", (t * 31 + i) % 50);
                        cache.put(key.clone(), Arc::new(i));
                        let _ = cache.get(&key);
                    }
                });
            }
        });
        assert!(cache.len() <= 64);
    }
}
