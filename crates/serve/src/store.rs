//! A versioned snapshot store: the hot-swap substrate.
//!
//! Layout of a store directory:
//!
//! ```text
//! store/
//!   v0001.lesm     # immutable snapshot artifacts, any format version
//!   v0002.lesm
//!   CURRENT        # the file name of the active version, one line
//! ```
//!
//! Publishing writes the artifact under the next version number, then
//! atomically repoints `CURRENT` (write-temp-then-rename, so a reader
//! never observes a partial pointer). A serving process polls `CURRENT`
//! and swaps its in-memory model when the pointer changes; artifacts are
//! never mutated in place, so an in-flight request keeps the model it
//! started with.
//!
//! Crash consistency: the artifact is fsynced before the pointer moves,
//! the tmp pointer is fsynced before the rename, and the store directory
//! is fsynced after it — so a `CURRENT` that survives a crash only ever
//! names a fully durable artifact.

use crate::query::{load_model_file, Model};
use crate::SnapshotError;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// The pointer file name.
pub const CURRENT: &str = "CURRENT";

/// Writes `bytes` to `path` and fsyncs the file before returning, so the
/// contents are durable before any pointer can reference them.
fn write_synced(path: &Path, bytes: &[u8]) -> Result<(), SnapshotError> {
    let mut f = std::fs::File::create(path).map_err(SnapshotError::Io)?;
    f.write_all(bytes).map_err(SnapshotError::Io)?;
    f.sync_all().map_err(SnapshotError::Io)?;
    Ok(())
}

/// Fsyncs the directory itself so a rename inside it is durable.
fn sync_dir(dir: &Path) -> Result<(), SnapshotError> {
    std::fs::File::open(dir).map_err(SnapshotError::Io)?.sync_all().map_err(SnapshotError::Io)
}

/// Publishes `bytes` as the next version in `dir` (creating the store on
/// first use) and repoints `CURRENT` at it. Returns the artifact file
/// name, e.g. `v0003.lesm`.
///
/// Ordering contract: artifact fsync → tmp-pointer fsync → rename →
/// directory fsync. Every prefix of that sequence leaves the store in a
/// state where `CURRENT` (old or new) names a readable artifact.
pub fn publish(dir: &Path, bytes: &[u8]) -> Result<String, SnapshotError> {
    std::fs::create_dir_all(dir).map_err(SnapshotError::Io)?;
    let next = 1 + latest_version(dir)?.unwrap_or(0);
    let name = format!("v{next:04}.lesm");
    write_synced(&dir.join(&name), bytes)?;
    let tmp = dir.join(format!("{CURRENT}.tmp"));
    write_synced(&tmp, format!("{name}\n").as_bytes())?;
    std::fs::rename(&tmp, dir.join(CURRENT)).map_err(SnapshotError::Io)?;
    sync_dir(dir)?;
    Ok(name)
}

/// The file name `CURRENT` points at, if the store has one.
pub fn current_version(dir: &Path) -> Result<Option<String>, SnapshotError> {
    match std::fs::read_to_string(dir.join(CURRENT)) {
        Ok(text) => {
            let name = text.trim().to_string();
            Ok((!name.is_empty()).then_some(name))
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
        Err(e) => Err(SnapshotError::Io(e)),
    }
}

/// Loads the active version. Returns the artifact file name alongside
/// the model so callers can detect staleness later.
pub fn load_current(dir: &Path) -> Result<(String, Model), SnapshotError> {
    let name = current_version(dir)?.ok_or_else(|| {
        SnapshotError::Io(std::io::Error::new(
            std::io::ErrorKind::NotFound,
            format!("store {} has no CURRENT pointer", dir.display()),
        ))
    })?;
    let path: PathBuf = dir.join(&name);
    let model = load_model_file(&path.to_string_lossy())?;
    Ok((name, model))
}

/// Highest version number present in `dir` (`v{N:04}.lesm` files).
fn latest_version(dir: &Path) -> Result<Option<u64>, SnapshotError> {
    let mut max = None;
    for entry in std::fs::read_dir(dir).map_err(SnapshotError::Io)? {
        let entry = entry.map_err(SnapshotError::Io)?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(n) = name.strip_prefix('v').and_then(|s| s.strip_suffix(".lesm")) {
            if let Ok(n) = n.parse::<u64>() {
                max = Some(max.map_or(n, |m: u64| m.max(n)));
            }
        }
    }
    Ok(max)
}

/// Whether `path` looks like a store directory (has a `CURRENT` pointer).
pub fn is_store_dir(path: &Path) -> bool {
    path.is_dir() && path.join(CURRENT).is_file()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("lesm-store-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn publish_assigns_increasing_versions_and_repoints_current() {
        let dir = tmp_dir("seq");
        assert_eq!(current_version(&dir).ok(), Some(None));
        assert!(!is_store_dir(&dir));
        assert_eq!(publish(&dir, b"one").expect("publish"), "v0001.lesm");
        assert_eq!(publish(&dir, b"two").expect("publish"), "v0002.lesm");
        assert!(is_store_dir(&dir));
        assert_eq!(current_version(&dir).expect("read").as_deref(), Some("v0002.lesm"));
        // Old versions remain readable (rollback is re-pointing CURRENT).
        assert_eq!(std::fs::read(dir.join("v0001.lesm")).expect("v1"), b"one");
        std::fs::remove_dir_all(&dir).ok();
    }

    /// A reader racing a stream of publishes must never observe a
    /// `CURRENT` pointer naming a file it cannot read back in full:
    /// artifacts are synced and pointer repointing is atomic, so every
    /// observed version resolves to complete bytes.
    #[test]
    fn reader_never_observes_pointer_to_unreadable_version() {
        let dir = tmp_dir("race");
        std::fs::create_dir_all(&dir).expect("mkdir");
        publish(&dir, &payload(1)).expect("seed publish");
        let stop = std::sync::atomic::AtomicBool::new(false);
        std::thread::scope(|scope| {
            let reader_dir = dir.clone();
            let reader = scope.spawn(|| {
                let dir = reader_dir;
                let mut observed = 0u32;
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    let Some(name) = current_version(&dir).expect("pointer readable") else {
                        panic!("CURRENT vanished mid-publish");
                    };
                    let bytes = std::fs::read(dir.join(&name))
                        .unwrap_or_else(|e| panic!("{name} named by CURRENT is unreadable: {e}"));
                    let n: u32 = name
                        .trim_start_matches('v')
                        .trim_end_matches(".lesm")
                        .parse()
                        .expect("version number");
                    assert_eq!(bytes, payload(n), "{name} is torn");
                    observed += 1;
                }
                observed
            });
            for n in 2..=40u32 {
                publish(&dir, &payload(n)).expect("publish");
            }
            stop.store(true, std::sync::atomic::Ordering::Relaxed);
            assert!(reader.join().expect("reader thread") > 0, "reader never ran");
        });
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Deterministic artifact body for version `n` (reader checks it back).
    fn payload(n: u32) -> Vec<u8> {
        let mut bytes = vec![0u8; 256];
        for (i, b) in bytes.iter_mut().enumerate() {
            *b = (i as u32).wrapping_mul(n) as u8;
        }
        bytes
    }

    #[test]
    fn load_current_on_an_empty_store_is_a_typed_error() {
        let dir = tmp_dir("empty");
        std::fs::create_dir_all(&dir).expect("mkdir");
        assert!(matches!(load_current(&dir), Err(SnapshotError::Io(_))));
        std::fs::remove_dir_all(&dir).ok();
    }
}
