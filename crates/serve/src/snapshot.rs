//! Versioned binary snapshots of mined structures (the store half of the
//! mine-once / serve-many subsystem).
//!
//! Layout of a `.lesm` artifact (all integers little-endian):
//!
//! ```text
//! +--------+---------+---------------+------------------+-----------+
//! | magic  | version | section table | section payloads | checksum  |
//! | "LESM" | u32     | u32 count +   | corpus,          | u64       |
//! | 4 B    |         | (id,off,len)* | structure        | FNV-1a 64 |
//! +--------+---------+---------------+------------------+-----------+
//! ```
//!
//! * The **corpus section** holds the query-time slice of [`Corpus`]:
//!   vocabulary, entity catalog, and per-document tokens/entities (needed
//!   by `search` overlap scoring and result rendering).
//! * The **structure section** holds the complete [`MinedStructure`]:
//!   hierarchy (topics, per-topic networks, EM fits), ranked phrases,
//!   ranked entities, topical frequency tables, segmentations, and
//!   document-topic weights.
//!
//! Floats are stored as raw IEEE-754 bits and hash maps in sorted-key
//! order, so `save` is a deterministic function of the value and
//! `load(save(m))` is bit-identical to `m` (property-tested in
//! `tests/snapshot_proptests.rs`). Corruption, truncation, and version
//! skew surface as typed [`SnapshotError`]s — never panics.

use crate::wire::{ByteReader, ByteWriter};
use crate::SnapshotError;
use lesm_core::pipeline::MinedStructure;
use lesm_corpus::{Corpus, Doc, EntityRef};
use lesm_hier::em::EmFit;
use lesm_hier::hierarchy::HierTopic;
use lesm_hier::TopicHierarchy;
use lesm_net::{LinkBlock, TypedNetwork};
use lesm_phrases::TopicalPhrase;
use std::collections::HashMap;
use std::sync::Arc;

/// Magic bytes opening every snapshot artifact.
pub const MAGIC: [u8; 4] = *b"LESM";
/// The format version this build writes and reads.
pub const FORMAT_VERSION: u32 = 1;

const SECTION_CORPUS: u32 = 1;
const SECTION_STRUCTURE: u32 = 2;

/// A loaded snapshot: the query-time corpus slice plus the mined structure.
#[derive(Debug)]
pub struct Snapshot {
    /// Vocabulary, entity catalog, and document tokens/entities.
    pub corpus: Corpus,
    /// The mined structure served to queries.
    pub mined: MinedStructure,
}

/// Whether `prefix` starts with the snapshot magic (format sniffing for
/// CLI inputs that may be either TSV or `.lesm`).
pub fn is_snapshot_bytes(prefix: &[u8]) -> bool {
    prefix.len() >= MAGIC.len() && prefix[..MAGIC.len()] == MAGIC
}

/// Whether the file at `path` begins with the snapshot magic.
pub fn is_snapshot_file(path: &str) -> bool {
    use std::io::Read as _;
    let mut head = [0u8; 4];
    match std::fs::File::open(path) {
        Ok(mut f) => f.read_exact(&mut head).is_ok() && is_snapshot_bytes(&head),
        Err(_) => false,
    }
}

/// FNV-1a 64 over `bytes` (the trailer checksum).
pub(crate) fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Serializes a corpus + mined structure into snapshot bytes. Fails
/// with [`SnapshotError::TooLarge`] if any id or count overflows its
/// 32-bit wire field — the save refuses rather than truncating.
pub fn save_snapshot(corpus: &Corpus, mined: &MinedStructure) -> Result<Vec<u8>, SnapshotError> {
    let mut corpus_w = ByteWriter::new();
    encode_corpus(&mut corpus_w, corpus)?;
    let corpus_bytes = corpus_w.into_bytes();
    let mut structure_w = ByteWriter::new();
    encode_structure(&mut structure_w, mined);
    let structure_bytes = structure_w.into_bytes();

    let payloads = [
        (SECTION_CORPUS, corpus_bytes),
        (SECTION_STRUCTURE, structure_bytes),
    ];
    // Header + section table, with offsets relative to the artifact start.
    let mut out = ByteWriter::new();
    out.put_raw(&MAGIC);
    out.put_u32(FORMAT_VERSION);
    out.put_u32(crate::wire_u32(payloads.len(), "section count")?);
    let table_start = out.len();
    let entry_size = 4 + 8 + 8;
    let mut offset = table_start + payloads.len() * entry_size;
    for (id, payload) in &payloads {
        out.put_u32(*id);
        out.put_u64(offset as u64);
        out.put_u64(payload.len() as u64);
        offset += payload.len();
    }
    for (_, payload) in &payloads {
        out.put_raw(payload);
    }
    let mut bytes = out.into_bytes();
    let checksum = fnv1a64(&bytes);
    bytes.extend_from_slice(&checksum.to_le_bytes());
    Ok(bytes)
}

/// Writes a snapshot artifact to `path`.
pub fn save_snapshot_file(
    path: &str,
    corpus: &Corpus,
    mined: &MinedStructure,
) -> Result<(), SnapshotError> {
    std::fs::write(path, save_snapshot(corpus, mined)?).map_err(SnapshotError::Io)
}

/// Parses snapshot bytes back into a [`Snapshot`].
pub fn load_snapshot(bytes: &[u8]) -> Result<Snapshot, SnapshotError> {
    // Magic and version come first so skewed artifacts report the real
    // cause rather than a checksum mismatch.
    if bytes.len() < MAGIC.len() + 4 {
        return Err(SnapshotError::Truncated {
            offset: 0,
            needed: MAGIC.len() + 4,
            available: bytes.len(),
        });
    }
    let found = [bytes[0], bytes[1], bytes[2], bytes[3]];
    if found != MAGIC {
        return Err(SnapshotError::BadMagic { found });
    }
    let version = u32::from_le_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]);
    if version != FORMAT_VERSION {
        return Err(SnapshotError::VersionMismatch { found: version, supported: FORMAT_VERSION });
    }
    let trailer_at = bytes.len().checked_sub(8).filter(|&b| b >= 8).ok_or(
        SnapshotError::Truncated { offset: 8, needed: 8, available: bytes.len().saturating_sub(8) },
    )?;
    let mut stored_bytes = [0u8; 8];
    stored_bytes.copy_from_slice(&bytes[trailer_at..]);
    let stored = u64::from_le_bytes(stored_bytes);
    let actual = fnv1a64(&bytes[..trailer_at]);
    if stored != actual {
        return Err(SnapshotError::ChecksumMismatch { expected: stored, actual });
    }
    let body = &bytes[..trailer_at];
    let mut r = ByteReader::new(&body[8..]);
    let n_sections = r.get_u32()? as usize;
    let mut sections: HashMap<u32, (usize, usize)> = HashMap::new();
    for _ in 0..n_sections {
        let id = r.get_u32()?;
        let off = r.get_u64()? as usize;
        let len = r.get_u64()? as usize;
        let end = off.checked_add(len).filter(|&e| e <= body.len()).ok_or(
            SnapshotError::Malformed {
                offset: off,
                what: format!("section {id} extends past the artifact body"),
            },
        )?;
        let _ = end;
        sections.insert(id, (off, len));
    }
    let section = |id: u32| -> Result<&[u8], SnapshotError> {
        let &(off, len) = sections.get(&id).ok_or(SnapshotError::Malformed {
            offset: 8,
            what: format!("missing section {id}"),
        })?;
        Ok(&body[off..off + len])
    };
    let corpus = decode_corpus(&mut ByteReader::new(section(SECTION_CORPUS)?))?;
    let mined = decode_structure(&mut ByteReader::new(section(SECTION_STRUCTURE)?))?;
    if mined.doc_topic.len() != corpus.num_docs() {
        return Err(SnapshotError::Malformed {
            offset: 0,
            what: format!(
                "doc_topic has {} rows but the corpus has {} documents",
                mined.doc_topic.len(),
                corpus.num_docs()
            ),
        });
    }
    Ok(Snapshot { corpus, mined })
}

/// Reads and parses the snapshot artifact at `path`.
pub fn load_snapshot_file(path: &str) -> Result<Snapshot, SnapshotError> {
    let bytes = std::fs::read(path).map_err(SnapshotError::Io)?;
    load_snapshot(&bytes)
}

// ---------------------------------------------------------------------------
// Corpus section
// ---------------------------------------------------------------------------

fn encode_corpus(w: &mut ByteWriter, corpus: &Corpus) -> Result<(), SnapshotError> {
    w.put_usize(corpus.vocab.len());
    for (_, name) in corpus.vocab.iter() {
        w.put_str(name);
    }
    w.put_usize(corpus.entities.num_types());
    for t in 0..corpus.entities.num_types() {
        // lesm-lint: allow(R1) — t < num_types(), so the lookup cannot fail
        w.put_str(corpus.entities.type_name(t).expect("type in range"));
        // lesm-lint: allow(R1) — t < num_types(), so the lookup cannot fail
        let entity_names = corpus.entities.table(t).expect("table in range");
        w.put_usize(entity_names.len());
        for (_, name) in entity_names.iter() {
            w.put_str(name);
        }
    }
    w.put_usize(corpus.docs.len());
    for doc in &corpus.docs {
        w.put_u32_seq(&doc.tokens);
        w.put_usize(doc.entities.len());
        for e in &doc.entities {
            w.put_u32(crate::wire_u32(e.etype, "entity type id")?);
            w.put_u32(e.id);
        }
        w.put_option(doc.label.as_ref(), |w, &l| w.put_u32(l));
        w.put_option(doc.year.as_ref(), |w, &y| w.put_i32(y));
    }
    Ok(())
}

fn decode_corpus(r: &mut ByteReader) -> Result<Corpus, SnapshotError> {
    let mut corpus = Corpus::new();
    let n_words = r.get_len(8)?;
    for _ in 0..n_words {
        let name = r.get_str()?;
        corpus.vocab.intern(&name);
    }
    let n_types = r.get_len(8)?;
    for _ in 0..n_types {
        let type_name = r.get_str()?;
        let t = corpus.entities.add_type(&type_name);
        let n_entities = r.get_len(8)?;
        for _ in 0..n_entities {
            let name = r.get_str()?;
            // lesm-lint: allow(R1) — `t` came from add_type just above; intern cannot fail
            corpus.entities.intern(t, &name).expect("type just added");
        }
    }
    let n_docs = r.get_len(1)?;
    for _ in 0..n_docs {
        let tokens = r.get_u32_seq()?;
        let n_links = r.get_len(8)?;
        let mut entities = Vec::with_capacity(n_links);
        for _ in 0..n_links {
            let at = r.position();
            let etype = r.get_u32()? as usize;
            let id = r.get_u32()?;
            if etype >= n_types {
                return Err(SnapshotError::Malformed {
                    offset: at,
                    what: format!("entity type {etype} out of range ({n_types} types)"),
                });
            }
            entities.push(EntityRef::new(etype, id));
        }
        let label = r.get_option(|r| r.get_u32())?;
        let year = r.get_option(|r| r.get_i32())?;
        corpus.docs.push(Doc { tokens, entities, label, year });
    }
    Ok(corpus)
}

// ---------------------------------------------------------------------------
// Structure section
// ---------------------------------------------------------------------------

fn encode_structure(w: &mut ByteWriter, mined: &MinedStructure) {
    encode_hierarchy(w, &mined.hierarchy);
    w.put_usize(mined.topic_phrases.len());
    for phrases in &mined.topic_phrases {
        w.put_usize(phrases.len());
        for p in phrases {
            w.put_u32_seq(&p.tokens);
            w.put_f64(p.score);
            w.put_f64(p.topic_freq);
        }
    }
    w.put_usize(mined.topic_entities.len());
    for per_type in &mined.topic_entities {
        w.put_usize(per_type.len());
        for list in per_type {
            w.put_usize(list.len());
            for &(id, score) in list {
                w.put_u32(id);
                w.put_f64(score);
            }
        }
    }
    w.put_usize(mined.phrase_topic_freq.len());
    for table in &mined.phrase_topic_freq {
        // Sorted-key order: HashMap iteration order is process-random and
        // the snapshot must be a deterministic function of the value.
        let mut entries: Vec<(&Vec<u32>, f64)> = table.iter().map(|(k, &v)| (k, v)).collect();
        entries.sort_unstable_by(|a, b| a.0.cmp(b.0));
        w.put_usize(entries.len());
        for (phrase, freq) in entries {
            w.put_u32_seq(phrase);
            w.put_f64(freq);
        }
    }
    w.put_usize(mined.segments.len());
    for doc_segs in &mined.segments {
        w.put_usize(doc_segs.len());
        for seg in doc_segs {
            w.put_u32_seq(seg);
        }
    }
    w.put_usize(mined.doc_topic.len());
    for row in &mined.doc_topic {
        w.put_f64_seq(row);
    }
}

fn decode_structure(r: &mut ByteReader) -> Result<MinedStructure, SnapshotError> {
    let hierarchy = decode_hierarchy(r)?;
    let n_topics = hierarchy.len();
    let n_phrase_lists = r.get_len(8)?;
    let mut topic_phrases = Vec::with_capacity(n_phrase_lists);
    for _ in 0..n_phrase_lists {
        let n = r.get_len(8)?;
        let mut list = Vec::with_capacity(n);
        for _ in 0..n {
            let tokens = r.get_u32_seq()?;
            let score = r.get_f64()?;
            let topic_freq = r.get_f64()?;
            list.push(TopicalPhrase { tokens, score, topic_freq });
        }
        topic_phrases.push(list);
    }
    let n_entity_lists = r.get_len(8)?;
    let mut topic_entities = Vec::with_capacity(n_entity_lists);
    for _ in 0..n_entity_lists {
        let n_types = r.get_len(8)?;
        let mut per_type = Vec::with_capacity(n_types);
        for _ in 0..n_types {
            let n = r.get_len(12)?;
            let mut list = Vec::with_capacity(n);
            for _ in 0..n {
                let id = r.get_u32()?;
                let score = r.get_f64()?;
                list.push((id, score));
            }
            per_type.push(list);
        }
        topic_entities.push(per_type);
    }
    let n_tables = r.get_len(8)?;
    let mut phrase_topic_freq = Vec::with_capacity(n_tables);
    for _ in 0..n_tables {
        let n = r.get_len(8)?;
        let mut table = HashMap::with_capacity(n);
        for _ in 0..n {
            let phrase = r.get_u32_seq()?;
            let freq = r.get_f64()?;
            table.insert(phrase, freq);
        }
        phrase_topic_freq.push(table);
    }
    let n_seg_docs = r.get_len(8)?;
    let mut segments = Vec::with_capacity(n_seg_docs);
    for _ in 0..n_seg_docs {
        let n = r.get_len(8)?;
        let mut doc_segs = Vec::with_capacity(n);
        for _ in 0..n {
            doc_segs.push(r.get_u32_seq()?);
        }
        segments.push(doc_segs);
    }
    let n_doc_rows = r.get_len(8)?;
    let mut doc_topic = Vec::with_capacity(n_doc_rows);
    for _ in 0..n_doc_rows {
        doc_topic.push(r.get_f64_seq()?);
    }
    for (name, len) in [
        ("topic_phrases", topic_phrases.len()),
        ("topic_entities", topic_entities.len()),
        ("phrase_topic_freq", phrase_topic_freq.len()),
    ] {
        if len != n_topics {
            return Err(SnapshotError::Malformed {
                offset: r.position(),
                what: format!("{name} has {len} entries for {n_topics} topics"),
            });
        }
    }
    Ok(MinedStructure {
        hierarchy,
        topic_phrases,
        topic_entities,
        phrase_topic_freq,
        segments,
        doc_topic,
    })
}

fn encode_hierarchy(w: &mut ByteWriter, h: &TopicHierarchy) {
    w.put_usize(h.type_names.len());
    for name in &h.type_names {
        w.put_str(name);
    }
    w.put_usize(h.topics.len());
    for topic in &h.topics {
        w.put_option(topic.parent.as_ref(), |w, &p| w.put_usize(p));
        w.put_usize(topic.children.len());
        for &c in &topic.children {
            w.put_usize(c);
        }
        w.put_usize(topic.level);
        w.put_str(&topic.path);
        w.put_usize(topic.phi.len());
        for row in &topic.phi {
            w.put_f64_seq(row);
        }
        w.put_f64(topic.rho);
        encode_network(w, &topic.network);
    }
    w.put_usize(h.fits.len());
    for fit in &h.fits {
        w.put_option(fit.as_ref(), encode_fit);
    }
    w.put_usize(h.alphas.len());
    for alpha in &h.alphas {
        w.put_option(alpha.as_ref(), |w, a| w.put_f64_seq(a));
    }
}

fn decode_hierarchy(r: &mut ByteReader) -> Result<TopicHierarchy, SnapshotError> {
    let n_types = r.get_len(8)?;
    let mut type_names = Vec::with_capacity(n_types);
    for _ in 0..n_types {
        type_names.push(r.get_str()?);
    }
    let n_topics = r.get_len(8)?;
    let mut topics = Vec::with_capacity(n_topics);
    for _ in 0..n_topics {
        let parent = r.get_option(|r| Ok(r.get_u64()? as usize))?;
        let n_children = r.get_len(8)?;
        let mut children = Vec::with_capacity(n_children);
        for _ in 0..n_children {
            children.push(r.get_u64()? as usize);
        }
        let level = r.get_u64()? as usize;
        let path = r.get_str()?;
        let n_phi = r.get_len(8)?;
        let mut phi = Vec::with_capacity(n_phi);
        for _ in 0..n_phi {
            phi.push(r.get_f64_seq()?);
        }
        let rho = r.get_f64()?;
        let network = decode_network(r)?;
        topics.push(HierTopic { parent, children, level, path, phi, rho, network });
    }
    let n_fits = r.get_len(1)?;
    let mut fits = Vec::with_capacity(n_fits);
    for _ in 0..n_fits {
        fits.push(r.get_option(decode_fit)?);
    }
    let n_alphas = r.get_len(1)?;
    let mut alphas = Vec::with_capacity(n_alphas);
    for _ in 0..n_alphas {
        alphas.push(r.get_option(|r| r.get_f64_seq())?);
    }
    if fits.len() != n_topics || alphas.len() != n_topics {
        return Err(SnapshotError::Malformed {
            offset: r.position(),
            what: format!(
                "hierarchy arrays disagree: {n_topics} topics, {} fits, {} alphas",
                fits.len(),
                alphas.len()
            ),
        });
    }
    Ok(TopicHierarchy { type_names, topics, fits, alphas })
}

pub(crate) fn encode_network(w: &mut ByteWriter, net: &TypedNetwork) {
    w.put_usize(net.type_names.len());
    for name in &net.type_names {
        w.put_str(name);
    }
    w.put_usize(net.node_counts.len());
    for &n in &net.node_counts {
        w.put_usize(n);
    }
    w.put_usize(net.blocks.len());
    for block in &net.blocks {
        w.put_usize(block.tx);
        w.put_usize(block.ty);
        w.put_usize(block.edges.len());
        for &(i, j, weight) in &block.edges {
            w.put_u32(i);
            w.put_u32(j);
            w.put_f64(weight);
        }
    }
}

pub(crate) fn decode_network(r: &mut ByteReader) -> Result<TypedNetwork, SnapshotError> {
    let n_types = r.get_len(8)?;
    let mut type_names = Vec::with_capacity(n_types);
    for _ in 0..n_types {
        type_names.push(r.get_str()?);
    }
    let n_counts = r.get_len(8)?;
    if n_counts != n_types {
        return Err(SnapshotError::Malformed {
            offset: r.position(),
            what: format!("network has {n_types} type names but {n_counts} node counts"),
        });
    }
    let mut node_counts = Vec::with_capacity(n_counts);
    for _ in 0..n_counts {
        node_counts.push(r.get_u64()? as usize);
    }
    let n_blocks = r.get_len(8)?;
    let mut net = TypedNetwork::new(type_names, node_counts);
    for _ in 0..n_blocks {
        let tx = r.get_u64()? as usize;
        let ty = r.get_u64()? as usize;
        let n_edges = r.get_len(16)?;
        let mut edges = Vec::with_capacity(n_edges);
        for _ in 0..n_edges {
            let i = r.get_u32()?;
            let j = r.get_u32()?;
            let weight = r.get_f64()?;
            edges.push((i, j, weight));
        }
        net.blocks.push(LinkBlock { tx, ty, edges });
    }
    net.validate().map_err(|e| SnapshotError::Malformed {
        offset: r.position(),
        what: format!("invalid network: {e}"),
    })?;
    Ok(net)
}

pub(crate) fn encode_fit(w: &mut ByteWriter, fit: &EmFit) {
    w.put_usize(fit.k);
    w.put_usize(fit.phi.len());
    for per_type in &fit.phi {
        w.put_usize(per_type.len());
        for row in per_type {
            w.put_f64_seq(row);
        }
    }
    w.put_usize(fit.phi0.len());
    for row in &fit.phi0 {
        w.put_f64_seq(row);
    }
    w.put_f64_seq(&fit.rho);
    w.put_f64_seq(&fit.alpha);
    w.put_f64_seq(&fit.theta);
    w.put_f64(fit.objective);
    w.put_f64_seq(&fit.objective_trace);
    w.put_f64(fit.loglik);
    w.put_usize(fit.parent_phi.len());
    for row in fit.parent_phi.iter() {
        w.put_f64_seq(row);
    }
}

pub(crate) fn decode_fit(r: &mut ByteReader) -> Result<EmFit, SnapshotError> {
    let k = r.get_u64()? as usize;
    let n_types = r.get_len(8)?;
    let mut phi = Vec::with_capacity(n_types);
    for _ in 0..n_types {
        let n_rows = r.get_len(8)?;
        let mut per_type = Vec::with_capacity(n_rows);
        for _ in 0..n_rows {
            per_type.push(r.get_f64_seq()?);
        }
        phi.push(per_type);
    }
    let n_phi0 = r.get_len(8)?;
    let mut phi0 = Vec::with_capacity(n_phi0);
    for _ in 0..n_phi0 {
        phi0.push(r.get_f64_seq()?);
    }
    let rho = r.get_f64_seq()?;
    let alpha = r.get_f64_seq()?;
    let theta = r.get_f64_seq()?;
    let objective = r.get_f64()?;
    let objective_trace = r.get_f64_seq()?;
    let loglik = r.get_f64()?;
    let n_parent = r.get_len(8)?;
    let mut parent_phi = Vec::with_capacity(n_parent);
    for _ in 0..n_parent {
        parent_phi.push(r.get_f64_seq()?);
    }
    Ok(EmFit {
        k,
        phi,
        phi0,
        rho,
        alpha,
        theta,
        objective,
        objective_trace,
        loglik,
        parent_phi: Arc::new(parent_phi),
    })
}
