//! Read-only memory mappings for snapshot v2 artifacts.
//!
//! The v2 loader wants the whole artifact as one stable, 8-byte-aligned
//! byte region it can borrow typed slices from. On Unix this is a real
//! `mmap(2)` of the file (zero-copy: pages fault in on first touch) via a
//! minimal raw-libc shim — the workspace has no `libc` crate, so the two
//! syscall signatures are declared by hand behind `cfg(unix)`. Everywhere
//! else, and for in-memory buffers, the bytes are copied once into a
//! `Vec<u64>`-backed buffer, which guarantees the same 8-byte alignment
//! (the strictest any v2 section view needs: `u64`/`f64` arrays).
//!
//! A [`Mapping`] is immutable after construction, so borrowing `&[u8]`
//! (and reinterpreted `&[u64]`/`&[u32]`/`&[f64]` views) from it is sound
//! for the mapping's lifetime.

use crate::SnapshotError;
use std::fs::File;
use std::io::Read as _;

#[cfg(unix)]
mod sys {
    use std::os::raw::{c_int, c_void};

    pub const PROT_READ: c_int = 1;
    pub const MAP_PRIVATE: c_int = 2;
    /// `mmap` failure sentinel (`(void *)-1`).
    pub const MAP_FAILED: usize = usize::MAX;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> c_int;
    }
}

enum Backing {
    /// A live `mmap` region that must be `munmap`ed on drop.
    #[cfg(unix)]
    Mapped { ptr: *mut u8, len: usize },
    /// An owned, 8-byte-aligned copy of the bytes.
    Owned(Vec<u64>),
}

/// An immutable, 8-byte-aligned byte region holding a whole artifact.
pub struct Mapping {
    backing: Backing,
    /// Logical length in bytes (the owned backing over-allocates to the
    /// next multiple of 8).
    len: usize,
}

// SAFETY: the region is read-only after construction; raw pointers are
// only ever dereferenced through shared borrows of the `Mapping`.
unsafe impl Send for Mapping {}
unsafe impl Sync for Mapping {}

impl Mapping {
    /// Maps the file at `path`: `mmap` where available, an aligned
    /// read-into-buffer copy otherwise (or when `mmap` fails).
    pub fn open(path: &str) -> Result<Self, SnapshotError> {
        let mut file = File::open(path).map_err(SnapshotError::Io)?;
        let len = usize::try_from(file.metadata().map_err(SnapshotError::Io)?.len())
            .map_err(|_| SnapshotError::Malformed {
                offset: 0,
                what: "file length overflows usize".into(),
            })?;
        #[cfg(unix)]
        if len > 0 {
            if let Some(mapping) = Self::try_mmap(&file, len) {
                return Ok(mapping);
            }
        }
        Self::read_aligned(&mut file, len)
    }

    #[cfg(unix)]
    fn try_mmap(file: &File, len: usize) -> Option<Self> {
        use std::os::unix::io::AsRawFd as _;
        // SAFETY: a fresh private read-only mapping of an open fd; the
        // pointer is checked against MAP_FAILED before use, and the
        // region is unmapped exactly once in Drop.
        let ptr = unsafe {
            sys::mmap(std::ptr::null_mut(), len, sys::PROT_READ, sys::MAP_PRIVATE, file.as_raw_fd(), 0)
        };
        if ptr as usize == sys::MAP_FAILED || ptr.is_null() {
            return None;
        }
        Some(Self { backing: Backing::Mapped { ptr: ptr.cast(), len }, len })
    }

    fn read_aligned(file: &mut File, len: usize) -> Result<Self, SnapshotError> {
        let mut words = vec![0u64; len.div_ceil(8)];
        if len > 0 {
            // SAFETY: the Vec<u64> allocation covers len.div_ceil(8) * 8
            // >= len bytes and is valid for writes.
            let bytes = unsafe {
                std::slice::from_raw_parts_mut(words.as_mut_ptr().cast::<u8>(), len)
            };
            file.read_exact(bytes).map_err(SnapshotError::Io)?;
        }
        Ok(Self { backing: Backing::Owned(words), len })
    }

    /// Copies `bytes` into an owned aligned buffer (used for in-memory
    /// artifacts, which may sit at any address — including deliberately
    /// misaligned test inputs).
    pub fn from_bytes(bytes: &[u8]) -> Self {
        let mut words = vec![0u64; bytes.len().div_ceil(8)];
        if !bytes.is_empty() {
            // SAFETY: as above — the allocation covers bytes.len() bytes.
            let dst = unsafe {
                std::slice::from_raw_parts_mut(words.as_mut_ptr().cast::<u8>(), bytes.len())
            };
            dst.copy_from_slice(bytes);
        }
        Self { backing: Backing::Owned(words), len: bytes.len() }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the mapping is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Base pointer of the region (8-byte-aligned; dangling-but-aligned
    /// when empty).
    fn base(&self) -> *const u8 {
        match &self.backing {
            #[cfg(unix)]
            Backing::Mapped { ptr, .. } => *ptr,
            Backing::Owned(words) => {
                if words.is_empty() {
                    std::ptr::NonNull::<u64>::dangling().as_ptr().cast()
                } else {
                    words.as_ptr().cast()
                }
            }
        }
    }

    /// The whole region as bytes.
    pub fn bytes(&self) -> &[u8] {
        // SAFETY: base() points at (at least) len readable bytes that are
        // immutable for the mapping's lifetime.
        unsafe { std::slice::from_raw_parts(self.base(), self.len) }
    }

    /// A typed view of `count` little-endian `u64`s at byte offset `off`.
    ///
    /// Callers must have validated `off % 8 == 0` and
    /// `off + count * 8 <= len` (the v2 loader does so once at load time,
    /// so per-query accessors stay infallible).
    pub(crate) fn view_u64(&self, off: usize, count: usize) -> &[u64] {
        debug_assert!(off.is_multiple_of(8) && off + count * 8 <= self.len);
        // SAFETY: offset/extent validated at load; base is 8-aligned and
        // off is a multiple of 8, so the element alignment holds.
        unsafe { std::slice::from_raw_parts(self.base().add(off).cast::<u64>(), count) }
    }

    /// A typed view of `count` raw-bit `f64`s at byte offset `off` (same
    /// preconditions as [`Self::view_u64`]).
    pub(crate) fn view_f64(&self, off: usize, count: usize) -> &[f64] {
        debug_assert!(off.is_multiple_of(8) && off + count * 8 <= self.len);
        // SAFETY: as view_u64; every bit pattern is a valid f64.
        unsafe { std::slice::from_raw_parts(self.base().add(off).cast::<f64>(), count) }
    }

    /// A typed view of `count` little-endian `u32`s at byte offset `off`
    /// (requires `off % 4 == 0` and bounds validated by the caller).
    pub(crate) fn view_u32(&self, off: usize, count: usize) -> &[u32] {
        debug_assert!(off.is_multiple_of(4) && off + count * 4 <= self.len);
        // SAFETY: offset/extent validated at load; 4-byte alignment holds
        // because base is 8-aligned and off is a multiple of 4.
        unsafe { std::slice::from_raw_parts(self.base().add(off).cast::<u32>(), count) }
    }
}

impl Drop for Mapping {
    fn drop(&mut self) {
        #[cfg(unix)]
        if let Backing::Mapped { ptr, len } = self.backing {
            // SAFETY: ptr/len came from a successful mmap and are
            // unmapped exactly once.
            unsafe {
                sys::munmap(ptr.cast(), len);
            }
        }
    }
}

impl std::fmt::Debug for Mapping {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let kind = match &self.backing {
            #[cfg(unix)]
            Backing::Mapped { .. } => "mmap",
            Backing::Owned(_) => "owned",
        };
        write!(f, "Mapping({kind}, {} bytes)", self.len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_bytes_round_trips_and_is_aligned() {
        let data: Vec<u8> = (0..=255u8).collect();
        let m = Mapping::from_bytes(&data);
        assert_eq!(m.bytes(), &data[..]);
        assert_eq!(m.bytes().as_ptr() as usize % 8, 0);
        // A misaligned source slice still lands on an aligned buffer.
        let m2 = Mapping::from_bytes(&data[1..]);
        assert_eq!(m2.bytes(), &data[1..]);
        assert_eq!(m2.bytes().as_ptr() as usize % 8, 0);
    }

    #[test]
    fn empty_mapping_is_valid() {
        let m = Mapping::from_bytes(&[]);
        assert!(m.is_empty());
        assert_eq!(m.bytes().len(), 0);
    }

    #[test]
    fn typed_views_decode_little_endian() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&0xDEAD_BEEF_u32.to_le_bytes());
        bytes.extend_from_slice(&0x1234_5678_u32.to_le_bytes());
        bytes.extend_from_slice(&u64::MAX.to_le_bytes());
        bytes.extend_from_slice(&1.5f64.to_bits().to_le_bytes());
        let m = Mapping::from_bytes(&bytes);
        assert_eq!(m.view_u32(0, 2), &[0xDEAD_BEEF, 0x1234_5678]);
        assert_eq!(m.view_u64(8, 1), &[u64::MAX]);
        assert_eq!(m.view_f64(16, 1), &[1.5]);
    }

    #[test]
    fn open_reads_files() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("lesm-mapping-test-{}.bin", std::process::id()));
        let path_str = path.to_string_lossy().into_owned();
        let data: Vec<u8> = (0..1000u32).flat_map(|x| x.to_le_bytes()).collect();
        std::fs::write(&path, &data).unwrap();
        let m = Mapping::open(&path_str).unwrap();
        assert_eq!(m.bytes(), &data[..]);
        assert_eq!(m.bytes().as_ptr() as usize % 8, 0);
        drop(m);
        std::fs::remove_file(&path).ok();
        assert!(Mapping::open(&path_str).is_err(), "missing file is an Io error");
    }
}
