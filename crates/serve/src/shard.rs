//! Splitting a mined model into document shards.
//!
//! Sharding partitions the **documents**; the mined structure (hierarchy,
//! phrases, entity rankings, phrase-topic frequencies) is small relative
//! to the corpus and is replicated to every shard. That replication is
//! what makes the front tier's merge exact: every shard ranks topics and
//! scores documents with the identical structure, so per-shard scores are
//! the scores an unsharded server would compute, and the merge only has
//! to re-impose the global (score, doc) order (DESIGN.md §13).
//!
//! Each shard is written as a format-v2 artifact whose `DOC_IDS` section
//! maps shard-local document rows back to global document ids, plus a
//! `manifest.json` naming the shard files in order.

use crate::v2::save_snapshot_v2_with_ids;
use crate::{ServeError, SnapshotError};
use lesm_core::pipeline::MinedStructure;
use lesm_corpus::Corpus;
use std::path::Path;

/// Document-to-shard assignment strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardBy {
    /// Contiguous ranges over the primary (first-listed) entity id: shard
    /// `i` holds documents whose anchor entity falls in the `i`-th range.
    /// Keeps an entity's documents colocated, the layout the paper's
    /// entity-centric queries want.
    EntityRange,
    /// By the level-1 ancestor of each document's strongest leaf topic,
    /// taken modulo the shard count. Keeps topical neighborhoods
    /// colocated.
    TopicSubtree,
}

impl ShardBy {
    /// Parses the CLI spelling (`entity-range` / `topic-subtree`).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "entity-range" => Some(ShardBy::EntityRange),
            "topic-subtree" => Some(ShardBy::TopicSubtree),
            _ => None,
        }
    }

    /// The CLI / manifest spelling.
    pub fn name(self) -> &'static str {
        match self {
            ShardBy::EntityRange => "entity-range",
            ShardBy::TopicSubtree => "topic-subtree",
        }
    }
}

/// Deterministically assigns every document to a shard in `0..n`.
pub fn assign_docs(corpus: &Corpus, mined: &MinedStructure, by: ShardBy, n: usize) -> Vec<usize> {
    let n = n.max(1);
    match by {
        ShardBy::EntityRange => {
            // Anchor each document to its first entity reference; the id
            // space of that entity's type is cut into n equal ranges.
            (0..corpus.num_docs())
                .map(|d| match corpus.docs[d].entities.first() {
                    Some(e) => {
                        let count = corpus.entities.count(e.etype).max(1);
                        (e.id as usize * n / count).min(n - 1)
                    }
                    None => 0,
                })
                .collect()
        }
        ShardBy::TopicSubtree => (0..corpus.num_docs())
            .map(|d| {
                let mut t = mined.doc_leaf(d);
                while mined.hierarchy.topics[t].level > 1 {
                    match mined.hierarchy.topics[t].parent {
                        Some(p) => t = p,
                        None => break,
                    }
                }
                t % n
            })
            .collect(),
    }
}

/// One extracted shard: the document subset plus the replicated
/// structure, and the global id of each local document row.
pub struct Shard {
    /// Shard-local corpus (full vocabulary/entities, subset documents).
    pub corpus: Corpus,
    /// Shard-local structure (replicated, subset doc rows).
    pub mined: MinedStructure,
    /// `global_ids[local_doc] = global doc id`.
    pub global_ids: Vec<u64>,
}

/// Splits the model into `n` shards. Shards may be empty; document order
/// within a shard preserves ascending global document id.
pub fn shard_model(corpus: &Corpus, mined: &MinedStructure, by: ShardBy, n: usize) -> Vec<Shard> {
    let n = n.max(1);
    let assignment = assign_docs(corpus, mined, by, n);
    (0..n)
        .map(|s| {
            let docs: Vec<usize> =
                (0..corpus.num_docs()).filter(|&d| assignment[d] == s).collect();
            let mut shard_corpus = corpus.clone();
            shard_corpus.docs = docs.iter().map(|&d| corpus.docs[d].clone()).collect();
            let shard_mined = MinedStructure {
                hierarchy: mined.hierarchy.clone(),
                topic_phrases: mined.topic_phrases.clone(),
                topic_entities: mined.topic_entities.clone(),
                phrase_topic_freq: mined.phrase_topic_freq.clone(),
                segments: docs.iter().map(|&d| mined.segments[d].clone()).collect(),
                doc_topic: docs.iter().map(|&d| mined.doc_topic[d].clone()).collect(),
            };
            Shard {
                corpus: shard_corpus,
                mined: shard_mined,
                global_ids: docs.iter().map(|&d| d as u64).collect(),
            }
        })
        .collect()
}

/// A written shard set: the manifest contents.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardManifest {
    /// Assignment strategy name (`entity-range` / `topic-subtree`).
    pub by: String,
    /// Shard artifact file names, relative to the manifest directory.
    pub files: Vec<String>,
    /// Documents per shard (same order as `files`).
    pub docs: Vec<usize>,
}

impl ShardManifest {
    /// Serializes the manifest as JSON.
    pub fn to_json(&self) -> String {
        use lesm_core::export::json_string;
        let mut out = String::from("{\n");
        out.push_str("  \"format\": 1,\n");
        out.push_str(&format!("  \"by\": {},\n", json_string(&self.by)));
        out.push_str("  \"shards\": [\n");
        for (i, (file, docs)) in self.files.iter().zip(&self.docs).enumerate() {
            out.push_str(&format!(
                "    {{\"file\": {}, \"docs\": {}}}{}\n",
                json_string(file),
                docs,
                if i + 1 < self.files.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// Writes the shard artifacts (`shard-0000.lesm`, ...) and
/// `manifest.json` into `out_dir`, creating it if needed.
pub fn write_shards(
    corpus: &Corpus,
    mined: &MinedStructure,
    by: ShardBy,
    n: usize,
    out_dir: &Path,
) -> Result<ShardManifest, SnapshotError> {
    std::fs::create_dir_all(out_dir).map_err(SnapshotError::Io)?;
    let shards = shard_model(corpus, mined, by, n);
    let mut manifest =
        ShardManifest { by: by.name().to_string(), files: Vec::new(), docs: Vec::new() };
    for (i, shard) in shards.iter().enumerate() {
        let file = format!("shard-{i:04}.lesm");
        let bytes = save_snapshot_v2_with_ids(&shard.corpus, &shard.mined, Some(&shard.global_ids))?;
        std::fs::write(out_dir.join(&file), bytes).map_err(SnapshotError::Io)?;
        manifest.docs.push(shard.global_ids.len());
        manifest.files.push(file);
    }
    std::fs::write(out_dir.join("manifest.json"), manifest.to_json())
        .map_err(SnapshotError::Io)?;
    Ok(manifest)
}

/// Parses a `manifest.json` written by [`write_shards`]. The parser is a
/// minimal scanner for our own fixed shape, not a general JSON reader.
pub fn parse_manifest(text: &str) -> Result<ShardManifest, ServeError> {
    let by = extract_string_field(text, "by")
        .ok_or_else(|| ServeError::InvalidConfig("manifest missing \"by\"".into()))?;
    let mut files = Vec::new();
    let mut docs = Vec::new();
    let mut rest = text;
    while let Some(pos) = rest.find("\"file\"") {
        rest = &rest[pos..];
        let file = extract_string_field(rest, "file")
            .ok_or_else(|| ServeError::InvalidConfig("manifest has a malformed shard".into()))?;
        let n = extract_number_field(rest, "docs")
            .ok_or_else(|| ServeError::InvalidConfig("manifest shard missing \"docs\"".into()))?;
        files.push(file);
        docs.push(n);
        rest = &rest["\"file\"".len()..];
    }
    if files.is_empty() {
        return Err(ServeError::InvalidConfig("manifest lists no shards".into()));
    }
    Ok(ShardManifest { by, files, docs })
}

/// Reads and parses a manifest file.
pub fn load_manifest(path: &Path) -> Result<ShardManifest, ServeError> {
    parse_manifest(&std::fs::read_to_string(path).map_err(ServeError::Io)?)
}

fn extract_string_field(text: &str, key: &str) -> Option<String> {
    let pos = text.find(&format!("\"{key}\""))?;
    let rest = &text[pos + key.len() + 2..];
    let rest = rest.trim_start().strip_prefix(':')?.trim_start();
    let rest = rest.strip_prefix('"')?;
    // Our writer escapes with backslashes; unescape the two forms
    // json_string emits for path-safe file names (\" and \\) plus \uXXXX.
    let mut out = String::new();
    let mut chars = rest.chars();
    while let Some(c) = chars.next() {
        match c {
            '"' => return Some(out),
            '\\' => match chars.next()? {
                'u' => {
                    let hex: String = chars.by_ref().take(4).collect();
                    let code = u32::from_str_radix(&hex, 16).ok()?;
                    out.push(char::from_u32(code)?);
                }
                'n' => out.push('\n'),
                't' => out.push('\t'),
                other => out.push(other),
            },
            other => out.push(other),
        }
    }
    None
}

fn extract_number_field(text: &str, key: &str) -> Option<usize> {
    let pos = text.find(&format!("\"{key}\""))?;
    let rest = &text[pos + key.len() + 2..];
    let rest = rest.trim_start().strip_prefix(':')?.trim_start();
    let digits: String = rest.chars().take_while(char::is_ascii_digit).collect();
    digits.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manifest_round_trips_through_json() {
        let manifest = ShardManifest {
            by: "entity-range".into(),
            files: vec!["shard-0000.lesm".into(), "shard-0001.lesm".into()],
            docs: vec![40, 20],
        };
        let json = manifest.to_json();
        assert!(lesm_core::export::is_balanced_json(&json), "{json}");
        assert_eq!(parse_manifest(&json).expect("parse"), manifest);
    }

    #[test]
    fn malformed_manifests_are_typed_errors() {
        assert!(parse_manifest("{}").is_err());
        assert!(parse_manifest("{\"by\": \"entity-range\", \"shards\": []}").is_err());
        assert!(parse_manifest("not json").is_err());
    }

    #[test]
    fn parse_round_trips_strategy_names() {
        for by in [ShardBy::EntityRange, ShardBy::TopicSubtree] {
            assert_eq!(ShardBy::parse(by.name()), Some(by));
        }
        assert_eq!(ShardBy::parse("hash"), None);
    }
}
