//! A minimal blocking HTTP/1.1 client for shard fan-out.
//!
//! Just enough protocol for talking to our own server: one `GET`, a
//! status line, headers (only `Content-Length` is interpreted), a body,
//! `Connection: close` semantics. Hand-rolled over `std::net` because the
//! workspace is dependency-free; the front tier controls both ends of the
//! wire, so tolerance for exotic peers is not a goal.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

/// A response fetched from a shard.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FetchedResponse {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` header value (empty when the peer sent none).
    pub content_type: String,
    /// Body bytes.
    pub body: Vec<u8>,
}

impl FetchedResponse {
    /// Body as UTF-8 text (lossy).
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// Issues `GET {target}` against `addr` (e.g. `127.0.0.1:8080`) with the
/// given timeout applied to connect, read, and write independently.
pub fn http_get(addr: &str, target: &str, timeout: Duration) -> std::io::Result<FetchedResponse> {
    let stream = connect(addr, timeout)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    let mut stream = stream;
    write!(stream, "GET {target} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n")?;
    stream.flush()?;
    read_response(&mut BufReader::new(stream))
}

/// Issues `POST {target}` with a body (framed by `Content-Length`)
/// against `addr`. Used for `POST /query`.
pub fn http_post(
    addr: &str,
    target: &str,
    body: &str,
    timeout: Duration,
) -> std::io::Result<FetchedResponse> {
    let stream = connect(addr, timeout)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    let mut stream = stream;
    write!(
        stream,
        "POST {target} HTTP/1.1\r\nHost: {addr}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    )?;
    stream.write_all(body.as_bytes())?;
    stream.flush()?;
    read_response(&mut BufReader::new(stream))
}

fn connect(addr: &str, timeout: Duration) -> std::io::Result<TcpStream> {
    use std::net::ToSocketAddrs;
    let mut last = None;
    for sock in addr.to_socket_addrs()? {
        match TcpStream::connect_timeout(&sock, timeout) {
            Ok(s) => return Ok(s),
            Err(e) => last = Some(e),
        }
    }
    Err(last.unwrap_or_else(|| {
        std::io::Error::new(std::io::ErrorKind::InvalidInput, format!("no address for {addr}"))
    }))
}

fn bad(what: impl Into<String>) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, what.into())
}

fn read_response<R: BufRead>(reader: &mut R) -> std::io::Result<FetchedResponse> {
    let mut line = String::new();
    reader.read_line(&mut line)?;
    // "HTTP/1.1 200 OK"
    let status: u16 = line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| bad(format!("bad status line {line:?}")))?;
    let mut content_type = String::new();
    let mut content_length: Option<usize> = None;
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            return Err(bad("connection closed inside headers"));
        }
        let trimmed = line.trim_end_matches(['\r', '\n']);
        if trimmed.is_empty() {
            break;
        }
        if let Some((name, value)) = trimmed.split_once(':') {
            let value = value.trim();
            if name.eq_ignore_ascii_case("content-type") {
                content_type = value.to_string();
            } else if name.eq_ignore_ascii_case("content-length") {
                content_length =
                    Some(value.parse().map_err(|_| bad(format!("bad content-length {value:?}")))?);
            }
        }
    }
    let body = match content_length {
        Some(n) => {
            let mut body = vec![0u8; n];
            reader.read_exact(&mut body)?;
            body
        }
        // Our server always sends Content-Length, but read-to-close is
        // the correct HTTP/1.1 fallback and costs nothing.
        None => {
            let mut body = Vec::new();
            reader.read_to_end(&mut body)?;
            body
        }
    };
    Ok(FetchedResponse { status, content_type, body })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_full_response() {
        let raw = b"HTTP/1.1 404 Not Found\r\nContent-Type: text/plain\r\nContent-Length: 6\r\n\r\nnope\n!";
        let resp = read_response(&mut &raw[..]).unwrap();
        assert_eq!(resp.status, 404);
        assert_eq!(resp.content_type, "text/plain");
        assert_eq!(resp.body, b"nope\n!");
    }

    #[test]
    fn missing_length_reads_to_close() {
        let raw = b"HTTP/1.1 200 OK\r\n\r\nrest of stream";
        let resp = read_response(&mut &raw[..]).unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.text(), "rest of stream");
    }

    #[test]
    fn garbage_is_a_typed_io_error() {
        assert!(read_response(&mut &b"not http at all\r\n\r\n"[..]).is_err());
        assert!(read_response(&mut &b"HTTP/1.1 200 OK\r\nContent-Length: 99\r\n\r\nshort"[..]).is_err());
    }
}
