//! Per-endpoint request, latency and cache counters.
//!
//! Lock-free `AtomicU64` counters, rendered in Prometheus text exposition
//! format at `GET /metrics`. Endpoints are a small fixed set so the
//! counters live in a flat array — no locking, no allocation on the hot
//! path.

use std::sync::atomic::{AtomicU64, Ordering};

/// The served endpoints (fixed at compile time).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Endpoint {
    /// `GET /search`.
    Search,
    /// `GET /topics/{id}`.
    Topics,
    /// `GET /hierarchy`.
    Hierarchy,
    /// `GET /healthz`.
    Healthz,
    /// `GET /metrics`.
    Metrics,
    /// `GET /internal/search` and `GET /internal/qparts` (shard fan-out
    /// traffic from a front tier).
    Internal,
    /// `POST /query`.
    Query,
    /// Anything else (404/405/400 traffic).
    Other,
}

impl Endpoint {
    const ALL: [Endpoint; 8] = [
        Endpoint::Search,
        Endpoint::Topics,
        Endpoint::Hierarchy,
        Endpoint::Healthz,
        Endpoint::Metrics,
        Endpoint::Internal,
        Endpoint::Query,
        Endpoint::Other,
    ];

    fn index(self) -> usize {
        match self {
            Endpoint::Search => 0,
            Endpoint::Topics => 1,
            Endpoint::Hierarchy => 2,
            Endpoint::Healthz => 3,
            Endpoint::Metrics => 4,
            Endpoint::Internal => 5,
            Endpoint::Query => 6,
            Endpoint::Other => 7,
        }
    }

    /// The label value used in the exposition format.
    pub fn name(self) -> &'static str {
        match self {
            Endpoint::Search => "search",
            Endpoint::Topics => "topics",
            Endpoint::Hierarchy => "hierarchy",
            Endpoint::Healthz => "healthz",
            Endpoint::Metrics => "metrics",
            Endpoint::Internal => "internal",
            Endpoint::Query => "query",
            Endpoint::Other => "other",
        }
    }
}

#[derive(Debug, Default)]
struct EndpointCounters {
    requests: AtomicU64,
    errors: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    latency_us_total: AtomicU64,
    latency_us_max: AtomicU64,
}

/// All server counters.
#[derive(Debug, Default)]
pub struct Metrics {
    endpoints: [EndpointCounters; 8],
    shed: AtomicU64,
}

impl Metrics {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    fn at(&self, e: Endpoint) -> &EndpointCounters {
        &self.endpoints[e.index()]
    }

    /// Records one completed request: its endpoint, whether the response
    /// was an error status, and the handling latency.
    pub fn record_request(&self, e: Endpoint, error: bool, latency: std::time::Duration) {
        let c = self.at(e);
        c.requests.fetch_add(1, Ordering::Relaxed);
        if error {
            c.errors.fetch_add(1, Ordering::Relaxed);
        }
        let us = u64::try_from(latency.as_micros()).unwrap_or(u64::MAX);
        c.latency_us_total.fetch_add(us, Ordering::Relaxed);
        c.latency_us_max.fetch_max(us, Ordering::Relaxed);
    }

    /// Records a response-cache hit.
    pub fn record_cache_hit(&self, e: Endpoint) {
        self.at(e).cache_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a response-cache miss.
    pub fn record_cache_miss(&self, e: Endpoint) {
        self.at(e).cache_misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a connection shed with 503 because the accept queue was
    /// full (backpressure, not handled by any worker).
    pub fn record_shed(&self) {
        self.shed.fetch_add(1, Ordering::Relaxed);
    }

    /// Connections shed so far (test hook).
    pub fn shed(&self) -> u64 {
        self.shed.load(Ordering::Relaxed)
    }

    /// Total requests recorded for `e` (test hook).
    pub fn requests(&self, e: Endpoint) -> u64 {
        self.at(e).requests.load(Ordering::Relaxed)
    }

    /// Cache hits recorded for `e` (test hook).
    pub fn cache_hits(&self, e: Endpoint) -> u64 {
        self.at(e).cache_hits.load(Ordering::Relaxed)
    }

    /// Cache misses recorded for `e` (test hook).
    pub fn cache_misses(&self, e: Endpoint) -> u64 {
        self.at(e).cache_misses.load(Ordering::Relaxed)
    }

    /// Renders every counter in Prometheus text exposition format.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::with_capacity(1024);
        out.push_str("# TYPE lesm_requests_total counter\n");
        out.push_str("# TYPE lesm_request_errors_total counter\n");
        out.push_str("# TYPE lesm_cache_hits_total counter\n");
        out.push_str("# TYPE lesm_cache_misses_total counter\n");
        out.push_str("# TYPE lesm_request_latency_us_total counter\n");
        out.push_str("# TYPE lesm_request_latency_us_max gauge\n");
        out.push_str("# TYPE lesm_connections_shed_total counter\n");
        let _ = writeln!(out, "lesm_connections_shed_total {}", self.shed.load(Ordering::Relaxed));
        for e in Endpoint::ALL {
            let c = self.at(e);
            let name = e.name();
            let _ = writeln!(
                out,
                "lesm_requests_total{{endpoint=\"{name}\"}} {}",
                c.requests.load(Ordering::Relaxed)
            );
            let _ = writeln!(
                out,
                "lesm_request_errors_total{{endpoint=\"{name}\"}} {}",
                c.errors.load(Ordering::Relaxed)
            );
            let _ = writeln!(
                out,
                "lesm_cache_hits_total{{endpoint=\"{name}\"}} {}",
                c.cache_hits.load(Ordering::Relaxed)
            );
            let _ = writeln!(
                out,
                "lesm_cache_misses_total{{endpoint=\"{name}\"}} {}",
                c.cache_misses.load(Ordering::Relaxed)
            );
            let _ = writeln!(
                out,
                "lesm_request_latency_us_total{{endpoint=\"{name}\"}} {}",
                c.latency_us_total.load(Ordering::Relaxed)
            );
            let _ = writeln!(
                out,
                "lesm_request_latency_us_max{{endpoint=\"{name}\"}} {}",
                c.latency_us_max.load(Ordering::Relaxed)
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn counters_accumulate_and_render() {
        let m = Metrics::new();
        m.record_request(Endpoint::Search, false, Duration::from_micros(150));
        m.record_request(Endpoint::Search, true, Duration::from_micros(50));
        m.record_cache_hit(Endpoint::Search);
        m.record_cache_miss(Endpoint::Search);
        m.record_cache_miss(Endpoint::Search);
        assert_eq!(m.requests(Endpoint::Search), 2);
        assert_eq!(m.cache_hits(Endpoint::Search), 1);
        assert_eq!(m.cache_misses(Endpoint::Search), 2);
        let text = m.render();
        assert!(text.contains("lesm_requests_total{endpoint=\"search\"} 2"));
        assert!(text.contains("lesm_request_errors_total{endpoint=\"search\"} 1"));
        assert!(text.contains("lesm_cache_hits_total{endpoint=\"search\"} 1"));
        assert!(text.contains("lesm_request_latency_us_total{endpoint=\"search\"} 200"));
        assert!(text.contains("lesm_request_latency_us_max{endpoint=\"search\"} 150"));
        assert!(text.contains("lesm_requests_total{endpoint=\"hierarchy\"} 0"));
        assert!(text.contains("lesm_requests_total{endpoint=\"internal\"} 0"));
        assert!(text.contains("lesm_requests_total{endpoint=\"query\"} 0"));
        m.record_shed();
        m.record_shed();
        assert_eq!(m.shed(), 2);
        assert!(m.render().contains("lesm_connections_shed_total 2"));
    }
}
