//! Length-prefixed binary records (the snapshot wire format primitives).
//!
//! The upstream design would lean on the `bytes` crate's `BufMut`/`Buf`
//! pair; the build environment has no registry access, so this module
//! hand-rolls the same discipline: little-endian fixed-width integers,
//! `f64` stored as raw IEEE-754 bits (so round trips are bit-identical,
//! including NaN payloads and `-0.0`), and `u64` length prefixes for
//! strings and sequences.
//!
//! Every read is bounds-checked: a truncated or corrupted buffer yields
//! [`SnapshotError::Truncated`] / [`SnapshotError::Malformed`], never a
//! panic or an unbounded allocation.

use crate::SnapshotError;

/// Append-only record writer.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// An empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// The bytes written so far.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Current length in bytes.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends raw bytes verbatim.
    pub fn put_raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `usize` as `u64` (snapshots are architecture-neutral).
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Appends a little-endian `i32`.
    pub fn put_i32(&mut self, v: i32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` as its raw bit pattern (bit-identical round trip).
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_usize(s.len());
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Appends a length-prefixed `u32` sequence.
    pub fn put_u32_seq(&mut self, xs: &[u32]) {
        self.put_usize(xs.len());
        for &x in xs {
            self.put_u32(x);
        }
    }

    /// Appends a length-prefixed `f64` sequence (raw bits).
    pub fn put_f64_seq(&mut self, xs: &[f64]) {
        self.put_usize(xs.len());
        for &x in xs {
            self.put_f64(x);
        }
    }

    /// Appends an `Option` as a presence byte plus the value.
    pub fn put_option<T>(&mut self, v: Option<&T>, put: impl FnOnce(&mut Self, &T)) {
        match v {
            None => self.put_u8(0),
            Some(x) => {
                self.put_u8(1);
                put(self, x);
            }
        }
    }
}

/// Bounds-checked sequential reader over a snapshot byte slice.
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// A reader positioned at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Current read offset.
    pub fn position(&self) -> usize {
        self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        if self.remaining() < n {
            return Err(SnapshotError::Truncated {
                offset: self.pos,
                needed: n,
                available: self.remaining(),
            });
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Reads exactly `N` bytes into a fixed-size array. `take` already
    /// guarantees the length, so this has no panic path.
    fn take_array<const N: usize>(&mut self) -> Result<[u8; N], SnapshotError> {
        let mut out = [0u8; N];
        out.copy_from_slice(self.take(N)?);
        Ok(out)
    }

    /// Reads one byte.
    pub fn get_u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(self.take_array::<4>()?))
    }

    /// Reads a little-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(self.take_array::<8>()?))
    }

    /// Reads a `u64` length prefix, rejecting values that cannot possibly
    /// fit in the remaining buffer (`min_item_size` bytes per element).
    /// This keeps corrupted length fields from driving huge allocations.
    pub fn get_len(&mut self, min_item_size: usize) -> Result<usize, SnapshotError> {
        let at = self.pos;
        let raw = self.get_u64()?;
        let len = usize::try_from(raw).map_err(|_| SnapshotError::Malformed {
            offset: at,
            what: format!("length {raw} overflows usize"),
        })?;
        let floor = len.saturating_mul(min_item_size.max(1));
        if floor > self.remaining() {
            return Err(SnapshotError::Truncated {
                offset: at,
                needed: floor,
                available: self.remaining(),
            });
        }
        Ok(len)
    }

    /// Reads a little-endian `i32`.
    pub fn get_i32(&mut self) -> Result<i32, SnapshotError> {
        Ok(i32::from_le_bytes(self.take_array::<4>()?))
    }

    /// Reads an `f64` from its raw bit pattern.
    pub fn get_f64(&mut self) -> Result<f64, SnapshotError> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Result<String, SnapshotError> {
        let len = self.get_len(1)?;
        let at = self.pos;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| SnapshotError::Malformed {
            offset: at,
            what: "string is not valid UTF-8".into(),
        })
    }

    /// Reads a length-prefixed `u32` sequence.
    pub fn get_u32_seq(&mut self) -> Result<Vec<u32>, SnapshotError> {
        let len = self.get_len(4)?;
        (0..len).map(|_| self.get_u32()).collect()
    }

    /// Reads a length-prefixed `f64` sequence.
    pub fn get_f64_seq(&mut self) -> Result<Vec<f64>, SnapshotError> {
        let len = self.get_len(8)?;
        (0..len).map(|_| self.get_f64()).collect()
    }

    /// Reads an `Option` written by [`ByteWriter::put_option`].
    pub fn get_option<T>(
        &mut self,
        get: impl FnOnce(&mut Self) -> Result<T, SnapshotError>,
    ) -> Result<Option<T>, SnapshotError> {
        let at = self.pos;
        match self.get_u8()? {
            0 => Ok(None),
            1 => Ok(Some(get(self)?)),
            tag => Err(SnapshotError::Malformed {
                offset: at,
                what: format!("invalid Option tag {tag}"),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrip_is_bit_identical() {
        let mut w = ByteWriter::new();
        w.put_u8(7);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX);
        w.put_i32(-42);
        w.put_f64(-0.0);
        w.put_f64(f64::from_bits(0x7FF8_0000_0000_1234)); // NaN with payload
        w.put_str("snapshot ✓");
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.get_u8().unwrap(), 7);
        assert_eq!(r.get_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64().unwrap(), u64::MAX);
        assert_eq!(r.get_i32().unwrap(), -42);
        assert_eq!(r.get_f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert_eq!(r.get_f64().unwrap().to_bits(), 0x7FF8_0000_0000_1234);
        assert_eq!(r.get_str().unwrap(), "snapshot ✓");
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn truncated_reads_are_typed_errors() {
        let mut w = ByteWriter::new();
        w.put_u64(5);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes[..6]);
        assert!(matches!(r.get_u64(), Err(SnapshotError::Truncated { .. })));
    }

    #[test]
    fn oversized_length_prefix_is_rejected_without_allocating() {
        let mut w = ByteWriter::new();
        w.put_u64(u64::MAX); // claims ~2^64 elements
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert!(matches!(
            r.get_u32_seq(),
            Err(SnapshotError::Truncated { .. } | SnapshotError::Malformed { .. })
        ));
    }

    #[test]
    fn option_tags_are_validated() {
        let bytes = vec![2u8];
        let mut r = ByteReader::new(&bytes);
        assert!(matches!(
            r.get_option(|r| r.get_u8()),
            Err(SnapshotError::Malformed { .. })
        ));
    }
}
