//! Query evaluation over either backing store: an owned [`Snapshot`]
//! (format v1) or a zero-copy [`MappedSnapshot`] (format v2).
//!
//! The mapped implementations mirror `lesm_core::search`,
//! `MinedStructure::render_topic`, and `lesm_core::export::hierarchy_to_json`
//! *exactly* — same traversal order, same float summation order (the v2
//! phrase-frequency entries are stored in the sorted-key order the owned
//! path sorts into), same tie-breaks, same fallback strings — so the two
//! backends produce byte-identical responses for the same model
//! (property-tested in `tests/v2_snapshot_tests.rs`). That identity is
//! what lets a sharded v2 tier answer underneath the DESIGN.md §11
//! determinism contract.

use crate::v2::MappedSnapshot;
use crate::{Snapshot, SnapshotError};
use lesm_core::export::{hierarchy_to_json, json_number, json_string};
use lesm_core::search::{render_hits, search, SearchHit};

/// A loaded model: the version-dispatched union of the two snapshot
/// formats, presenting one deterministic query interface.
#[derive(Debug)]
pub enum Model {
    /// A fully deserialized v1 snapshot.
    Owned(Box<Snapshot>),
    /// A zero-copy mapped v2 snapshot.
    Mapped(Box<MappedSnapshot>),
}

/// Loads the artifact at `path`, dispatching on the stored format
/// version: v1 loads via the full deserializer, v2 maps zero-copy. Other
/// versions surface [`SnapshotError::VersionMismatch`].
pub fn load_model_file(path: &str) -> Result<Model, SnapshotError> {
    match crate::v2::snapshot_version_file(path)? {
        1 => Ok(Model::Owned(Box::new(crate::snapshot::load_snapshot_file(path)?))),
        _ => Ok(Model::Mapped(Box::new(MappedSnapshot::open(path)?))),
    }
}

impl Model {
    /// Number of topics in the hierarchy.
    pub fn num_topics(&self) -> usize {
        match self {
            Model::Owned(s) => s.mined.hierarchy.len(),
            Model::Mapped(m) => m.num_topics(),
        }
    }

    /// Number of documents (shard-local).
    pub fn num_docs(&self) -> usize {
        match self {
            Model::Owned(s) => s.corpus.num_docs(),
            Model::Mapped(m) => m.num_docs(),
        }
    }

    /// Ranked search over the model: one rendered line per hit, exactly
    /// as `lesm search` prints them. Document numbers are global ids.
    pub fn search_lines(&self, query: &str, top: usize) -> Vec<String> {
        match self {
            Model::Owned(s) => {
                let hits = search(&s.corpus, &s.mined, query, top);
                render_hits(&s.corpus, &s.mined, &hits)
            }
            Model::Mapped(m) => {
                search_view(m, query, top).iter().map(|h| render_hit_line(m, h)).collect()
            }
        }
    }

    /// Search lines for shard fan-out: each line carries the raw score
    /// bits (hex) and the global document id ahead of the rendered line,
    /// so a front tier can merge shard results in the exact total order
    /// a single server would produce, then strip the prefix.
    pub fn internal_search_lines(&self, query: &str, top: usize) -> Vec<String> {
        match self {
            Model::Owned(s) => {
                let hits = search(&s.corpus, &s.mined, query, top);
                let lines = render_hits(&s.corpus, &s.mined, &hits);
                hits.iter()
                    .zip(lines)
                    .map(|(h, line)| format!("{:016x} {} {}", h.score.to_bits(), h.doc, line))
                    .collect()
            }
            Model::Mapped(m) => search_view(m, query, top)
                .iter()
                .map(|h| {
                    format!(
                        "{:016x} {} {}",
                        h.score.to_bits(),
                        m.doc_id(h.doc),
                        render_hit_line(m, h)
                    )
                })
                .collect(),
        }
    }

    /// Renders topic `t` (phrases + entities), or `None` out of range.
    pub fn render_topic(&self, t: usize, n: usize) -> Option<String> {
        if t >= self.num_topics() {
            return None;
        }
        Some(match self {
            Model::Owned(s) => s.mined.render_topic(&s.corpus, t, n),
            Model::Mapped(m) => render_topic_view(m, t, n),
        })
    }

    /// The full hierarchy as pretty-printed JSON.
    pub fn hierarchy_json(&self, top_n: usize) -> String {
        match self {
            Model::Owned(s) => hierarchy_to_json(&s.corpus, &s.mined, top_n),
            Model::Mapped(m) => hierarchy_to_json_view(m, top_n),
        }
    }

    /// Extracts the canonical [`lesm_query::IndexParts`] for the query
    /// engine. The owned path reads the model directly; the mapped path
    /// fully decodes the cold section once (query-index construction is a
    /// cold, memoized event — see `ServerState`) and keys documents by
    /// their **global** ids, so owned-vs-mapped and sharded-vs-unsharded
    /// builds are byte-identical downstream (DESIGN.md §14).
    pub fn query_parts(&self) -> Result<lesm_query::IndexParts, String> {
        match self {
            Model::Owned(s) => {
                lesm_query::IndexParts::from_model(&s.corpus, &s.mined, None)
                    .map_err(|e| e.to_string())
            }
            Model::Mapped(m) => {
                let ids: Vec<u64> = (0..m.num_docs()).map(|d| m.doc_id(d)).collect();
                let snap = m.to_snapshot().map_err(|e| e.to_string())?;
                lesm_query::IndexParts::from_model(&snap.corpus, &snap.mined, Some(&ids))
                    .map_err(|e| e.to_string())
            }
        }
    }
}

/// Query text → known token ids (mirrors `lesm_core::search::search`).
fn tokenize_query(m: &MappedSnapshot, query_text: &str) -> Vec<u32> {
    lesm_corpus::text::tokenize(query_text)
        .filter_map(|t| m.word_id(&lesm_corpus::text::lowercase(t)))
        .collect()
}

/// View twin of `lesm_core::search::rank_topics`: identical scores in
/// identical order, because the stored phrase-frequency entry order *is*
/// the sorted-key order the owned path sums in.
pub fn rank_topics_view(m: &MappedSnapshot, query: &[u32], top_n: usize) -> Vec<(usize, f64)> {
    let mut scored: Vec<(usize, f64)> = (0..m.num_topics())
        .map(|t| {
            let count = m.ptf_count(t);
            let mut total = 0.0;
            for i in 0..count {
                total += m.ptf_entry(t, i).1;
            }
            if total <= 0.0 {
                return (t, 0.0);
            }
            let mut hit = 0.0;
            for i in 0..count {
                let (phrase, f) = m.ptf_entry(t, i);
                if query.iter().any(|q| phrase.contains(q)) {
                    hit += f;
                }
            }
            (t, hit / total)
        })
        .collect();
    scored.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    scored.truncate(top_n);
    scored
}

/// View twin of `lesm_core::search::search`. `SearchHit::doc` is the
/// *local* document index (use [`MappedSnapshot::doc_id`] to render).
pub fn search_view(m: &MappedSnapshot, query_text: &str, top_n: usize) -> Vec<SearchHit> {
    let query = tokenize_query(m, query_text);
    if query.is_empty() {
        return Vec::new();
    }
    let topics = rank_topics_view(m, &query, 3);
    let best_topic =
        topics.iter().find(|&&(t, s)| t != 0 && s > 0.0).map(|&(t, _)| t).unwrap_or(0);
    let mut hits: Vec<SearchHit> = (0..m.num_docs())
        .filter_map(|d| {
            let tokens = m.doc_tokens(d);
            let matched = query.iter().filter(|q| tokens.contains(q)).count();
            let overlap = matched as f64 / query.len() as f64;
            let topical = m.doc_topic(d, best_topic);
            let score = overlap + topical;
            if matched == 0 && topical <= 0.0 {
                None
            } else {
                Some(SearchHit { doc: d, score, topic: best_topic })
            }
        })
        .collect();
    hits.sort_by(|a, b| b.score.total_cmp(&a.score).then_with(|| a.doc.cmp(&b.doc)));
    hits.truncate(top_n);
    hits
}

/// View twin of `lesm_core::search::render_hits` for a single hit. The
/// printed document number is the hit's *global* id, so shard output
/// matches what an unsharded server prints for the same document.
pub fn render_hit_line(m: &MappedSnapshot, hit: &SearchHit) -> String {
    format!(
        "doc {:>5}  score {:.3}  topic {}  {}",
        m.doc_id(hit.doc),
        hit.score,
        m.path(hit.topic),
        m.render_doc(hit.doc)
    )
}

/// View twin of `MinedStructure::render_topic`.
pub fn render_topic_view(m: &MappedSnapshot, t: usize, n: usize) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let _ = write!(s, "[{}] ", m.path(t));
    let phrases: Vec<String> = (0..m.phrase_count(t).min(n))
        .map(|i| m.render_tokens(m.phrase(t, i).0))
        .collect();
    let _ = write!(s, "{{{}}}", phrases.join("; "));
    for x in 0..m.entity_cells(t) {
        let (ids, _) = m.topic_entities(t, x);
        let names: Vec<&str> = ids.iter().take(n).map(|&id| m.entity_name(x, id)).collect();
        let _ = write!(s, " / {{{}}}", names.join("; "));
    }
    s
}

/// View twin of `lesm_core::export::hierarchy_to_json`, byte-identical
/// for the same model.
pub fn hierarchy_to_json_view(m: &MappedSnapshot, top_n: usize) -> String {
    let mut out = String::with_capacity(4096);
    out.push_str("{\n  \"topics\": [\n");
    let n = m.num_topics();
    for t in 0..n {
        out.push_str("    {\n");
        push_kv(&mut out, 6, "path", &json_string(m.path(t)));
        push_kv(&mut out, 6, "parent", &match m.parent(t) {
            Some(p) => p.to_string(),
            None => "null".into(),
        });
        push_kv(&mut out, 6, "level", &m.level(t).to_string());
        push_kv(&mut out, 6, "rho", &json_number(m.rho(t)));
        out.push_str("      \"phrases\": [");
        for i in 0..m.phrase_count(t).min(top_n) {
            if i > 0 {
                out.push_str(", ");
            }
            let (tokens, score, freq) = m.phrase(t, i);
            out.push_str(&format!(
                "{{\"text\": {}, \"score\": {}, \"freq\": {}}}",
                json_string(&m.render_tokens(tokens)),
                json_number(score),
                json_number(freq)
            ));
        }
        out.push_str("],\n");
        out.push_str("      \"entities\": {");
        for x in 0..m.entity_cells(t) {
            if x > 0 {
                out.push_str(", ");
            }
            let type_name = m.type_name(x).unwrap_or("entity");
            out.push_str(&format!("{}: [", json_string(type_name)));
            let (ids, scores) = m.topic_entities(t, x);
            for (i, (&id, &score)) in ids.iter().zip(scores).take(top_n).enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!(
                    "{{\"name\": {}, \"score\": {}}}",
                    json_string(m.entity_name(x, id)),
                    json_number(score)
                ));
            }
            out.push(']');
        }
        out.push_str("},\n");
        out.push_str(&format!(
            "      \"children\": [{}]\n",
            m.children(t).iter().map(u64::to_string).collect::<Vec<_>>().join(", ")
        ));
        out.push_str(if t + 1 < n { "    },\n" } else { "    }\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

fn push_kv(out: &mut String, indent: usize, key: &str, value: &str) {
    out.push_str(&" ".repeat(indent));
    out.push_str(&format!("\"{key}\": {value},\n"));
}
