//! Snapshot store guarantees, property-tested:
//!
//! 1. `load(save(m))` is bit-identical to `m` — checked by re-saving the
//!    loaded value and comparing artifacts byte-for-byte (save is a
//!    deterministic function of the value: sorted map order, raw f64
//!    bits), and by comparing every rendered view of the structure.
//! 2. Corrupted, truncated, or version-skewed artifacts surface as typed
//!    [`SnapshotError`]s — never panics, never a silently wrong load.

use lesm_core::export::hierarchy_to_json;
use lesm_core::pipeline::{LatentStructureMiner, MinedStructure, MinerConfig};
use lesm_core::search::{render_hits, search};
use lesm_corpus::synth::{PapersConfig, SyntheticPapers};
use lesm_corpus::{Corpus, Doc, EntityRef};
use lesm_hier::hierarchy::HierTopic;
use lesm_hier::TopicHierarchy;
use lesm_net::TypedNetwork;
use lesm_phrases::TopicalPhrase;
use lesm_serve::{load_snapshot, save_snapshot, SnapshotError, FORMAT_VERSION};
use proptest::collection::vec;
use proptest::prelude::*;
use std::collections::HashMap;

/// Mines a small real structure with the actual pipeline.
fn mined_fixture() -> (Corpus, MinedStructure) {
    let papers = SyntheticPapers::generate(&PapersConfig::dblp(60, 42)).expect("synth corpus");
    let mut config = MinerConfig::default();
    config.hierarchy.max_depth = 1;
    config.phrase_min_support = 2;
    config.threads = 2;
    let mined = LatentStructureMiner::mine(&papers.corpus, &config).expect("mine");
    (papers.corpus, mined)
}

/// Hand-builds a two-topic structure whose every field is populated from
/// the given words and raw score bits, including documents, segments,
/// topical frequency tables, and doc-topic rows.
fn synthetic_structure(words: &[String], score_bits: &[u64]) -> (Corpus, MinedStructure) {
    let mut corpus = Corpus::new();
    let etype = corpus.entities.add_type("author");
    let mut ids = Vec::new();
    for w in words {
        ids.push(corpus.vocab.intern(w));
    }
    for (i, w) in words.iter().enumerate() {
        corpus.entities.intern(etype, w).expect("known type");
        corpus.docs.push(Doc {
            tokens: ids.clone(),
            entities: vec![EntityRef::new(etype, i as u32)],
            label: if i % 2 == 0 { Some(i as u32) } else { None },
            year: if i % 3 == 0 { Some(2000 + i as i32) } else { None },
        });
    }
    let score = |i: usize| f64::from_bits(score_bits[i % score_bits.len()]);
    let topic = |parent, level, path: &str, children: Vec<usize>| HierTopic {
        parent,
        children,
        level,
        path: path.into(),
        phi: vec![vec![score(0), score(1)]],
        rho: score(2),
        network: TypedNetwork::new(vec![], vec![]),
    };
    let hierarchy = TopicHierarchy {
        type_names: vec!["author".into()],
        topics: vec![topic(None, 0, "o", vec![1]), topic(Some(0), 1, "o/1", vec![])],
        fits: vec![None, None],
        alphas: vec![Some(vec![score(3)]), None],
    };
    let phrases: Vec<TopicalPhrase> = ids
        .iter()
        .enumerate()
        .map(|(i, &id)| TopicalPhrase { tokens: vec![id], score: score(i), topic_freq: score(i + 1) })
        .collect();
    let entities: Vec<(u32, f64)> =
        (0..corpus.entities.count(etype) as u32).map(|i| (i, score(i as usize))).collect();
    let mut freq = HashMap::new();
    for (i, &id) in ids.iter().enumerate() {
        freq.insert(vec![id], score(i));
        if i + 1 < ids.len() {
            freq.insert(vec![id, ids[i + 1]], score(i + 2));
        }
    }
    let n_docs = corpus.docs.len();
    let mined = MinedStructure {
        hierarchy,
        topic_phrases: vec![phrases.clone(), phrases],
        topic_entities: vec![vec![entities.clone()], vec![entities]],
        phrase_topic_freq: vec![freq.clone(), freq],
        segments: (0..n_docs).map(|_| vec![ids.clone()]).collect(),
        doc_topic: (0..n_docs).map(|d| vec![score(d), score(d + 1)]).collect(),
    };
    (corpus, mined)
}

/// Byte-level round-trip check: save, load, re-save, compare artifacts.
fn assert_round_trip(corpus: &Corpus, mined: &MinedStructure) -> Vec<u8> {
    let bytes = save_snapshot(corpus, mined).expect("save");
    let snap = load_snapshot(&bytes).expect("load back what we saved");
    let again = save_snapshot(&snap.corpus, &snap.mined).expect("save");
    assert_eq!(bytes, again, "save(load(save(m))) differs from save(m)");
    bytes
}

#[test]
fn real_mined_structure_round_trips_bit_identically() {
    let (corpus, mined) = mined_fixture();
    let bytes = save_snapshot(&corpus, &mined).expect("save");
    let snap = load_snapshot(&bytes).expect("load");
    // Re-saving the loaded value reproduces the artifact bit-for-bit.
    assert_eq!(bytes, save_snapshot(&snap.corpus, &snap.mined).expect("save"));
    // Every served view matches the offline original exactly.
    assert_eq!(
        hierarchy_to_json(&corpus, &mined, 10),
        hierarchy_to_json(&snap.corpus, &snap.mined, 10)
    );
    for t in 0..mined.hierarchy.len() {
        assert_eq!(
            mined.render_topic(&corpus, t, 10),
            snap.mined.render_topic(&snap.corpus, t, 10),
            "topic {t} renders differently after round-trip"
        );
    }
    let hits = search(&corpus, &mined, "mining", 10);
    let loaded_hits = search(&snap.corpus, &snap.mined, "mining", 10);
    assert_eq!(hits, loaded_hits);
    assert_eq!(
        render_hits(&corpus, &mined, &hits),
        render_hits(&snap.corpus, &snap.mined, &loaded_hits)
    );
}

#[test]
fn truncated_artifacts_report_typed_errors_never_panic() {
    let (corpus, mined) = synthetic_structure(
        &["mining".into(), "latent".into(), "structures".into()],
        &[1.0f64.to_bits(), 0.25f64.to_bits()],
    );
    let bytes = assert_round_trip(&corpus, &mined);
    for len in 0..bytes.len() {
        let err = load_snapshot(&bytes[..len]).expect_err("truncated artifact must not load");
        match err {
            SnapshotError::Truncated { .. }
            | SnapshotError::ChecksumMismatch { .. }
            | SnapshotError::Malformed { .. } => {}
            other => panic!("unexpected error for prefix of {len} bytes: {other}"),
        }
    }
}

#[test]
fn bad_magic_is_reported_with_the_found_bytes() {
    let (corpus, mined) = synthetic_structure(&["x".into()], &[1.0f64.to_bits()]);
    let mut bytes = save_snapshot(&corpus, &mined).expect("save");
    bytes[0] = b'X';
    match load_snapshot(&bytes) {
        Err(SnapshotError::BadMagic { found }) => assert_eq!(&found, b"XESM"),
        other => panic!("expected BadMagic, got {other:?}"),
    }
    // TSV input (the other CLI input format) is also just a bad magic.
    match load_snapshot(b"id\ttext\tauthors\n0\thello world\ta") {
        Err(SnapshotError::BadMagic { .. }) => {}
        other => panic!("expected BadMagic for TSV bytes, got {other:?}"),
    }
}

#[test]
fn version_skew_is_reported_before_the_checksum() {
    let (corpus, mined) = synthetic_structure(&["x".into()], &[1.0f64.to_bits()]);
    let mut bytes = save_snapshot(&corpus, &mined).expect("save");
    // Bump the version field without fixing the trailer: the loader must
    // still say "version mismatch", not "checksum mismatch".
    bytes[4..8].copy_from_slice(&(FORMAT_VERSION + 1).to_le_bytes());
    match load_snapshot(&bytes) {
        Err(SnapshotError::VersionMismatch { found, supported }) => {
            assert_eq!(found, FORMAT_VERSION + 1);
            assert_eq!(supported, FORMAT_VERSION);
        }
        other => panic!("expected VersionMismatch, got {other:?}"),
    }
}

#[test]
fn payload_corruption_fails_the_checksum() {
    let (corpus, mined) = synthetic_structure(
        &["mining".into(), "latent".into()],
        &[1.0f64.to_bits()],
    );
    let mut bytes = save_snapshot(&corpus, &mined).expect("save");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xff;
    match load_snapshot(&bytes) {
        Err(SnapshotError::ChecksumMismatch { expected, actual }) => {
            assert_ne!(expected, actual);
        }
        other => panic!("expected ChecksumMismatch, got {other:?}"),
    }
}

// Words drawn from a deliberately hostile alphabet (quotes, backslashes,
// control characters, whitespace) and scores from arbitrary bit patterns
// (NaNs with payloads, infinities, subnormals, -0.0).
const NASTY: &str = "[a-z\"\\\u{0}-\u{8} ]{1,6}";

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn randomized_structures_round_trip(
        words in vec(NASTY, 1..5),
        score_bits in vec(0u64..=u64::MAX, 1..6),
    ) {
        let (corpus, mined) = synthetic_structure(&words, &score_bits);
        let bytes = save_snapshot(&corpus, &mined).expect("save");
        let snap = load_snapshot(&bytes).expect("load");
        prop_assert_eq!(bytes, save_snapshot(&snap.corpus, &snap.mined).expect("save"));
    }

    #[test]
    fn any_single_byte_flip_is_a_typed_error(
        pos_seed in 0usize..10_000,
        flip in 1u8..=255,
    ) {
        let (corpus, mined) = synthetic_structure(
            &["mining".into(), "latent".into()],
            &[0.5f64.to_bits(), 2.0f64.to_bits()],
        );
        let mut bytes = save_snapshot(&corpus, &mined).expect("save");
        let pos = pos_seed % bytes.len();
        bytes[pos] ^= flip;
        // FNV-1a absorbs bytes through bijective steps, so any single-byte
        // change in the body flips the trailer check; changes in the magic,
        // version, or trailer hit their own typed checks. Loading must
        // return an error — and must never panic.
        prop_assert!(load_snapshot(&bytes).is_err());
    }
}
