//! End-to-end tests for the query server: mine a synthetic corpus once,
//! snapshot it, serve it on an ephemeral port, and check that concurrent
//! clients get responses byte-identical to the offline CLI/export output —
//! for any worker count.

use lesm_core::pipeline::{LatentStructureMiner, MinedStructure, MinerConfig};
use lesm_corpus::synth::{PapersConfig, SyntheticPapers};
use lesm_corpus::Corpus;
use lesm_serve::server::{Server, ServerConfig};
use lesm_serve::{load_snapshot, save_snapshot, ServerHandle};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

fn fixture() -> (Corpus, MinedStructure) {
    let papers = SyntheticPapers::generate(&PapersConfig::dblp(80, 9)).expect("synth corpus");
    let mut config = MinerConfig::default();
    config.hierarchy.max_depth = 1;
    config.phrase_min_support = 2;
    config.threads = 2;
    let mined = LatentStructureMiner::mine(&papers.corpus, &config).expect("mine");
    (papers.corpus, mined)
}

fn start(corpus: &Corpus, mined: &MinedStructure, workers: usize) -> ServerHandle {
    let snap = load_snapshot(&save_snapshot(corpus, mined).expect("save")).expect("round-trip");
    let config = ServerConfig { workers, ..ServerConfig::default() };
    Server::start(snap, config).expect("bind ephemeral port")
}

/// Minimal HTTP/1.1 client: one request, reads to EOF (the server sends
/// `Connection: close`). Returns `(status, body)`.
fn get(addr: std::net::SocketAddr, target: &str) -> (u16, Vec<u8>) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    write!(stream, "GET {target} HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n").unwrap();
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read response");
    let header_end = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .expect("complete response head");
    let head = std::str::from_utf8(&raw[..header_end]).expect("utf-8 head");
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status code");
    (status, raw[header_end + 4..].to_vec())
}

/// The offline rendering `/search` must match byte-for-byte: one CLI hit
/// line per result, each newline-terminated.
fn offline_search_body(corpus: &Corpus, mined: &MinedStructure, query: &str, top: usize) -> Vec<u8> {
    let hits = lesm_core::search::search(corpus, mined, query, top);
    let mut body = String::new();
    for line in lesm_core::search::render_hits(corpus, mined, &hits) {
        body.push_str(&line);
        body.push('\n');
    }
    body.into_bytes()
}

#[test]
fn responses_are_byte_identical_to_offline_output() {
    let (corpus, mined) = fixture();
    let handle = start(&corpus, &mined, 4);
    let addr = handle.addr();

    let (status, body) = get(addr, "/search?q=mining&top=5");
    assert_eq!(status, 200);
    assert_eq!(body, offline_search_body(&corpus, &mined, "mining", 5));

    // Default top matches the CLI's fixed 10.
    let (status, body) = get(addr, "/search?q=data+mining");
    assert_eq!(status, 200);
    assert_eq!(body, offline_search_body(&corpus, &mined, "data mining", 10));

    let (status, body) = get(addr, "/hierarchy");
    assert_eq!(status, 200);
    assert_eq!(body, lesm_core::export::hierarchy_to_json(&corpus, &mined, 10).into_bytes());

    for t in 0..mined.hierarchy.len() {
        let (status, body) = get(addr, &format!("/topics/{t}"));
        assert_eq!(status, 200, "topic {t}");
        let mut expected = mined.render_topic(&corpus, t, 10);
        expected.push('\n');
        assert_eq!(body, expected.into_bytes(), "topic {t}");
    }

    handle.shutdown();
}

#[test]
fn worker_count_does_not_change_any_response() {
    let (corpus, mined) = fixture();
    let targets = [
        "/search?q=mining&top=3",
        "/search?q=database+systems",
        "/hierarchy",
        "/topics/0",
        "/topics/999999",
        "/search?q=",
        "/nope",
    ];
    let collect = |workers: usize| -> Vec<(u16, Vec<u8>)> {
        let handle = start(&corpus, &mined, workers);
        let out = targets.iter().map(|t| get(handle.addr(), t)).collect();
        handle.shutdown();
        out
    };
    assert_eq!(collect(1), collect(4));
}

#[test]
fn concurrent_clients_all_get_identical_correct_bodies() {
    let (corpus, mined) = fixture();
    let handle = start(&corpus, &mined, 4);
    let addr = handle.addr();
    let expected = offline_search_body(&corpus, &mined, "mining", 10);

    let clients: Vec<_> = (0..16)
        .map(|_| {
            let expected = expected.clone();
            std::thread::spawn(move || {
                for _ in 0..4 {
                    let (status, body) = get(addr, "/search?q=mining");
                    assert_eq!(status, 200);
                    assert_eq!(body, expected);
                }
            })
        })
        .collect();
    for c in clients {
        c.join().expect("client thread");
    }

    // 64 identical requests: exactly one cache miss, the rest hits.
    let m = handle.metrics();
    assert_eq!(m.requests(lesm_serve::metrics::Endpoint::Search), 64);
    assert_eq!(m.cache_misses(lesm_serve::metrics::Endpoint::Search), 1);
    assert_eq!(m.cache_hits(lesm_serve::metrics::Endpoint::Search), 63);
    assert_eq!(handle.cached_responses(), 1);
    handle.shutdown();
}

#[test]
fn health_metrics_and_errors_are_served() {
    let (corpus, mined) = fixture();
    let handle = start(&corpus, &mined, 2);
    let addr = handle.addr();

    let (status, body) = get(addr, "/healthz");
    assert_eq!((status, body.as_slice()), (200, b"ok\n".as_slice()));

    let (status, _) = get(addr, "/search?top=3"); // missing q
    assert_eq!(status, 400);
    let (status, _) = get(addr, "/search?q=x&top=zero");
    assert_eq!(status, 400);
    let (status, _) = get(addr, "/topics/notanumber");
    assert_eq!(status, 400);
    let (status, _) = get(addr, "/topics/123456");
    assert_eq!(status, 404);
    let (status, _) = get(addr, "/unknown");
    assert_eq!(status, 404);

    let (status, body) = get(addr, "/metrics");
    assert_eq!(status, 200);
    let text = String::from_utf8(body).expect("utf-8 metrics");
    assert!(text.contains("lesm_requests_total{endpoint=\"healthz\"} 1"), "{text}");
    assert!(text.contains("lesm_requests_total{endpoint=\"search\"} 2"), "{text}");
    assert!(text.contains("lesm_request_errors_total{endpoint=\"topics\"} 2"), "{text}");
    handle.shutdown();
}

#[test]
fn shutdown_file_stops_the_server() {
    let (corpus, mined) = fixture();
    let snap = load_snapshot(&save_snapshot(&corpus, &mined).expect("save")).expect("round-trip");
    let dir = std::env::temp_dir().join(format!("lesm-serve-e2e-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let stop_file = dir.join("stop");
    let config = ServerConfig {
        workers: 2,
        shutdown_file: Some(stop_file.clone()),
        ..ServerConfig::default()
    };
    let handle = Server::start(snap, config).expect("bind");
    let addr = handle.addr();
    let (status, _) = get(addr, "/healthz");
    assert_eq!(status, 200);

    std::fs::write(&stop_file, b"").unwrap();
    // join() returns once the acceptor notices the file and the workers
    // drain; a hang here fails the test via the harness timeout.
    handle.join();
    assert!(TcpStream::connect(addr).is_err() || {
        // Some platforms accept briefly in the TCP backlog even after the
        // listener closes; an actual request must fail either way.
        let mut s = TcpStream::connect(addr).unwrap();
        s.set_read_timeout(Some(Duration::from_millis(500))).unwrap();
        let _ = write!(s, "GET /healthz HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n");
        let mut buf = Vec::new();
        s.read_to_end(&mut buf).map(|_| buf.is_empty()).unwrap_or(true)
    });
    let _ = std::fs::remove_dir_all(&dir);
}
