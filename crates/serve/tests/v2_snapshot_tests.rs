//! Snapshot format v2 guarantees, mirroring the v1 battery in
//! `snapshot_proptests.rs`:
//!
//! 1. `to_snapshot(map(save_v2(m)))` is bit-identical to `m` (checked by
//!    comparing the deterministic v1 serialization of both, and by
//!    re-saving v2).
//! 2. Every *view* query (search, topic rendering, hierarchy JSON) is
//!    byte-identical to the owned query path — the property the sharded
//!    serve tier's determinism contract (DESIGN.md §11) rests on.
//! 3. Version dispatch: v1 artifacts still load as owned snapshots; the
//!    v2 loader reports v1 input as a typed `VersionMismatch` and vice
//!    versa.
//! 4. Truncation, byte flips, and misaligned buffers surface as typed
//!    [`SnapshotError`]s (or load correctly via the aligned-copy
//!    fallback) — never panics, never silently wrong data.

use lesm_core::export::hierarchy_to_json;
use lesm_core::pipeline::{LatentStructureMiner, MinedStructure, MinerConfig};
use lesm_core::search::{render_hits, search};
use lesm_corpus::synth::{PapersConfig, SyntheticPapers};
use lesm_corpus::{Corpus, Doc, EntityRef};
use lesm_hier::hierarchy::HierTopic;
use lesm_hier::TopicHierarchy;
use lesm_net::TypedNetwork;
use lesm_phrases::TopicalPhrase;
use lesm_serve::query::{hierarchy_to_json_view, render_topic_view};
use lesm_serve::{
    describe_artifact, load_model_file, load_snapshot, save_snapshot, save_snapshot_v2,
    save_snapshot_v2_with_ids, save_snapshot_v2_with_lineage, DeltaInfo, MappedSnapshot, Model,
    SnapshotError,
};
use proptest::collection::vec;
use proptest::prelude::*;
use std::collections::HashMap;

/// Mines a small real structure with the actual pipeline.
fn mined_fixture() -> (Corpus, MinedStructure) {
    let papers = SyntheticPapers::generate(&PapersConfig::dblp(60, 42)).expect("synth corpus");
    let mut config = MinerConfig::default();
    config.hierarchy.max_depth = 1;
    config.phrase_min_support = 2;
    config.threads = 2;
    let mined = LatentStructureMiner::mine(&papers.corpus, &config).expect("mine");
    (papers.corpus, mined)
}

/// Hand-builds a two-topic structure whose every field is populated from
/// the given words and raw score bits (same shape as the v1 battery).
fn synthetic_structure(words: &[String], score_bits: &[u64]) -> (Corpus, MinedStructure) {
    let mut corpus = Corpus::new();
    let etype = corpus.entities.add_type("author");
    let mut ids = Vec::new();
    for w in words {
        ids.push(corpus.vocab.intern(w));
    }
    for (i, w) in words.iter().enumerate() {
        corpus.entities.intern(etype, w).expect("known type");
        corpus.docs.push(Doc {
            tokens: ids.clone(),
            entities: vec![EntityRef::new(etype, i as u32)],
            label: if i % 2 == 0 { Some(i as u32) } else { None },
            year: if i % 3 == 0 { Some(2000 + i as i32) } else { None },
        });
    }
    let score = |i: usize| f64::from_bits(score_bits[i % score_bits.len()]);
    let topic = |parent, level, path: &str, children: Vec<usize>| HierTopic {
        parent,
        children,
        level,
        path: path.into(),
        phi: vec![vec![score(0), score(1)]],
        rho: score(2),
        network: TypedNetwork::new(vec![], vec![]),
    };
    let hierarchy = TopicHierarchy {
        type_names: vec!["author".into()],
        topics: vec![topic(None, 0, "o", vec![1]), topic(Some(0), 1, "o/1", vec![])],
        fits: vec![None, None],
        alphas: vec![Some(vec![score(3)]), None],
    };
    let phrases: Vec<TopicalPhrase> = ids
        .iter()
        .enumerate()
        .map(|(i, &id)| TopicalPhrase { tokens: vec![id], score: score(i), topic_freq: score(i + 1) })
        .collect();
    let entities: Vec<(u32, f64)> =
        (0..corpus.entities.count(etype) as u32).map(|i| (i, score(i as usize))).collect();
    let mut freq = HashMap::new();
    for (i, &id) in ids.iter().enumerate() {
        freq.insert(vec![id], score(i));
        if i + 1 < ids.len() {
            freq.insert(vec![id, ids[i + 1]], score(i + 2));
        }
    }
    let n_docs = corpus.docs.len();
    let mined = MinedStructure {
        hierarchy,
        topic_phrases: vec![phrases.clone(), phrases],
        topic_entities: vec![vec![entities.clone()], vec![entities]],
        phrase_topic_freq: vec![freq.clone(), freq],
        segments: (0..n_docs).map(|_| vec![ids.clone()]).collect(),
        doc_topic: (0..n_docs).map(|d| vec![score(d), score(d + 1)]).collect(),
    };
    (corpus, mined)
}

/// v2 round-trip: the decoded snapshot serializes (in the deterministic
/// v1 wire form) bit-identically to the original, and re-saving v2
/// reproduces the v2 artifact bit-for-bit.
fn assert_v2_round_trip(corpus: &Corpus, mined: &MinedStructure) -> Vec<u8> {
    let bytes = save_snapshot_v2(corpus, mined).expect("save");
    let mapped = MappedSnapshot::from_bytes(&bytes).expect("load v2 back");
    let snap = mapped.to_snapshot().expect("full decode");
    assert_eq!(
        save_snapshot(corpus, mined).expect("save"),
        save_snapshot(&snap.corpus, &snap.mined).expect("save"),
        "v2 round-trip changed the value"
    );
    assert_eq!(
        bytes,
        save_snapshot_v2(&snap.corpus, &snap.mined).expect("save"),
        "re-saving the round-tripped value changed the v2 artifact"
    );
    bytes
}

#[test]
fn real_mined_structure_round_trips_through_v2() {
    let (corpus, mined) = mined_fixture();
    assert_v2_round_trip(&corpus, &mined);
}

#[test]
fn view_queries_are_byte_identical_to_the_owned_path() {
    let (corpus, mined) = mined_fixture();
    let bytes = save_snapshot_v2(&corpus, &mined).expect("save");
    let mapped = MappedSnapshot::from_bytes(&bytes).expect("load v2");

    // Hierarchy JSON.
    assert_eq!(hierarchy_to_json(&corpus, &mined, 10), hierarchy_to_json_view(&mapped, 10));
    assert_eq!(hierarchy_to_json(&corpus, &mined, 3), hierarchy_to_json_view(&mapped, 3));
    // Topic rendering.
    for t in 0..mined.hierarchy.len() {
        assert_eq!(
            mined.render_topic(&corpus, t, 10),
            render_topic_view(&mapped, t, 10),
            "topic {t} renders differently through the view"
        );
    }
    // Search, including multi-word, unknown-word, and empty queries.
    let owned = Model::Owned(Box::new(load_snapshot(&save_snapshot(&corpus, &mined).expect("save")).expect("v1 load")));
    let mapped = Model::Mapped(Box::new(mapped));
    let some_word = corpus.vocab.name_or_unk(0).to_string();
    for query in ["mining", &some_word, "mining latent", "zzz-unknown", ""] {
        let hits = search(&corpus, &mined, query, 10);
        assert_eq!(
            render_hits(&corpus, &mined, &hits),
            mapped.search_lines(query, 10),
            "search({query:?}) differs between owned and mapped"
        );
        assert_eq!(
            owned.internal_search_lines(query, 10),
            mapped.internal_search_lines(query, 10),
            "internal search({query:?}) differs between owned and mapped"
        );
    }
}

#[test]
fn shard_doc_ids_rename_rendered_documents() {
    let (corpus, mined) = synthetic_structure(
        &["mining".into(), "latent".into(), "structures".into()],
        &[1.0f64.to_bits(), 0.25f64.to_bits()],
    );
    let ids: Vec<u64> = vec![100, 205, 310];
    let bytes = save_snapshot_v2_with_ids(&corpus, &mined, Some(&ids)).expect("save");
    let mapped = MappedSnapshot::from_bytes(&bytes).expect("load v2");
    for (d, &g) in ids.iter().enumerate() {
        assert_eq!(mapped.doc_id(d), g);
    }
    let lines = Model::Mapped(Box::new(mapped)).search_lines("mining", 10);
    assert!(!lines.is_empty());
    for line in &lines {
        let doc: u64 = line
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .expect("doc number in line");
        assert!(ids.contains(&doc), "rendered doc {doc} is not a global id: {line}");
    }
}

#[test]
fn v1_still_loads_and_cross_version_errors_are_typed() {
    let (corpus, mined) = synthetic_structure(
        &["mining".into(), "latent".into()],
        &[1.0f64.to_bits(), 0.25f64.to_bits()],
    );
    let v1 = save_snapshot(&corpus, &mined).expect("save");
    let v2 = save_snapshot_v2(&corpus, &mined).expect("save");

    // v1 loads through the v1 loader, as before.
    assert!(load_snapshot(&v1).is_ok());
    // The v2 loader reports v1 input as a version mismatch, not a crash
    // or a checksum error.
    match MappedSnapshot::from_bytes(&v1) {
        Err(SnapshotError::VersionMismatch { found: 1, supported: 2 }) => {}
        other => panic!("expected VersionMismatch loading v1 as v2, got {other:?}"),
    }
    // And the v1 loader reports v2 input symmetrically.
    match load_snapshot(&v2) {
        Err(SnapshotError::VersionMismatch { found: 2, supported: 1 }) => {}
        other => panic!("expected VersionMismatch loading v2 as v1, got {other:?}"),
    }

    // The version-dispatching loader accepts both from disk.
    let dir = std::env::temp_dir();
    let p1 = dir.join(format!("lesm-v2test-{}-v1.lesm", std::process::id()));
    let p2 = dir.join(format!("lesm-v2test-{}-v2.lesm", std::process::id()));
    std::fs::write(&p1, &v1).expect("write v1");
    std::fs::write(&p2, &v2).expect("write v2");
    let m1 = load_model_file(&p1.to_string_lossy()).expect("dispatch v1");
    let m2 = load_model_file(&p2.to_string_lossy()).expect("dispatch v2");
    assert!(matches!(m1, Model::Owned(_)));
    assert!(matches!(m2, Model::Mapped(_)));
    assert_eq!(m1.hierarchy_json(10), m2.hierarchy_json(10));
    assert_eq!(m1.search_lines("mining", 10), m2.search_lines("mining", 10));
    std::fs::remove_file(&p1).ok();
    std::fs::remove_file(&p2).ok();
}

#[test]
fn truncated_v2_artifacts_report_typed_errors_never_panic() {
    let (corpus, mined) = synthetic_structure(
        &["mining".into(), "latent".into(), "structures".into()],
        &[1.0f64.to_bits(), 0.25f64.to_bits()],
    );
    let bytes = assert_v2_round_trip(&corpus, &mined);
    for len in 0..bytes.len() {
        let err = MappedSnapshot::from_bytes(&bytes[..len])
            .err()
            .unwrap_or_else(|| panic!("truncated v2 artifact of {len} bytes must not load"));
        match err {
            SnapshotError::Truncated { .. }
            | SnapshotError::ChecksumMismatch { .. }
            | SnapshotError::Malformed { .. } => {}
            other => panic!("unexpected error for prefix of {len} bytes: {other}"),
        }
    }
}

#[test]
fn misaligned_buffers_load_through_the_aligned_copy() {
    let (corpus, mined) = mined_fixture();
    let bytes = save_snapshot_v2(&corpus, &mined).expect("save");
    let reference = hierarchy_to_json(&corpus, &mined, 10);
    // Shift the artifact to every misalignment of an 8-byte window; the
    // loader must still produce identical views.
    for shift in 1..8 {
        let mut buf = vec![0u8; shift];
        buf.extend_from_slice(&bytes);
        let mapped = MappedSnapshot::from_bytes(&buf[shift..])
            .unwrap_or_else(|e| panic!("misaligned by {shift}: {e}"));
        assert_eq!(reference, hierarchy_to_json_view(&mapped, 10), "shift {shift}");
    }
}

#[test]
fn describe_artifact_reports_both_formats() {
    let (corpus, mined) = synthetic_structure(&["x".into()], &[1.0f64.to_bits()]);
    let v1 = save_snapshot(&corpus, &mined).expect("save");
    let v2 = save_snapshot_v2(&corpus, &mined).expect("save");

    let d1 = describe_artifact(&v1).expect("describe v1");
    assert!(d1.contains("format version: 1"), "{d1}");
    assert!(d1.contains("corpus") && d1.contains("structure"), "{d1}");
    assert!(d1.contains("(ok)"), "{d1}");

    let d2 = describe_artifact(&v2).expect("describe v2");
    assert!(d2.contains("format version: 2"), "{d2}");
    for name in ["vocab", "entities", "docs", "topics", "phrase-topic-freq", "cold"] {
        assert!(d2.contains(name), "missing section {name} in:\n{d2}");
    }
    assert!(d2.contains("(ok)"), "{d2}");
    // Section offsets are 64-byte aligned, so every align column is 64.
    for line in d2.lines().filter(|l| l.contains("vocab") || l.contains("cold")) {
        assert!(line.trim_end().ends_with("64"), "unaligned section: {line}");
    }

    // Corruption is visible but does not abort inspection.
    let mut broken = v2.clone();
    let mid = broken.len() / 2;
    broken[mid] ^= 0xff;
    let db = describe_artifact(&broken).expect("describe corrupt v2");
    assert!(db.contains("MISMATCH"), "{db}");

    // Non-snapshot input is a typed error.
    match describe_artifact(b"id\ttext\tauthors\n0\thello\ta") {
        Err(SnapshotError::BadMagic { .. }) => {}
        other => panic!("expected BadMagic, got {other:?}"),
    }
}

#[test]
fn delta_lineage_round_trips_and_is_optional() {
    let (corpus, mined) = synthetic_structure(
        &["mining".into(), "latent".into(), "structures".into()],
        &[1.0f64.to_bits(), 0.25f64.to_bits()],
    );
    let lineage = DeltaInfo {
        base_artifact: "v0007.lesm".into(),
        base_docs: 2,
        base_words: 2,
        base_entities: vec![1],
        chain_depth: 3,
    };
    let with = save_snapshot_v2_with_lineage(&corpus, &mined, None, Some(&lineage)).expect("save");
    let mapped = MappedSnapshot::from_bytes(&with).expect("load delta artifact");
    assert_eq!(mapped.delta_info(), Some(&lineage));
    // The artifact stays full: all data sections decode exactly as the
    // lineage-free artifact does.
    let plain = save_snapshot_v2(&corpus, &mined).expect("save");
    let snap = mapped.to_snapshot().expect("decode delta artifact");
    assert_eq!(plain, save_snapshot_v2(&snap.corpus, &snap.mined).expect("save"));
    assert_eq!(MappedSnapshot::from_bytes(&plain).expect("load").delta_info(), None);
    // Inspection names the extra section.
    let d = describe_artifact(&with).expect("describe");
    assert!(d.contains("delta-lineage"), "{d}");
    assert!(d.contains("sections: 11"), "{d}");
}

#[test]
fn invalid_delta_lineage_is_a_typed_load_error() {
    let (corpus, mined) = synthetic_structure(
        &["mining".into(), "latent".into()],
        &[1.0f64.to_bits()],
    );
    let cases = [
        // Base ranges exceeding the artifact's own ranges.
        DeltaInfo {
            base_artifact: "v0001.lesm".into(),
            base_docs: 99,
            base_words: 0,
            base_entities: vec![0],
            chain_depth: 1,
        },
        // Zero chain depth.
        DeltaInfo {
            base_artifact: "v0001.lesm".into(),
            base_docs: 1,
            base_words: 1,
            base_entities: vec![0],
            chain_depth: 0,
        },
        // Entity-type arity mismatch.
        DeltaInfo {
            base_artifact: "v0001.lesm".into(),
            base_docs: 1,
            base_words: 1,
            base_entities: vec![0, 0],
            chain_depth: 1,
        },
        // Base entity count exceeding the catalog.
        DeltaInfo {
            base_artifact: "v0001.lesm".into(),
            base_docs: 1,
            base_words: 1,
            base_entities: vec![99],
            chain_depth: 1,
        },
    ];
    for lineage in &cases {
        let bytes = save_snapshot_v2_with_lineage(&corpus, &mined, None, Some(lineage)).expect("save");
        match MappedSnapshot::from_bytes(&bytes) {
            Err(SnapshotError::Malformed { .. }) => {}
            other => panic!("lineage {lineage:?}: expected Malformed, got {other:?}"),
        }
    }
}

// Words drawn from a deliberately hostile alphabet (quotes, backslashes,
// control characters, whitespace) and scores from arbitrary bit patterns
// (NaNs with payloads, infinities, subnormals, -0.0).
const NASTY: &str = "[a-z\"\\\u{0}-\u{8} ]{1,6}";

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn randomized_structures_round_trip_through_v2(
        words in vec(NASTY, 1..5),
        score_bits in vec(0u64..=u64::MAX, 1..6),
    ) {
        let (corpus, mined) = synthetic_structure(&words, &score_bits);
        let bytes = save_snapshot_v2(&corpus, &mined).expect("save");
        let mapped = MappedSnapshot::from_bytes(&bytes).expect("load v2");
        let snap = mapped.to_snapshot().expect("decode");
        prop_assert_eq!(
            save_snapshot(&corpus, &mined).expect("save"),
            save_snapshot(&snap.corpus, &snap.mined).expect("save")
        );
        // View rendering stays identical even for hostile vocab/scores.
        prop_assert_eq!(
            hierarchy_to_json(&corpus, &mined, 10),
            hierarchy_to_json_view(&mapped, 10)
        );
    }

    #[test]
    fn any_single_byte_flip_in_v2_is_a_typed_error(
        pos_seed in 0usize..100_000,
        flip in 1u8..=255,
    ) {
        let (corpus, mined) = synthetic_structure(
            &["mining".into(), "latent".into()],
            &[0.5f64.to_bits(), 2.0f64.to_bits()],
        );
        let mut bytes = save_snapshot_v2(&corpus, &mined).expect("save");
        let pos = pos_seed % bytes.len();
        bytes[pos] ^= flip;
        // Every lane of the word checksum absorbs its words through
        // bijective steps and the fold is bijective in each lane digest,
        // so any body flip trips the trailer check; flips in the magic,
        // version, or table hit their own typed checks.
        prop_assert!(MappedSnapshot::from_bytes(&bytes).is_err());
    }
}
