//! End-to-end tests for the sharded serve tier, the hot-swap store, and
//! accept-queue backpressure.
//!
//! The determinism contract under test (DESIGN.md §11, §13): a front
//! tier over N shards answers every endpoint byte-identically to one
//! unsharded server over the full model, for N ∈ {1, 2, 4} and both
//! document-assignment strategies — including every error path.

use lesm_core::pipeline::{LatentStructureMiner, MinedStructure, MinerConfig};
use lesm_corpus::synth::{PapersConfig, SyntheticPapers};
use lesm_corpus::Corpus;
use lesm_serve::server::{Server, ServerConfig};
use lesm_serve::{load_snapshot, save_snapshot, save_snapshot_v2, ShardBy};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::time::Duration;

fn fixture(seed: u64) -> (Corpus, MinedStructure) {
    let papers = SyntheticPapers::generate(&PapersConfig::dblp(80, seed)).expect("synth corpus");
    let mut config = MinerConfig::default();
    config.hierarchy.max_depth = 1;
    config.phrase_min_support = 2;
    config.threads = 2;
    let mined = LatentStructureMiner::mine(&papers.corpus, &config).expect("mine");
    (papers.corpus, mined)
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("lesm-sharded-e2e-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("mkdir");
    dir
}

/// Minimal HTTP/1.1 client: one request, reads to EOF. `(status, body)`.
fn get(addr: std::net::SocketAddr, target: &str) -> (u16, Vec<u8>) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    write!(stream, "GET {target} HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n").unwrap();
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read response");
    let header_end = raw.windows(4).position(|w| w == b"\r\n\r\n").expect("response head");
    let head = std::str::from_utf8(&raw[..header_end]).expect("utf-8 head");
    let status: u16 =
        head.split_whitespace().nth(1).and_then(|s| s.parse().ok()).expect("status code");
    (status, raw[header_end + 4..].to_vec())
}

/// Like [`get`] but tolerant of mid-request resets (used against a
/// server that is actively shedding connections).
fn try_get(addr: std::net::SocketAddr, target: &str) -> Option<(u16, Vec<u8>)> {
    let mut stream = TcpStream::connect(addr).ok()?;
    stream.set_read_timeout(Some(Duration::from_secs(10))).ok()?;
    let _ =
        write!(stream, "GET {target} HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).ok()?;
    let header_end = raw.windows(4).position(|w| w == b"\r\n\r\n")?;
    let head = std::str::from_utf8(&raw[..header_end]).ok()?;
    let status: u16 = head.split_whitespace().nth(1)?.parse().ok()?;
    Some((status, raw[header_end + 4..].to_vec()))
}

/// The full endpoint mix, success and error paths alike.
const TARGETS: &[&str] = &[
    "/search?q=mining",
    "/search?q=mining&top=3",
    "/search?q=data+mining",
    "/search?q=database+systems&top=25",
    "/search?q=zzz-no-such-word",
    "/search?q=",
    "/search?top=3",         // 400: missing q
    "/search?q=x&top=zero",  // 400: bad top
    "/topics/0",
    "/topics/1",
    "/topics/999999",        // 404
    "/topics/notanumber",    // 400
    "/hierarchy",
    "/healthz",
    "/nope",                 // 404
];

#[test]
fn sharded_responses_are_byte_identical_to_a_single_server() {
    let (corpus, mined) = fixture(9);

    // Baseline: one unsharded server over the owned snapshot.
    let baseline_handle = Server::start(
        load_snapshot(&save_snapshot(&corpus, &mined).expect("save")).expect("round-trip"),
        ServerConfig { workers: 2, ..ServerConfig::default() },
    )
    .expect("bind baseline");
    let baseline: Vec<(u16, Vec<u8>)> =
        TARGETS.iter().map(|t| get(baseline_handle.addr(), t)).collect();
    baseline_handle.shutdown();

    for by in [ShardBy::EntityRange, ShardBy::TopicSubtree] {
        for shards in [1usize, 2, 4] {
            let dir = tmp_dir(&format!("{}-{shards}", by.name()));
            let manifest =
                lesm_serve::write_shards(&corpus, &mined, by, shards, &dir).expect("write shards");
            assert_eq!(manifest.files.len(), shards);
            assert_eq!(manifest.docs.iter().sum::<usize>(), corpus.num_docs());

            let handle = Server::start_sharded(
                &dir.join("manifest.json"),
                ServerConfig { workers: 2, ..ServerConfig::default() },
            )
            .expect("boot sharded tier");
            assert_eq!(handle.shard_addrs().len(), shards);
            for (target, expected) in TARGETS.iter().zip(&baseline) {
                let got = get(handle.addr(), target);
                assert_eq!(
                    &got, expected,
                    "{target} differs: {} shards by {}, got {:?}, want {:?}",
                    shards,
                    by.name(),
                    String::from_utf8_lossy(&got.1),
                    String::from_utf8_lossy(&expected.1),
                );
            }
            handle.shutdown();
            std::fs::remove_dir_all(&dir).ok();
        }
    }
}

#[test]
fn hot_swap_serves_the_new_version_without_restart() {
    let (corpus_a, mined_a) = fixture(9);
    let (corpus_b, mined_b) = fixture(23);
    let dir = tmp_dir("store");

    lesm_serve::store::publish(&dir, &save_snapshot_v2(&corpus_a, &mined_a).expect("save")).expect("publish v1");
    let handle = Server::start_store(
        &dir,
        ServerConfig { workers: 2, ..ServerConfig::default() },
    )
    .expect("serve store");
    let addr = handle.addr();

    let before = get(addr, "/hierarchy");
    assert_eq!(before.0, 200);
    assert_eq!(
        before.1,
        lesm_core::export::hierarchy_to_json(&corpus_a, &mined_a, 10).into_bytes()
    );
    // Prime the cache so the swap also proves cache invalidation.
    assert_eq!(get(addr, "/hierarchy"), before);

    // A corrupt publish must not take down serving or swap anything.
    lesm_serve::store::publish(&dir, b"garbage, not a snapshot").expect("publish garbage");
    std::thread::sleep(Duration::from_millis(200));
    assert_eq!(get(addr, "/hierarchy"), before, "corrupt publish must be ignored");

    // A good publish swaps within the watcher's poll interval.
    lesm_serve::store::publish(&dir, &save_snapshot_v2(&corpus_b, &mined_b).expect("save")).expect("publish v3");
    let expected_b = lesm_core::export::hierarchy_to_json(&corpus_b, &mined_b, 10).into_bytes();
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        let (status, body) = get(addr, "/hierarchy");
        assert_eq!(status, 200);
        if body == expected_b {
            break;
        }
        assert_eq!(body, before.1, "mid-swap response is neither version");
        assert!(std::time::Instant::now() < deadline, "hot swap never happened");
        std::thread::sleep(Duration::from_millis(20));
    }

    handle.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn full_accept_queue_sheds_with_503_and_recovers() {
    let (corpus, mined) = fixture(9);
    let handle = Server::start(
        load_snapshot(&save_snapshot(&corpus, &mined).expect("save")).expect("round-trip"),
        ServerConfig {
            workers: 1,
            queue_depth: 1,
            read_timeout: Duration::from_secs(2),
            ..ServerConfig::default()
        },
    )
    .expect("bind");
    let addr = handle.addr();

    // Two idle connections: one occupies the single worker (blocked in
    // read until the 2s read timeout), one fills the depth-1 queue.
    let idle1 = TcpStream::connect(addr).expect("idle1");
    std::thread::sleep(Duration::from_millis(150));
    let idle2 = TcpStream::connect(addr).expect("idle2");
    std::thread::sleep(Duration::from_millis(100));

    // Further traffic must now be shed by the acceptor with 503. The
    // acceptor answers-and-closes before reading the request, so the
    // client's write can race a TCP reset; tolerate that and use the
    // shed counter as ground truth, checking the body when it survives.
    for _ in 0..5 {
        if let Some((status, body)) = try_get(addr, "/healthz") {
            if status == 503 {
                assert_eq!(body, b"server overloaded, retry later\n");
                break;
            }
        }
    }
    assert!(
        handle.metrics().shed() >= 1,
        "expected the acceptor to shed at least one connection"
    );

    // After the idle connections time out the server recovers fully.
    drop(idle1);
    drop(idle2);
    std::thread::sleep(Duration::from_millis(300));
    let (status, body) = get(addr, "/healthz");
    assert_eq!((status, body.as_slice()), (200, b"ok\n".as_slice()));
    handle.shutdown();
}

#[test]
fn front_composes_over_fronts() {
    // /internal/search on a front returns merged prefixed lines, so a
    // front can sit on another front and still be byte-identical.
    let (corpus, mined) = fixture(9);
    let dir = tmp_dir("nested");
    lesm_serve::write_shards(&corpus, &mined, ShardBy::EntityRange, 2, &dir)
        .expect("write shards");
    let inner = Server::start_sharded(
        &dir.join("manifest.json"),
        ServerConfig { workers: 2, ..ServerConfig::default() },
    )
    .expect("inner tier");
    let outer = Server::start_front(
        vec![inner.addr().to_string()],
        ServerConfig { workers: 2, ..ServerConfig::default() },
    )
    .expect("outer front");

    let baseline = Server::start(
        load_snapshot(&save_snapshot(&corpus, &mined).expect("save")).expect("round-trip"),
        ServerConfig { workers: 2, ..ServerConfig::default() },
    )
    .expect("baseline");
    for target in ["/search?q=mining", "/search?q=data+mining&top=4", "/hierarchy", "/topics/1"] {
        assert_eq!(get(outer.addr(), target), get(baseline.addr(), target), "{target}");
    }
    baseline.shutdown();
    outer.shutdown();
    inner.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}
