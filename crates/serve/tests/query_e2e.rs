//! End-to-end tests for `POST /query` (DESIGN.md §14).
//!
//! The determinism contract under test: the same query body — including
//! cursor resumptions — answers byte-identically on an owned-snapshot
//! backend, a v2 zero-copy mapped backend, 1 vs 4 workers, a front tier
//! over 1/2/4 shards, and across two restarts of the same server. Error
//! paths (malformed bodies, wrong method, oversized payloads) are part
//! of the contract and compared the same way.

use lesm_core::pipeline::{LatentStructureMiner, MinedStructure, MinerConfig};
use lesm_corpus::synth::{PapersConfig, SyntheticPapers};
use lesm_corpus::Corpus;
use lesm_serve::metrics::Endpoint;
use lesm_serve::server::{Server, ServerConfig, ServerHandle};
use lesm_serve::{load_snapshot, save_snapshot, ShardBy};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::time::Duration;

fn fixture(seed: u64) -> (Corpus, MinedStructure) {
    let papers = SyntheticPapers::generate(&PapersConfig::dblp(80, seed)).expect("synth corpus");
    let mut config = MinerConfig::default();
    config.hierarchy.max_depth = 1;
    config.phrase_min_support = 2;
    config.threads = 2;
    let mined = LatentStructureMiner::mine(&papers.corpus, &config).expect("mine");
    (papers.corpus, mined)
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("lesm-query-e2e-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("mkdir");
    dir
}

/// Minimal HTTP/1.1 POST client: one request, reads to EOF. `(status, body)`.
fn post(addr: SocketAddr, target: &str, body: &str) -> (u16, Vec<u8>) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    write!(
        stream,
        "POST {target} HTTP/1.1\r\nHost: test\r\nContent-Type: application/json\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )
    .unwrap();
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read response");
    let header_end = raw.windows(4).position(|w| w == b"\r\n\r\n").expect("response head");
    let head = std::str::from_utf8(&raw[..header_end]).expect("utf-8 head");
    let status: u16 =
        head.split_whitespace().nth(1).and_then(|s| s.parse().ok()).expect("status code");
    (status, raw[header_end + 4..].to_vec())
}

fn get(addr: SocketAddr, target: &str) -> (u16, Vec<u8>) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    write!(stream, "GET {target} HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n").unwrap();
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read response");
    let header_end = raw.windows(4).position(|w| w == b"\r\n\r\n").expect("response head");
    let head = std::str::from_utf8(&raw[..header_end]).expect("utf-8 head");
    let status: u16 =
        head.split_whitespace().nth(1).and_then(|s| s.parse().ok()).expect("status code");
    (status, raw[header_end + 4..].to_vec())
}

/// The query mix: success and error paths alike. Programs use type-only
/// seeds so they are valid against any mined fixture.
const BODIES: &[&str] = &[
    // Valid programs.
    r#"{"steps":[{"filter":{"type":"author"}}],"page":7}"#,
    r#"{"steps":[{"filter":{"type":"doc","years":{"min":2003,"max":2010}}}],"page":5}"#,
    r#"{"steps":[{"filter":{"type":"author"}},{"traverse":{"edge":"coauthor"}},{"traverse":{"edge":"topics"}}]}"#,
    r#"{"steps":[{"filter":{"type":"topic"}},{"traverse":{"edge":"children"}},{"traverse":{"edge":"entities","type":"venue"}}],"page":9}"#,
    r#"{"steps":[{"filter":{"type":"author"}},{"rank":{"by":"combined","topic":0,"limit":10}}]}"#,
    r#"{"steps":[{"filter":{"type":"venue"}},{"traverse":{"edge":"docs"}}],"page":11}"#,
    r#"{"steps":[{"filter":{"type":"author"}},{"path":{"to":{"type":"topic"},"edges":["topics","parent"],"max_depth":3}}],"page":13}"#,
    // Typed request errors (all must be 400, byte-identical everywhere).
    r#"{"#,
    r#"{"steps":[]}"#,
    r#"{"steps":[{"warp":{}}]}"#,
    r#"{"steps":[{"filter":{"type":"no-such-type"}}]}"#,
    r#"{"steps":[{"filter":{"type":"author","topic":"zzz/9"}}]}"#,
    r#"{"steps":[{"filter":{"type":"author"}}],"cursor":"q1.zzzz.0.5"}"#,
    r#"{"steps":[{"filter":{"type":"author"}}],"page":0}"#,
];

/// Collects `(status, body)` for the full mix plus a two-page cursor walk.
fn collect(addr: SocketAddr) -> Vec<(u16, Vec<u8>)> {
    let mut out: Vec<(u16, Vec<u8>)> = BODIES.iter().map(|b| post(addr, "/query", b)).collect();
    // Cursor walk: page 1 of the author scan, then resume from its cursor.
    let (status, first) = out[0].clone();
    assert_eq!(status, 200, "author scan must succeed: {}", String::from_utf8_lossy(&first));
    let text = String::from_utf8(first).expect("utf-8 response");
    let cursor = text
        .split("\"next_cursor\":\"")
        .nth(1)
        .and_then(|t| t.split('"').next())
        .expect("page 7 over 80 docs of authors must leave a next page");
    let resume = format!(r#"{{"steps":[{{"filter":{{"type":"author"}}}}],"cursor":"{cursor}"}}"#);
    out.push(post(addr, "/query", &resume));
    out
}

fn start_owned(corpus: &Corpus, mined: &MinedStructure, workers: usize) -> ServerHandle {
    Server::start(
        load_snapshot(&save_snapshot(corpus, mined).expect("save")).expect("round-trip"),
        ServerConfig { workers, ..ServerConfig::default() },
    )
    .expect("bind owned")
}

#[test]
fn query_responses_byte_identical_across_backends_workers_and_shards() {
    let (corpus, mined) = fixture(9);

    // Baseline: one unsharded owned-snapshot server, 2 workers.
    let baseline_handle = start_owned(&corpus, &mined, 2);
    let baseline = collect(baseline_handle.addr());
    baseline_handle.shutdown();
    assert!(baseline.iter().any(|(s, _)| *s == 200));
    assert!(baseline.iter().any(|(s, _)| *s == 400));

    let mut variants: Vec<(String, ServerHandle, Option<PathBuf>)> = Vec::new();

    // Worker-count variants over the owned backend.
    for workers in [1usize, 4] {
        variants.push((format!("owned-{workers}w"), start_owned(&corpus, &mined, workers), None));
    }

    // v2 zero-copy mapped backend.
    let dir = tmp_dir("v2");
    let v2_path = dir.join("model.lesm");
    lesm_serve::save_snapshot_v2_file(v2_path.to_str().expect("utf-8 path"), &corpus, &mined)
        .expect("save v2");
    let mapped = lesm_serve::load_model_file(v2_path.to_str().expect("utf-8 path")).expect("map");
    variants.push((
        "mapped-v2".into(),
        Server::start_model(mapped, ServerConfig { workers: 2, ..ServerConfig::default() })
            .expect("bind mapped"),
        Some(dir),
    ));

    // Front tier over 1/2/4 shards: /query fans /internal/qparts out to
    // every shard and executes over the merged parts.
    for shards in [1usize, 2, 4] {
        let dir = tmp_dir(&format!("shards-{shards}"));
        lesm_serve::write_shards(&corpus, &mined, ShardBy::EntityRange, shards, &dir)
            .expect("write shards");
        let handle = Server::start_sharded(
            &dir.join("manifest.json"),
            ServerConfig { workers: 2, ..ServerConfig::default() },
        )
        .expect("boot sharded tier");
        variants.push((format!("front-{shards}shards"), handle, Some(dir)));
    }

    for (name, handle, dir) in variants {
        let got = collect(handle.addr());
        for (i, (g, want)) in got.iter().zip(&baseline).enumerate() {
            assert_eq!(
                g,
                want,
                "{name}: query {i} differs, got {:?}, want {:?}",
                String::from_utf8_lossy(&g.1),
                String::from_utf8_lossy(&want.1),
            );
        }
        handle.shutdown();
        if let Some(dir) = dir {
            std::fs::remove_dir_all(&dir).ok();
        }
    }
}

#[test]
fn query_pages_are_byte_identical_across_restarts() {
    let (corpus, mined) = fixture(23);
    let bytes = save_snapshot(&corpus, &mined).expect("save");

    let run = || {
        let handle = Server::start(
            load_snapshot(&bytes).expect("load"),
            ServerConfig { workers: 2, ..ServerConfig::default() },
        )
        .expect("bind");
        let pages = collect(handle.addr());
        handle.shutdown();
        pages
    };
    let first = run();
    let second = run();
    assert_eq!(first, second, "restarting the server changed some /query response");
}

#[test]
fn stale_cursor_after_hot_swap_is_a_typed_error_never_an_interleave() {
    // Regression: a paginated /query stream that spans a store hot-swap
    // must either complete against the model it started on or fail with
    // the typed cursor error — pages from two model versions must never
    // interleave. The cursor's stamp binds the model content, and the
    // swap clears the response cache, so the stale resume recomputes
    // against the new index and is rejected.
    let (corpus_a, mined_a) = fixture(9);
    let (corpus_b, mined_b) = fixture(23);
    let dir = tmp_dir("cursor-swap");
    lesm_serve::store::publish(&dir, &lesm_serve::save_snapshot_v2(&corpus_a, &mined_a).expect("save"))
        .expect("publish v1");
    let handle = Server::start_store(
        &dir,
        ServerConfig { workers: 2, ..ServerConfig::default() },
    )
    .expect("serve store");
    let addr = handle.addr();

    // Page 1 against model A, and one successful same-model resume.
    let scan = r#"{"steps":[{"filter":{"type":"author"}}],"page":7}"#;
    let (status, first) = post(addr, "/query", scan);
    assert_eq!(status, 200);
    let text = String::from_utf8(first).expect("utf-8 response");
    let cursor = text
        .split("\"next_cursor\":\"")
        .nth(1)
        .and_then(|t| t.split('"').next())
        .expect("author scan must leave a next page");
    let resume = format!(r#"{{"steps":[{{"filter":{{"type":"author"}}}}],"cursor":"{cursor}"}}"#);
    let (status, page2_a) = post(addr, "/query", &resume);
    assert_eq!(status, 200, "same-model resume must succeed");

    // Hot-swap to model B and wait for the watcher to pick it up.
    lesm_serve::store::publish(&dir, &lesm_serve::save_snapshot_v2(&corpus_b, &mined_b).expect("save"))
        .expect("publish v2");
    let expected_b = lesm_core::export::hierarchy_to_json(&corpus_b, &mined_b, 10).into_bytes();
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while get(addr, "/hierarchy").1 != expected_b {
        assert!(std::time::Instant::now() < deadline, "hot swap never happened");
        std::thread::sleep(Duration::from_millis(20));
    }

    // The pre-swap cursor must now be a typed 400 — not page 2 of model
    // A (a stale cache hit) and not page 2 of model B (an interleave).
    let (status, body) = post(addr, "/query", &resume);
    let body_text = String::from_utf8_lossy(&body).to_string();
    assert_eq!(status, 400, "stale cursor must be rejected, got: {body_text}");
    assert!(body_text.contains("bad cursor"), "unexpected body: {body_text}");
    assert!(body_text.contains("model version"), "unexpected body: {body_text}");
    assert_ne!(body, page2_a, "must not serve the old model's page after the swap");

    // A fresh stream against the new model pages normally.
    let (status, fresh) = post(addr, "/query", scan);
    assert_eq!(status, 200);
    let fresh = String::from_utf8(fresh).expect("utf-8 response");
    let new_cursor = fresh
        .split("\"next_cursor\":\"")
        .nth(1)
        .and_then(|t| t.split('"').next())
        .expect("new model's scan must page");
    assert_ne!(new_cursor, cursor, "stamp must differ across model versions");
    let resume_b =
        format!(r#"{{"steps":[{{"filter":{{"type":"author"}}}}],"cursor":"{new_cursor}"}}"#);
    assert_eq!(post(addr, "/query", &resume_b).0, 200, "new-model resume must succeed");

    handle.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn query_method_and_size_limits() {
    let (corpus, mined) = fixture(9);
    let handle = start_owned(&corpus, &mined, 2);
    let addr = handle.addr();

    // /query is POST-only.
    let (status, body) = get(addr, "/query");
    assert_eq!(status, 405);
    assert_eq!(body, b"use POST for /query\n");

    // Other endpoints still reject POST.
    let (status, _) = post(addr, "/hierarchy", "{}");
    assert_eq!(status, 405);

    // A body over MAX_BODY_BYTES is a typed 400, not a hang or a panic.
    // The server answers from the headers alone, so the client's body
    // write can race the close — tolerate a failed write and still read
    // whatever response made it out.
    let huge = format!(
        r#"{{"steps":[{{"filter":{{"type":"author","name":"{}"}}}}]}}"#,
        "x".repeat(lesm_serve::http::MAX_BODY_BYTES)
    );
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let _ = write!(
        stream,
        "POST /query HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{huge}",
        huge.len()
    );
    let mut raw = Vec::new();
    let _ = stream.read_to_end(&mut raw);
    let head = String::from_utf8_lossy(&raw);
    assert!(head.starts_with("HTTP/1.1 400 "), "oversized body must get a 400, got {head:?}");

    handle.shutdown();
}

#[test]
fn query_endpoint_records_cache_and_request_metrics() {
    let (corpus, mined) = fixture(9);
    let handle = start_owned(&corpus, &mined, 2);
    let addr = handle.addr();
    let body = r#"{"steps":[{"filter":{"type":"author"}}],"page":3}"#;

    let (s1, b1) = post(addr, "/query", body);
    let (s2, b2) = post(addr, "/query", body);
    assert_eq!((s1, s2), (200, 200));
    assert_eq!(b1, b2, "cached response must be byte-identical to the computed one");

    let m = handle.metrics();
    assert_eq!(m.requests(Endpoint::Query), 2);
    assert_eq!(m.cache_misses(Endpoint::Query), 1, "first request must miss");
    assert_eq!(m.cache_hits(Endpoint::Query), 1, "second request must hit");

    // A different body is a different cache key.
    let other = r#"{"steps":[{"filter":{"type":"venue"}}],"page":3}"#;
    let (s3, _) = post(addr, "/query", other);
    assert_eq!(s3, 200);
    assert_eq!(m.cache_misses(Endpoint::Query), 2);

    // The exposition format carries the query row.
    let (status, text) = get(addr, "/metrics");
    assert_eq!(status, 200);
    let text = String::from_utf8(text).expect("utf-8 metrics");
    assert!(text.contains("lesm_requests_total{endpoint=\"query\"} 3"), "{text}");
    handle.shutdown();
}
