//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of the proptest API the workspace's property
//! tests use: the [`proptest!`] macro, `prop_assert*` / `prop_assume!`,
//! range and tuple strategies, `prop_map` / `prop_flat_map`,
//! [`collection::vec`], [`bool::ANY`] and simple `"[chars]{m,n}"` string
//! patterns.
//!
//! Differences from upstream: cases are generated from a fixed per-test
//! seed (reproducible across runs), and failing inputs are *not* shrunk —
//! the failing case index and assertion message are reported instead.

pub mod strategy;

pub mod test_runner {
    //! Test-case execution plumbing used by the [`crate::proptest!`] macro.

    /// Configuration for a `proptest!` block.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to run per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 32 }
        }
    }

    /// Why a single generated case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// The case was rejected by `prop_assume!` (not a failure).
        Reject(String),
        /// A `prop_assert*!` failed.
        Fail(String),
    }

    /// Stable seed for case `case` of the test named `name`.
    pub fn case_seed(name: &str, case: u32) -> u64 {
        // FNV-1a over the test name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        h ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Acceptable size specifications for [`vec`].
    pub trait IntoSizeRange {
        /// Lower/upper(+1) bounds on the generated length.
        fn bounds(&self) -> (usize, usize);
    }

    impl IntoSizeRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self + 1)
        }
    }

    impl IntoSizeRange for core::ops::Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            (self.start, self.end)
        }
    }

    impl IntoSizeRange for core::ops::RangeInclusive<usize> {
        fn bounds(&self) -> (usize, usize) {
            (*self.start(), *self.end() + 1)
        }
    }

    /// Strategy producing `Vec<S::Value>` with length drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        min: usize,
        max_exclusive: usize,
    }

    /// A vector of values from `element` with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (min, max_exclusive) = size.bounds();
        assert!(min < max_exclusive, "empty size range for collection::vec");
        VecStrategy { element, min, max_exclusive }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = if self.min + 1 == self.max_exclusive {
                self.min
            } else {
                rng.gen_range(self.min..self.max_exclusive)
            };
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

pub mod bool {
    //! Boolean strategies.

    use crate::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Strategy for an unbiased random `bool`.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// An unbiased random boolean.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn new_value(&self, rng: &mut StdRng) -> bool {
            rng.gen_bool(0.5)
        }
    }
}

pub mod prelude {
    //! Glob-import surface matching `proptest::prelude::*`.

    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Runs the body of one generated case; used by [`proptest!`].
#[macro_export]
macro_rules! __proptest_case {
    ($config:expr, $name:ident, $($arg:pat in $strat:expr),* ; $body:block) => {{
        let config: $crate::test_runner::ProptestConfig = $config;
        let mut rejected: u32 = 0;
        for case in 0..config.cases {
            let seed = $crate::test_runner::case_seed(stringify!($name), case);
            let mut __proptest_rng =
                <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(seed);
            $(
                let $arg = $crate::strategy::Strategy::new_value(&$strat, &mut __proptest_rng);
            )*
            let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                (|| { $body ::std::result::Result::Ok(()) })();
            match outcome {
                Ok(()) => {}
                Err($crate::test_runner::TestCaseError::Reject(_)) => {
                    rejected += 1;
                }
                Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                    panic!(
                        "property `{}` failed at case {} (seed {}): {}",
                        stringify!($name),
                        case,
                        seed,
                        msg
                    );
                }
            }
        }
        assert!(
            rejected < config.cases,
            "property `{}`: every case was rejected by prop_assume!",
            stringify!($name)
        );
    }};
}

/// Declares randomized property tests (stand-in for `proptest::proptest!`).
#[macro_export]
macro_rules! proptest {
    // With a block-level config attribute.
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::__proptest_case!($config, $name, $($arg in $strat),* ; $body);
            }
        )*
    };
    // Without a config attribute.
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($arg in $strat),*) $body
            )*
        }
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: {} == {} ({:?} vs {:?})",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)+);
    }};
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l != r,
            "assertion failed: {} != {} (both {:?})",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Skips the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..9, y in -2.0f64..2.0, b in crate::bool::ANY) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y));
            prop_assert_ne!(b, !b);
        }

        #[test]
        fn vec_lengths_respect_size(v in crate::collection::vec(0u32..5, 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 5));
        }

        #[test]
        fn assume_rejects_without_failing(n in 0usize..10) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    #[test]
    fn string_pattern_strategy_generates_matching_strings() {
        let strat = "[a-z]{1,8}";
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            let s = strat.new_value(&mut rng);
            assert!((1..=8).contains(&s.len()), "len {}", s.len());
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
        }
    }

    #[test]
    fn tuples_and_prop_map_compose() {
        let strat = (0u32..4, 0u32..4, 1.0f64..2.0).prop_map(|(a, b, w)| (a + b, w));
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..50 {
            let (s, w) = strat.new_value(&mut rng);
            assert!(s < 8);
            assert!((1.0..2.0).contains(&w));
        }
    }

    #[test]
    #[should_panic(expected = "property `always_fails` failed")]
    fn failures_panic_with_case_info() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            fn always_fails(x in 0usize..10) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        always_fails();
    }
}
