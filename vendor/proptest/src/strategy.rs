//! Value-generation strategies.
//!
//! A [`Strategy`] knows how to draw one value from a seeded RNG. Unlike
//! upstream proptest there is no value tree / shrinking: `new_value`
//! produces the final input directly.

use rand::rngs::StdRng;
use rand::Rng;

/// Something that can generate random values of an associated type.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn new_value(&self, rng: &mut StdRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Chains into a value-dependent strategy: the outer value picks the
    /// inner strategy (upstream's `prop_flat_map`; used for e.g. drawing
    /// matrix dimensions and then data of matching length).
    fn prop_flat_map<O, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        O: Strategy,
        F: Fn(Self::Value) -> O,
    {
        FlatMap { inner: self, f }
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Output of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn new_value(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

/// Output of [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    O: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O::Value;
    fn new_value(&self, rng: &mut StdRng) -> Self::Value {
        (self.f)(self.inner.new_value(rng)).new_value(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($($s:ident => $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn new_value(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A => 0);
impl_tuple_strategy!(A => 0, B => 1);
impl_tuple_strategy!(A => 0, B => 1, C => 2);
impl_tuple_strategy!(A => 0, B => 1, C => 2, D => 3);
impl_tuple_strategy!(A => 0, B => 1, C => 2, D => 3, E => 4);
impl_tuple_strategy!(A => 0, B => 1, C => 2, D => 3, E => 4, F => 5);

/// A parsed `"[chars]{min,max}"` or `".{min,max}"` string pattern.
///
/// Supports exactly the regex-lite shapes the workspace tests use: one
/// bracketed character class (literal characters plus `x-y` ranges) or
/// the any-character class `.` (printable ASCII here), followed by a
/// `{min,max}` repetition count.
#[derive(Debug, Clone)]
struct CharClassPattern {
    chars: Vec<char>,
    min: usize,
    max: usize,
}

fn parse_pattern(pattern: &str) -> CharClassPattern {
    let bytes: Vec<char> = pattern.chars().collect();
    let (chars, class_end) = match bytes.first() {
        Some('.') => (((0x20u32..=0x7E).map(|c| char::from_u32(c).unwrap())).collect(), 1),
        Some('[') => {
            let close = bytes
                .iter()
                .position(|&c| c == ']')
                .unwrap_or_else(|| panic!("unsupported string pattern {pattern:?}: missing ']'"));
            let mut chars = Vec::new();
            let class = &bytes[1..close];
            let mut i = 0;
            while i < class.len() {
                if i + 2 < class.len() && class[i + 1] == '-' {
                    let (lo, hi) = (class[i] as u32, class[i + 2] as u32);
                    assert!(lo <= hi, "descending range in pattern {pattern:?}");
                    for c in lo..=hi {
                        chars.push(char::from_u32(c).unwrap());
                    }
                    i += 3;
                } else {
                    chars.push(class[i]);
                    i += 1;
                }
            }
            assert!(!chars.is_empty(), "empty character class in pattern {pattern:?}");
            (chars, close + 1)
        }
        _ => panic!("unsupported string pattern {pattern:?}: expected \"[class]{{m,n}}\" or \".{{m,n}}\""),
    };

    let rep: String = bytes[class_end..].iter().collect();
    let inner = rep
        .strip_prefix('{')
        .and_then(|r| r.strip_suffix('}'))
        .unwrap_or_else(|| panic!("unsupported repetition in pattern {pattern:?}"));
    let (min, max) = match inner.split_once(',') {
        Some((lo, hi)) => (
            lo.trim().parse::<usize>().expect("bad repetition lower bound"),
            hi.trim().parse::<usize>().expect("bad repetition upper bound"),
        ),
        None => {
            let n = inner.trim().parse::<usize>().expect("bad repetition count");
            (n, n)
        }
    };
    assert!(min <= max, "inverted repetition in pattern {pattern:?}");
    CharClassPattern { chars, min, max }
}

impl Strategy for &'static str {
    type Value = String;
    fn new_value(&self, rng: &mut StdRng) -> String {
        let pat = parse_pattern(self);
        let len = rng.gen_range(pat.min..=pat.max);
        (0..len)
            .map(|_| pat.chars[rng.gen_range(0..pat.chars.len())])
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn pattern_parser_handles_ranges_and_literals() {
        let p = parse_pattern("[a-z ]{0,40}");
        assert_eq!(p.chars.len(), 27);
        assert_eq!((p.min, p.max), (0, 40));
        let q = parse_pattern("[xy]{3}");
        assert_eq!(q.chars, vec!['x', 'y']);
        assert_eq!((q.min, q.max), (3, 3));
    }

    #[test]
    fn just_and_map_are_deterministic() {
        let s = Just(41usize).prop_map(|x| x + 1);
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(s.new_value(&mut rng), 42);
    }

    #[test]
    fn flat_map_feeds_outer_value_into_inner_strategy() {
        // Outer draw picks a length; inner strategy must honor it.
        let s = (1usize..5).prop_flat_map(|n| Just(n).prop_map(move |x| (n, x)));
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..20 {
            let (n, x) = s.new_value(&mut rng);
            assert_eq!(n, x);
            assert!((1..5).contains(&n));
        }
    }
}
