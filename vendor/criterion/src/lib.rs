//! Offline stand-in for the `criterion` crate.
//!
//! Provides the subset of the criterion API the workspace benches use —
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`] /
//! [`BenchmarkGroup::bench_with_input`], [`BenchmarkId`], [`Bencher::iter`]
//! and the [`criterion_group!`] / [`criterion_main!`] macros — measuring
//! simple wall-clock statistics instead of criterion's full analysis.
//!
//! Behaviour knobs (environment variables):
//! - `LESM_BENCH_JSON=<path>`: append one JSON line per benchmark with
//!   `id`, `samples`, `mean_ns` and `median_ns` fields (machine-readable
//!   output for `scripts/bench_smoke.sh`).
//! - `LESM_BENCH_FAST=1`: run one sample per benchmark (smoke mode).
//!
//! When invoked by `cargo test` (libtest passes `--test`), every
//! benchmark runs a single iteration so the tier-1 suite stays fast.

use std::fmt::Display;
use std::io::Write as _;
use std::time::Instant;

/// Identifier for a parameterized benchmark (`name/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    /// An id rendered as `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        Self { full: format!("{}/{}", name.into(), parameter) }
    }
}

/// Things accepted as a benchmark id (`&str` or [`BenchmarkId`]).
pub trait IntoBenchmarkId {
    /// The id as a display string.
    fn into_id_string(self) -> String;
}

impl IntoBenchmarkId for &str {
    fn into_id_string(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id_string(self) -> String {
        self
    }
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id_string(self) -> String {
        self.full
    }
}

/// Runs and times one benchmark's closure.
pub struct Bencher {
    samples: usize,
    /// Per-sample wall-clock durations in nanoseconds.
    times_ns: Vec<u128>,
}

impl Bencher {
    /// Times `routine` over the configured number of samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One untimed warmup run so lazy setup doesn't skew the first sample.
        let _ = std::hint::black_box(routine());
        for _ in 0..self.samples {
            let start = Instant::now();
            let out = routine();
            let elapsed = start.elapsed().as_nanos();
            std::hint::black_box(out);
            self.times_ns.push(elapsed);
        }
    }
}

/// A named set of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<I: IntoBenchmarkId>(
        &mut self,
        id: I,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let full_id = format!("{}/{}", self.name, id.into_id_string());
        let samples = self.criterion.effective_samples(self.sample_size);
        let mut bencher = Bencher { samples, times_ns: Vec::new() };
        f(&mut bencher);
        self.criterion.report(&full_id, &bencher.times_ns);
        self
    }

    /// Benchmarks `f` under `id`, passing `input` through.
    pub fn bench_with_input<I: IntoBenchmarkId, T: ?Sized>(
        &mut self,
        id: I,
        input: &T,
        mut f: impl FnMut(&mut Bencher, &T),
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (reporting is per-benchmark; this is a no-op hook).
    pub fn finish(&mut self) {}
}

/// Benchmark driver (stand-in for `criterion::Criterion`).
pub struct Criterion {
    test_mode: bool,
    fast_mode: bool,
    json_path: Option<String>,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            test_mode: false,
            fast_mode: std::env::var("LESM_BENCH_FAST").is_ok_and(|v| v != "0"),
            json_path: std::env::var("LESM_BENCH_JSON").ok().filter(|p| !p.is_empty()),
            filter: None,
        }
    }
}

impl Criterion {
    /// Applies the CLI arguments cargo passes to bench/test harnesses.
    ///
    /// Recognizes `--test` (run one iteration per benchmark) and treats
    /// the first free argument as a substring filter on benchmark ids;
    /// other harness flags are accepted and ignored.
    pub fn configure_from_args(mut self) -> Self {
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--test" => self.test_mode = true,
                "--bench" | "--quiet" | "--verbose" | "--nocapture" | "--exact"
                | "--ignored" | "--include-ignored" | "--list" => {}
                a if a.starts_with("--") => {
                    // Flags with a value (e.g. --save-baseline x): skip it.
                    if !a.contains('=') {
                        let _ = args.next();
                    }
                }
                free => {
                    if self.filter.is_none() {
                        self.filter = Some(free.to_string());
                    }
                }
            }
        }
        self
    }

    /// Starts a benchmark group named `name`.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into(), sample_size: 10 }
    }

    /// Benchmarks `f` outside any group.
    pub fn bench_function(&mut self, id: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }

    fn effective_samples(&self, requested: usize) -> usize {
        if self.test_mode {
            1
        } else if self.fast_mode {
            requested.min(3)
        } else {
            requested.max(1)
        }
    }

    fn report(&self, id: &str, times_ns: &[u128]) {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return;
            }
        }
        if times_ns.is_empty() {
            return;
        }
        let mut sorted = times_ns.to_vec();
        sorted.sort_unstable();
        let mean = (times_ns.iter().sum::<u128>() / times_ns.len() as u128) as f64;
        let median = sorted[sorted.len() / 2] as f64;
        println!(
            "{:<48} time: [{} .. {} .. {}]  ({} samples)",
            id,
            fmt_ns(sorted[0] as f64),
            fmt_ns(median),
            fmt_ns(*sorted.last().unwrap() as f64),
            times_ns.len()
        );
        if let Some(path) = &self.json_path {
            let line = format!(
                "{{\"id\":\"{}\",\"samples\":{},\"mean_ns\":{:.0},\"median_ns\":{:.0}}}\n",
                id,
                times_ns.len(),
                mean,
                median
            );
            let written = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(path)
                .and_then(|mut f| f.write_all(line.as_bytes()));
            if let Err(e) = written {
                eprintln!("warning: could not write {path}: {e}");
            }
        }
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// Prevents the optimizer from deleting a benchmarked computation.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Bundles benchmark functions into a named group runner.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $(
                $target(&mut criterion);
            )+
        }
    };
}

/// Generates `main` running each benchmark group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $(
                $group();
            )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_id_renders_name_slash_param() {
        assert_eq!(BenchmarkId::new("fit", 4).into_id_string(), "fit/4");
    }

    #[test]
    fn bencher_records_requested_samples() {
        let mut b = Bencher { samples: 5, times_ns: Vec::new() };
        let mut count = 0u64;
        b.iter(|| {
            count += 1;
            count
        });
        assert_eq!(b.times_ns.len(), 5);
        // warmup + 5 samples
        assert_eq!(count, 6);
    }

    #[test]
    fn groups_run_and_finish() {
        let mut c = Criterion {
            test_mode: true,
            fast_mode: false,
            json_path: None,
            filter: None,
        };
        let mut ran = 0;
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(10);
            g.bench_function("one", |b| b.iter(|| ran += 1));
            g.bench_with_input(BenchmarkId::new("two", 7), &3usize, |b, &x| {
                b.iter(|| ran += x)
            });
            g.finish();
        }
        assert!(ran > 0);
    }

    #[test]
    fn ns_formatting_scales() {
        assert!(fmt_ns(500.0).ends_with("ns"));
        assert!(fmt_ns(5e4).ends_with("µs"));
        assert!(fmt_ns(5e7).ends_with("ms"));
        assert!(fmt_ns(5e9).ends_with('s'));
    }
}
