//! Offline stand-in for the `rand` crate.
//!
//! The build container has no network access to a crate registry, so the
//! workspace vendors the small, fully deterministic subset of `rand 0.8`
//! it actually uses: a seedable PRNG ([`rngs::StdRng`]) plus the [`Rng`]
//! convenience methods `gen`, `gen_range` and `gen_bool`.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — a different
//! stream than upstream `StdRng` (ChaCha12), but every consumer in this
//! workspace only relies on *seeded determinism*, never on a specific
//! stream, so the substitution preserves behaviour.

/// Low-level source of randomness.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that [`Rng::gen`] can produce.
pub trait StandardSample {
    /// Draws one value from `rng`.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    #[inline]
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    #[inline]
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for bool {
    #[inline]
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            #[inline]
            fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types with a uniform sampler over an interval (mirrors
/// `rand::distributions::uniform::SampleUniform`).
pub trait SampleUniform: Copy + PartialOrd {
    /// Draws uniformly from `[lo, hi)` (`inclusive = false`) or `[lo, hi]`
    /// (`inclusive = true`).
    fn sample_uniform<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool)
        -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_uniform<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: $t,
                hi: $t,
                inclusive: bool,
            ) -> $t {
                let span = (hi as i128 - lo as i128) as u128 + u128::from(inclusive);
                assert!(span > 0, "gen_range on empty range");
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_uniform<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: $t,
                hi: $t,
                inclusive: bool,
            ) -> $t {
                assert!(if inclusive { lo <= hi } else { lo < hi }, "gen_range on empty range");
                let unit = <$t as StandardSample>::standard_sample(rng);
                lo + (hi - lo) * unit
            }
        }
    )*};
}
impl_uniform_float!(f32, f64);

/// Ranges that [`Rng::gen_range`] accepts.
///
/// Blanket impls over [`SampleUniform`] (rather than per-type impls) so
/// type inference can tie the output type to the range's element type the
/// same way upstream rand does.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_uniform(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_uniform(rng, lo, hi, true)
    }
}

/// User-facing convenience methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a value of type `T` (uniform over the type's standard domain;
    /// `[0, 1)` for floats).
    #[inline]
    fn gen<T: StandardSample>(&mut self) -> T {
        T::standard_sample(self)
    }

    /// Draws a value uniformly from `range`.
    #[inline]
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability out of range");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard seeded PRNG (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn gen_f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..1000 {
            let a = rng.gen_range(3usize..10);
            assert!((3..10).contains(&a));
            let b = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&b));
            let c = rng.gen_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&c));
            let d = rng.gen_range(2u32..=2);
            assert_eq!(d, 2);
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(5);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
    }

    #[test]
    fn mean_of_unit_draws_is_centered() {
        let mut rng = StdRng::seed_from_u64(6);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
