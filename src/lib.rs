//! `lesm` facade: re-exports the whole Latent Entity Structure Mining
//! workspace so downstream users depend on one crate.
//!
//! See `README.md` for a tour and `examples/` for runnable entry points.
pub use lesm_core as core;
pub use lesm_corpus as corpus;
pub use lesm_eval as eval;
pub use lesm_hier as hier;
pub use lesm_linalg as linalg;
pub use lesm_net as net;
pub use lesm_phrases as phrases;
pub use lesm_relations as relations;
pub use lesm_roles as roles;
pub use lesm_strod as strod;
pub use lesm_topicmodel as topicmodel;
