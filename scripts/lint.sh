#!/usr/bin/env bash
# Audit the workspace against the determinism & robustness contract:
# the per-file token rules (DESIGN.md §11) plus the call-graph taint,
# unsafe, and wire-cast passes (DESIGN.md §16). Exit 0 clean, 1
# violations, 2 usage/I-O error. Pass extra args through, e.g.:
#   scripts/lint.sh crates/core/src/em.rs
#   scripts/lint.sh --passes taint,casts --workspace
#   scripts/lint.sh --format json --workspace
set -euo pipefail
cd "$(dirname "$0")/.."

if [ "$#" -eq 0 ]; then
    set -- --workspace
fi
exec cargo run --release -q -p lesm-lint -- --root "$PWD" "$@"
