#!/usr/bin/env bash
# Audit every governed workspace source against the determinism &
# robustness contract (DESIGN.md §11). Exit 0 clean, 1 violations,
# 2 usage/I-O error. Pass extra args through, e.g.:
#   scripts/lint.sh crates/core/src/em.rs
set -euo pipefail
cd "$(dirname "$0")/.."

if [ "$#" -eq 0 ]; then
    set -- --workspace
fi
exec cargo run --release -q -p lesm-lint -- --root "$PWD" "$@"
