#!/usr/bin/env bash
# Smoke-benchmark the parallel kernels and collect the timings as JSON.
#
# Runs the 1-vs-N-thread criterion variants (EM fit, whitened-tensor
# accumulation, power-method restarts) in fast mode and appends one JSON
# record per benchmark id to BENCH_par.json (or the path given as $1).
#
# Thread-count variants are bit-identical in output, so the only thing this
# measures is wall-clock scaling. Speedups require real cores: on a
# single-core machine the N-thread variants only add scheduling overhead.
set -euo pipefail
cd "$(dirname "$0")/.."

# Preflight: never burn bench time on a tree that violates the
# determinism contract — nondeterministic code makes cross-run bench
# comparisons meaningless. Runs the full pass set (token rules plus the
# call-graph taint / unsafe / wire-cast passes, DESIGN.md §11 + §16).
cargo run --release -q -p lesm-lint -- --root "$PWD" --workspace --passes all --timing

out="${1:-BENCH_par.json}"
em_out="${2:-BENCH_em_core.json}"
serve_out="${3:-BENCH_serve.json}"
strod_out="${4:-BENCH_strod.json}"
linalg_out="${5:-BENCH_linalg.json}"
replay_out="${6:-BENCH_replay.json}"
query_out="${7:-BENCH_query.json}"
update_out="${8:-BENCH_update.json}"
# cargo runs bench binaries from the package dir, so the JSON paths must be
# absolute for all records to land in one file.
case "$out" in /*) ;; *) out="$PWD/$out" ;; esac
case "$em_out" in /*) ;; *) em_out="$PWD/$em_out" ;; esac
case "$serve_out" in /*) ;; *) serve_out="$PWD/$serve_out" ;; esac
case "$strod_out" in /*) ;; *) strod_out="$PWD/$strod_out" ;; esac
case "$linalg_out" in /*) ;; *) linalg_out="$PWD/$linalg_out" ;; esac
case "$replay_out" in /*) ;; *) replay_out="$PWD/$replay_out" ;; esac
case "$query_out" in /*) ;; *) query_out="$PWD/$query_out" ;; esac
case "$update_out" in /*) ;; *) update_out="$PWD/$update_out" ;; esac
: > "$out"
export LESM_BENCH_FAST=1
export LESM_BENCH_JSON="$out"

cargo bench -p lesm-bench --bench bench_em -- fit_threads
cargo bench -p lesm-bench --bench bench_strod -- t3_accumulate
cargo bench -p lesm-bench --bench bench_strod -- power_threads

echo "wrote $(wc -l < "$out") bench records to $out"

# EM-core trajectory: the single-thread fit plus the shared-EdgeState
# k-sweep (the flat-arena rewrite's headline numbers). Full sampling, not
# fast mode: these medians are compared across PRs, and 3-sample medians
# are too fragile against host-level noise bursts.
: > "$em_out"
export LESM_BENCH_JSON="$em_out"
unset LESM_BENCH_FAST

cargo bench -p lesm-bench --bench bench_em -- fit_threads
cargo bench -p lesm-bench --bench bench_em -- fit_k

echo "wrote $(wc -l < "$em_out") bench records to $em_out"

# Serving-path numbers (DESIGN.md §9): cold snapshot-load time (format v1
# full-deserialize vs format v2 zero-copy map, at 50k documents) plus the
# cached-vs-uncached HTTP query latency medians through the in-process
# server. Full sampling for the same cross-PR comparability reason.
: > "$serve_out"
export LESM_BENCH_JSON="$serve_out"

cargo bench -p lesm-bench --bench bench_serve

echo "wrote $(wc -l < "$serve_out") bench records to $serve_out"

# Traffic replay (DESIGN.md §13): the deterministic endpoint mix against
# 1/2/4 local shards, p50/p99 per shard count, byte-identity asserted on
# every request. Full sampling; LESM_REPLAY_RATE scales the request count.
: > "$replay_out"
export LESM_BENCH_JSON="$replay_out"

cargo bench -p lesm-bench --bench bench_replay

echo "wrote $(wc -l < "$replay_out") bench records to $replay_out"

# Typed-query engine (DESIGN.md §14): the four program families
# (filter-only, 2-hop traverse, path enumeration, rank + cursor
# pagination) through `lesm_query::run_query` over the 50k-document
# replay model, byte-identity asserted on every iteration. Full sampling
# for cross-PR comparability.
: > "$query_out"
export LESM_BENCH_JSON="$query_out"

cargo bench -p lesm-bench --bench bench_query

echo "wrote $(wc -l < "$query_out") bench records to $query_out"

# Incremental mining (DESIGN.md §15): warm-started `lesm update` over a
# +1% document delta vs a cold full re-mine of the merged corpus, v2
# artifact byte-identity asserted on every iteration. Fast mode: the full
# re-mine baseline is deliberately expensive — that gap is the headline
# number (target: incremental >= 10x under the re-mine median).
: > "$update_out"
export LESM_BENCH_JSON="$update_out"
export LESM_BENCH_FAST=1

cargo bench -p lesm-bench --bench bench_update

echo "wrote $(wc -l < "$update_out") bench records to $update_out"
unset LESM_BENCH_FAST

# STROD trajectory: moment construction, the power method, and the
# end-to-end fit (the allocation-free kernel rewrite's numbers). Fast mode:
# the end-to-end fit over 3k documents is too slow for full sampling in a
# smoke pass.
: > "$strod_out"
export LESM_BENCH_JSON="$strod_out"
export LESM_BENCH_FAST=1

cargo bench -p lesm-bench --bench bench_strod

echo "wrote $(wc -l < "$strod_out") bench records to $strod_out"

# Dense-kernel trajectory: blocked matmul, transposed products, fused
# tmatvec, and the hoisted symmetric rank-one update vs its naive
# reference. Micro-kernels are cheap, so full sampling keeps the medians
# comparable across PRs.
: > "$linalg_out"
export LESM_BENCH_JSON="$linalg_out"
unset LESM_BENCH_FAST

cargo bench -p lesm-bench --bench bench_linalg

echo "wrote $(wc -l < "$linalg_out") bench records to $linalg_out"

# Informational regression tripwire: compare every fresh median against
# the committed baseline of the same file. Warns (never fails) on >20%
# regressions — see scripts/bench_check.sh.
for f in "$out" "$em_out" "$serve_out" "$strod_out" "$linalg_out" "$replay_out" "$query_out" "$update_out"; do
    scripts/bench_check.sh "$f"
done
