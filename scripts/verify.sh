#!/usr/bin/env bash
# The full tier-1 gate, in dependency order: compile, lint (clippy and
# the workspace's own lesm-lint auditor, DESIGN.md §11), then tests.
# Everything must pass for a change to land.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== build (release)"
cargo build --release

echo "== clippy (-D warnings)"
cargo clippy --workspace -- -D warnings

echo "== lesm-lint (--workspace, all passes)"
cargo run --release -q -p lesm-lint -- --root "$PWD" --workspace --timing

echo "== tests"
cargo test -q

echo "verify: all gates passed"
