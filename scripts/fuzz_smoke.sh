#!/usr/bin/env bash
# Smoke-run the adversarial-corpus harness (DESIGN.md §10).
#
# Builds the `lesm-fuzz` binary and drives a bounded batch of hostile
# (corpus shape × config mutation) cases through the full
# mine → export → snapshot → load → search chain, plus the non-finite
# snapshot, CLI-argument, TSV-loader, and hostile-query-program
# (lesm-query: malformed JSON, unknown steps, cyclic traversals,
# depth/limit extremes, invalid cursors) batteries. The binary prints a
# one-line JSON summary and exits non-zero if any case panics, emits a
# non-finite float, or produces unbalanced JSON — so this script is safe
# to gate on.
#
# Case count is env-driven: LESM_FUZZ_CASES (default 64) bounds the
# chain-case batch for quick smokes; the full deterministic matrix runs
# under `cargo test -p lesm-fuzz`.
set -euo pipefail
cd "$(dirname "$0")/.."

cases="${LESM_FUZZ_CASES:-64}"

cargo run --release -p lesm-fuzz --bin lesm-fuzz -- --cases "$cases"
