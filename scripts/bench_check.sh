#!/usr/bin/env bash
# Compare freshly measured benchmark medians against committed baselines.
#
# Usage: bench_check.sh <fresh.json> [baseline.json]
#
# <fresh.json> holds one JSON record per line, as written by the criterion
# stand-in: {"id":...,"samples":...,"mean_ns":...,"median_ns":...}.
# The baseline defaults to the committed (HEAD) version of the same file,
# so running bench_smoke.sh in a dirty tree compares the new numbers
# against the ones checked in by the previous PR.
#
# A benchmark whose median regressed by more than 20% prints a WARN line.
# The exit code is always 0: timings on shared hosts are too noisy to gate
# merges on, so this is an informational tripwire, not a hard gate.
set -euo pipefail

if [ $# -lt 1 ]; then
    echo "usage: $0 <fresh.json> [baseline.json]" >&2
    exit 2
fi
fresh="$1"
if [ ! -f "$fresh" ]; then
    echo "bench_check: no fresh results at $fresh" >&2
    exit 2
fi

cleanup=""
if [ $# -ge 2 ]; then
    baseline="$2"
    baseline_name="$baseline"
else
    # Default: the committed version of the same file.
    rel="$(basename "$fresh")"
    baseline="$(mktemp)"
    cleanup="$baseline"
    baseline_name="HEAD:$rel"
    if ! git -C "$(dirname "$0")/.." show "HEAD:$rel" > "$baseline" 2>/dev/null; then
        echo "bench_check: no committed baseline for $rel — skipping comparison"
        rm -f "$baseline"
        exit 0
    fi
fi

awk -v baseline_name="$baseline_name" '
    function get_id(line,    s) {
        if (match(line, /"id":"[^"]*"/)) { return substr(line, RSTART + 6, RLENGTH - 7) }
        return ""
    }
    function get_median(line) {
        if (match(line, /"median_ns":[0-9.]+/)) {
            return substr(line, RSTART + 12, RLENGTH - 12) + 0
        }
        return -1
    }
    NR == FNR { if (get_id($0) != "") { base[get_id($0)] = get_median($0) }; next }
    {
        id = get_id($0); med = get_median($0)
        if (id == "" || med < 0) { next }
        seen++
        if (id in base && base[id] > 0) {
            ratio = med / base[id]
            if (ratio > 1.20) {
                printf "WARN  %-44s median %.0f ns vs baseline %.0f ns (%.2fx)\n", id, med, base[id], ratio
                warned++
            } else {
                printf "ok    %-44s %.2fx vs baseline\n", id, ratio
            }
        } else {
            printf "new   %-44s %.0f ns (no baseline entry)\n", id, med
        }
    }
    END {
        if (warned > 0) {
            printf "bench_check: %d benchmark(s) regressed >20%% vs %s (informational)\n", warned, baseline_name
        } else if (seen > 0) {
            printf "bench_check: no >20%% regressions vs %s\n", baseline_name
        } else {
            print "bench_check: no parseable records in fresh results"
        }
    }
' "$baseline" "$fresh"

if [ -n "$cleanup" ]; then
    rm -f "$cleanup"
fi
exit 0
