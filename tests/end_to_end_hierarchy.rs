//! Integration: the full Chapter-3 pipeline through the `lesm` facade —
//! generate a DBLP-like corpus, mine a hierarchy, and check it against the
//! generator's ground truth.

use lesm::core::pipeline::{LatentStructureMiner, MinerConfig};
use lesm::corpus::synth::{PapersConfig, SyntheticPapers};
use lesm::eval::pmi::{hpmi_pair, CoOccurrenceStats};
use lesm::hier::em::{EmConfig, WeightMode};
use lesm::hier::hierarchy::{CathyConfig, ChildCount};

fn corpus() -> SyntheticPapers {
    let mut cfg = PapersConfig::dblp(1200, 77);
    cfg.hierarchy.branching = vec![2, 2];
    cfg.hierarchy.words_per_topic = 16;
    cfg.entity_specs[0].pool_per_node = 10;
    cfg.entity_specs[1].pool_per_node = 3;
    SyntheticPapers::generate(&cfg).expect("valid config")
}

fn miner_config() -> MinerConfig {
    MinerConfig {
        hierarchy: CathyConfig {
            children: ChildCount::Fixed(2),
            max_depth: 2,
            em: EmConfig {
                iters: 200,
                restarts: 5,
                seed: 5,
                background: true,
                weights: WeightMode::Learned,
                ..EmConfig::default()
            },
            min_links: 20,
            subnet_threshold: 0.5,
        },
        ..MinerConfig::default()
    }
}

#[test]
fn hierarchy_recovers_ground_truth_structure() {
    let papers = corpus();
    let mined = LatentStructureMiner::mine(&papers.corpus, &miner_config()).expect("pipeline");
    assert_eq!(mined.hierarchy.topics[0].children.len(), 2);
    // Every leaf topic's top words should be dominated by one ground-truth
    // leaf topic.
    let term_type = papers.corpus.entities.num_types();
    let mut matched_gt_leaves = std::collections::HashSet::new();
    for leaf in mined.hierarchy.leaves() {
        let top = mined.hierarchy.top_nodes(leaf, term_type, 8);
        let mut votes: std::collections::HashMap<usize, usize> = std::collections::HashMap::new();
        for &(w, _) in &top {
            if let Some(t) = papers.truth.word_topic(w) {
                if papers.truth.hierarchy.nodes[t].children.is_empty() {
                    *votes.entry(t).or_insert(0) += 1;
                }
            }
        }
        if let Some((&gt_leaf, &c)) = votes.iter().max_by_key(|&(_, &c)| c) {
            let total: usize = votes.values().sum();
            assert!(c * 3 >= total * 2, "mined leaf mixes ground-truth leaves: {votes:?}");
            matched_gt_leaves.insert(gt_leaf);
        }
    }
    assert!(
        matched_gt_leaves.len() >= 3,
        "at least 3 of 4 ground-truth leaves recovered, got {matched_gt_leaves:?}"
    );
}

#[test]
fn mined_topics_beat_topk_on_hpmi() {
    let papers = corpus();
    let mined = LatentStructureMiner::mine(&papers.corpus, &miner_config()).expect("pipeline");
    let stats = CoOccurrenceStats::from_corpus(&papers.corpus);
    let term_type = papers.corpus.entities.num_types();
    // Term-Term HPMI of mined level-1 topics vs a global TopK pseudo-topic.
    let mut mined_score = 0.0;
    let l1 = &mined.hierarchy.topics[0].children;
    for &t in l1 {
        let items: Vec<(usize, u32)> = mined
            .hierarchy
            .top_nodes(t, term_type, 15)
            .into_iter()
            .map(|(w, _)| (term_type, w))
            .collect();
        mined_score += hpmi_pair(&stats, &items, &items);
    }
    mined_score /= l1.len() as f64;
    let tf = papers.corpus.term_freq();
    let mut by_freq: Vec<u32> = (0..tf.len() as u32).collect();
    by_freq.sort_by_key(|&w| std::cmp::Reverse(tf[w as usize]));
    let topk: Vec<(usize, u32)> = by_freq.into_iter().take(15).map(|w| (term_type, w)).collect();
    let topk_score = hpmi_pair(&stats, &topk, &topk);
    assert!(
        mined_score > topk_score,
        "mined topics ({mined_score:.3}) must beat TopK ({topk_score:.3})"
    );
}

#[test]
fn entity_rankings_follow_topic_assignment() {
    let papers = corpus();
    let mined = LatentStructureMiner::mine(&papers.corpus, &miner_config()).expect("pipeline");
    // For each level-1 mined topic, its top venue should be a ground-truth
    // venue of the area its words belong to.
    let term_type = papers.corpus.entities.num_types();
    for &t in &mined.hierarchy.topics[0].children {
        let top_words = mined.hierarchy.top_nodes(t, term_type, 10);
        let mut area_votes: std::collections::HashMap<usize, usize> = Default::default();
        for &(w, _) in &top_words {
            if let Some(owner) = papers.truth.word_topic(w) {
                let mut cur = owner;
                while papers.truth.hierarchy.nodes[cur].level > 1 {
                    cur = papers.truth.hierarchy.nodes[cur].parent.unwrap();
                }
                if papers.truth.hierarchy.nodes[cur].level == 1 {
                    *area_votes.entry(cur).or_insert(0) += 1;
                }
            }
        }
        let Some((&area, _)) = area_votes.iter().max_by_key(|&(_, &c)| c) else { continue };
        let area_path = &papers.truth.hierarchy.nodes[area].path;
        let top_venues = &mined.topic_entities[t][1];
        assert!(!top_venues.is_empty());
        let name = papers
            .corpus
            .entities
            .name(lesm::corpus::EntityRef::new(1, top_venues[0].0));
        assert!(
            name.contains(area_path.as_str()) || name.contains("shared"),
            "top venue {name} does not belong to area {area_path}"
        );
    }
}
