//! End-to-end determinism: every pipeline in the workspace is seeded, so
//! running twice must produce byte-identical output. This is the
//! reproducibility property Chapter 7 motivates (and the reason the
//! recorded `results/` files regenerate exactly).

use lesm::core::export::hierarchy_to_json;
use lesm::core::pipeline::{LatentStructureMiner, MinerConfig};
use lesm::corpus::synth::{GenealogyConfig, Genealogy, PapersConfig, SyntheticPapers};
use lesm::hier::em::{EmConfig, WeightMode};
use lesm::hier::hierarchy::{CathyConfig, ChildCount};
use lesm::phrases::topmine::{ToPMine, ToPMineConfig};
use lesm::relations::preprocess::{CandidateGraph, PreprocessConfig};
use lesm::relations::tpfg::{Tpfg, TpfgConfig};
use lesm::strod::{Strod, StrodConfig};
use lesm::topicmodel::phrase_lda::PhraseLdaConfig;

fn corpus() -> SyntheticPapers {
    let mut cfg = PapersConfig::dblp(500, 123);
    cfg.hierarchy.branching = vec![2];
    cfg.entity_specs[0].level = 1;
    cfg.entity_specs[0].pool_per_node = 5;
    cfg.entity_specs[1].pool_per_node = 2;
    SyntheticPapers::generate(&cfg).expect("valid config")
}

fn miner() -> MinerConfig {
    MinerConfig {
        hierarchy: CathyConfig {
            children: ChildCount::Fixed(2),
            max_depth: 1,
            em: EmConfig {
                iters: 80,
                restarts: 2,
                seed: 5,
                background: true,
                weights: WeightMode::Learned,
                ..EmConfig::default()
            },
            min_links: 10,
            subnet_threshold: 0.5,
        },
        phrase_min_support: 3,
        ..MinerConfig::default()
    }
}

#[test]
fn mining_pipeline_is_byte_deterministic() {
    let papers_a = corpus();
    let papers_b = corpus();
    // Generator determinism first.
    assert_eq!(papers_a.corpus.docs[17].tokens, papers_b.corpus.docs[17].tokens);
    let a = LatentStructureMiner::mine(&papers_a.corpus, &miner()).unwrap();
    let b = LatentStructureMiner::mine(&papers_b.corpus, &miner()).unwrap();
    let json_a = hierarchy_to_json(&papers_a.corpus, &a, 10);
    let json_b = hierarchy_to_json(&papers_b.corpus, &b, 10);
    assert_eq!(json_a, json_b, "full pipeline output must be byte-identical");
}

#[test]
fn topmine_is_deterministic() {
    let papers = corpus();
    let docs: Vec<Vec<u32>> = papers.corpus.docs.iter().map(|d| d.tokens.clone()).collect();
    let cfg = ToPMineConfig {
        min_support: 3,
        max_len: 4,
        seg_alpha: 2.0,
        lda: PhraseLdaConfig { k: 2, iters: 40, seed: 9, ..Default::default() },
        omega: 0.3,
        top_n: 15,
        ..Default::default()
    };
    let a = ToPMine::run(&docs, papers.corpus.num_words(), &cfg).unwrap();
    let b = ToPMine::run(&docs, papers.corpus.num_words(), &cfg).unwrap();
    for (ta, tb) in a.topical_phrases.iter().zip(&b.topical_phrases) {
        let pa: Vec<&Vec<u32>> = ta.iter().map(|p| &p.tokens).collect();
        let pb: Vec<&Vec<u32>> = tb.iter().map(|p| &p.tokens).collect();
        assert_eq!(pa, pb);
    }
}

#[test]
fn tpfg_is_deterministic() {
    let gen_a = Genealogy::generate(&GenealogyConfig {
        n_authors: 100,
        seed: 77,
        ..GenealogyConfig::default()
    })
    .unwrap();
    let gen_b = Genealogy::generate(&GenealogyConfig {
        n_authors: 100,
        seed: 77,
        ..GenealogyConfig::default()
    })
    .unwrap();
    assert_eq!(gen_a.papers, gen_b.papers);
    let run = |gen: &Genealogy| {
        let g = CandidateGraph::build(&gen.papers, gen.n_authors, &PreprocessConfig::default())
            .unwrap();
        Tpfg::infer(&g, &TpfgConfig::default()).unwrap().predict(1, 0.3)
    };
    assert_eq!(run(&gen_a), run(&gen_b));
}

#[test]
fn strod_is_deterministic() {
    let papers = corpus();
    let docs: Vec<Vec<u32>> = papers.corpus.docs.iter().map(|d| d.tokens.clone()).collect();
    let cfg = StrodConfig { k: 2, alpha0: Some(0.5), ..Default::default() };
    let a = Strod::fit(&docs, papers.corpus.num_words(), &cfg).unwrap();
    let b = Strod::fit(&docs, papers.corpus.num_words(), &cfg).unwrap();
    assert_eq!(a.topic_word, b.topic_word);
    assert_eq!(a.alpha, b.alpha);
}
