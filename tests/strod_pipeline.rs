//! Integration: Chapter-7 STROD through the facade — robustness vs Gibbs
//! LDA and the recursive topic tree.

use lesm::corpus::synth::{LabeledConfig, LabeledCorpus};
use lesm::strod::{Strod, StrodConfig, StrodTree, StrodTreeConfig};
use lesm::topicmodel::lda::{Lda, LdaConfig};

fn labeled(n: usize) -> LabeledCorpus {
    LabeledCorpus::generate(&LabeledConfig { n_categories: 4, n_docs: n, seed: 51 })
        .expect("valid config")
}

fn topic_set_distance(a: &[Vec<f64>], b: &[Vec<f64>]) -> f64 {
    let k = a.len();
    let mut used = vec![false; k];
    let mut total = 0.0;
    for ta in a {
        let mut best = f64::INFINITY;
        let mut bj = 0;
        for (j, tb) in b.iter().enumerate() {
            if used[j] {
                continue;
            }
            let d: f64 = ta.iter().zip(tb).map(|(x, y)| (x - y).abs()).sum();
            if d < best {
                best = d;
                bj = j;
            }
        }
        used[bj] = true;
        total += best;
    }
    total / k as f64
}

#[test]
fn strod_is_more_seed_robust_than_gibbs() {
    let lc = labeled(3000);
    let docs: Vec<Vec<u32>> = lc.corpus.docs.iter().map(|d| d.tokens.clone()).collect();
    let v = lc.corpus.num_words();
    let strod_runs: Vec<Vec<Vec<f64>>> = [1u64, 2]
        .iter()
        .map(|&s| {
            let mut cfg = StrodConfig { k: 4, alpha0: Some(0.5), ..Default::default() };
            cfg.seed = s;
            cfg.power.seed = s * 17;
            Strod::fit(&docs, v, &cfg).expect("fit").topic_word
        })
        .collect();
    let gibbs_runs: Vec<Vec<Vec<f64>>> = [1u64, 2]
        .iter()
        .map(|&s| {
            Lda::fit(&docs, v, &LdaConfig { k: 4, iters: 120, seed: s, ..Default::default() })
                .topic_word
        })
        .collect();
    let strod_drift = topic_set_distance(&strod_runs[0], &strod_runs[1]);
    let gibbs_drift = topic_set_distance(&gibbs_runs[0], &gibbs_runs[1]);
    assert!(
        strod_drift < gibbs_drift,
        "STROD drift {strod_drift:.4} should be below Gibbs drift {gibbs_drift:.4}"
    );
    assert!(strod_drift < 0.05, "STROD should be nearly seed-invariant: {strod_drift:.4}");
}

#[test]
fn strod_topics_align_with_categories() {
    let lc = labeled(3000);
    let docs: Vec<Vec<u32>> = lc.corpus.docs.iter().map(|d| d.tokens.clone()).collect();
    let m = Strod::fit(
        &docs,
        lc.corpus.num_words(),
        &StrodConfig { k: 4, alpha0: Some(0.5), ..Default::default() },
    )
    .expect("fit");
    // Each recovered topic's top words should be dominated by one
    // ground-truth category.
    let mut matched = std::collections::HashSet::new();
    for t in 0..4 {
        let top = m.top_words(t, 10);
        let mut votes: std::collections::HashMap<usize, usize> = Default::default();
        for &(w, _) in &top {
            if let Some(owner) = lc.truth.word_topic(w) {
                *votes.entry(owner).or_insert(0) += 1;
            }
        }
        if let Some((&gt, &c)) = votes.iter().max_by_key(|&(_, &c)| c) {
            let total: usize = votes.values().sum();
            if c * 3 >= total * 2 {
                matched.insert(gt);
            }
        }
    }
    assert!(matched.len() >= 3, "recovered topics too mixed: {matched:?}");
}

#[test]
fn tree_construction_produces_nested_topics() {
    let lc = labeled(2500);
    let docs: Vec<Vec<u32>> = lc.corpus.docs.iter().map(|d| d.tokens.clone()).collect();
    let tree = StrodTree::construct(
        &docs,
        lc.corpus.num_words(),
        &StrodTreeConfig {
            branching: vec![2, 2],
            strod: StrodConfig { alpha0: Some(0.5), ..Default::default() },
            min_doc_weight: 50.0,
        },
    )
    .expect("tree");
    assert!(tree.len() >= 3);
    assert_eq!(tree.nodes[0].children.len(), 2);
    // Child weights never exceed parent's.
    for t in 1..tree.len() {
        let p = tree.nodes[t].parent.unwrap();
        for d in 0..docs.len() {
            assert!(tree.nodes[t].doc_weights[d] <= tree.nodes[p].doc_weights[d] + 1e-9);
        }
    }
}
