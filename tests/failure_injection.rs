//! Failure injection: degenerate, adversarial and boundary inputs must
//! produce errors or graceful no-ops — never panics or NaN-poisoned
//! output.

use lesm::core::pipeline::{LatentStructureMiner, MinerConfig};
use lesm::corpus::synth::{GenealogyConfig, Genealogy, GenPaper};
use lesm::corpus::{load_tsv, Corpus, LoadOptions};
use lesm::hier::em::{CathyHinEm, EmConfig, WeightMode};
use lesm::net::{co_occurrence_network, collapsed_network, NetworkBuilder};
use lesm::phrases::topmine::{FrequentPhrases, Segmenter, SegmenterConfig};
use lesm::relations::preprocess::{CandidateGraph, PreprocessConfig};
use lesm::strod::{Strod, StrodConfig};
use lesm::topicmodel::lda::{Lda, LdaConfig};

#[test]
fn empty_corpus_degrades_to_a_trivial_hierarchy() {
    let corpus = Corpus::new();
    let net = collapsed_network(&corpus);
    assert_eq!(net.num_links(), 0);
    // The empty network is below every expansion threshold, so the miner
    // returns the bare root rather than panicking.
    let mined = LatentStructureMiner::mine(&corpus, &MinerConfig::default())
        .expect("empty corpus degrades gracefully");
    assert_eq!(mined.hierarchy.len(), 1);
    assert!(mined.topic_phrases[0].is_empty());
    assert!(mined.doc_topic.is_empty());
}

#[test]
fn single_word_corpus_is_degenerate_but_safe() {
    let mut corpus = Corpus::new();
    for _ in 0..10 {
        corpus.push_text("data data data");
    }
    // Only self-links exist; EM either fits or errors but never panics.
    let net = co_occurrence_network(&corpus);
    let cfg = EmConfig {
        k: 2,
        iters: 10,
        restarts: 1,
        seed: 1,
        background: false,
        weights: WeightMode::Equal,
        ..EmConfig::default()
    };
    if let Ok(fit) = CathyHinEm::fit(&net, &cfg) {
        for z in 0..2 {
            for &p in &fit.phi[0][z] {
                assert!(p.is_finite());
            }
        }
    }
}

#[test]
fn lda_with_more_topics_than_words_stays_finite() {
    let docs = vec![vec![0u32, 1], vec![1, 0], vec![0, 1]];
    let m = Lda::fit(&docs, 2, &LdaConfig { k: 10, iters: 10, ..Default::default() });
    for row in &m.topic_word {
        assert!(row.iter().all(|x| x.is_finite()));
        assert!((row.iter().sum::<f64>() - 1.0).abs() < 1e-8);
    }
}

#[test]
fn strod_rejects_rank_deficient_corpora() {
    // Every doc identical: M2 has rank ~1, k=3 must be refused.
    let docs: Vec<Vec<u32>> = (0..50).map(|_| vec![0u32, 1, 0, 1, 0, 1]).collect();
    let r = Strod::fit(&docs, 4, &StrodConfig { k: 3, alpha0: Some(1.0), ..Default::default() });
    assert!(r.is_err(), "rank-deficient moments must be detected");
}

#[test]
fn phrase_mining_handles_pathological_documents() {
    // Empty docs, single-token docs, and one enormous repetitive doc.
    let mut docs: Vec<Vec<u32>> = vec![vec![], vec![5], vec![]];
    docs.push((0..2000).map(|i| (i % 3) as u32).collect());
    let fp = FrequentPhrases::mine(&docs, 2, 5);
    let segs = Segmenter::segment(&docs, &fp, &SegmenterConfig { alpha: 2.0 });
    for (d, s) in docs.iter().zip(&segs) {
        let flat: Vec<u32> = s.iter().flatten().copied().collect();
        assert_eq!(&flat, d);
    }
}

#[test]
fn candidate_graph_rejects_out_of_range_authors() {
    let papers = vec![GenPaper { year: 2000, authors: vec![0, 99] }];
    let r = CandidateGraph::build(&papers, 2, &PreprocessConfig::default());
    assert!(r.is_err());
}

#[test]
fn genealogy_extreme_configs() {
    // 100% confounders and missing records still generate and stay acyclic.
    let g = Genealogy::generate(&GenealogyConfig {
        n_authors: 60,
        confounder_prob: 1.0,
        missing_prob: 1.0,
        ..GenealogyConfig::default()
    })
    .unwrap();
    assert!(g.is_acyclic());
    // With every advising record dropped, preprocessing may legitimately
    // find no candidates — that must surface as an error, not a panic.
    let _ = CandidateGraph::build(&g.papers, g.n_authors, &PreprocessConfig::default());
}

#[test]
fn malformed_tsv_lines_error_with_location() {
    let bad = "fine line\tauthor=a\t2001\nbroken\tnot-an-entity\t\n";
    let err = load_tsv(bad.as_bytes(), &LoadOptions::default()).unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("line 2"), "error should locate the bad line: {msg}");
}

#[test]
fn network_builder_is_total_for_valid_ids_and_validates_bad_ones() {
    let mut b = NetworkBuilder::new(vec!["a".into()], vec![3]);
    // Massive weights and self-links are fine.
    b.add(0, 0, 0, 0, 1e12);
    b.add(0, 1, 0, 2, f64::MIN_POSITIVE);
    let g = b.build();
    g.validate().unwrap();
    assert!(g.total_weight().is_finite());
}

#[test]
fn em_with_huge_k_does_not_blow_up() {
    let mut b = NetworkBuilder::new(vec!["t".into()], vec![4]);
    b.add(0, 0, 0, 1, 3.0);
    b.add(0, 2, 0, 3, 3.0);
    let net = b.build();
    let cfg = EmConfig {
        k: 50, // far more topics than structure
        iters: 10,
        restarts: 1,
        seed: 1,
        background: true,
        weights: WeightMode::Equal,
        ..EmConfig::default()
    };
    let fit = CathyHinEm::fit(&net, &cfg).unwrap();
    let s: f64 = fit.rho.iter().sum();
    assert!((s - 1.0).abs() < 1e-8);
    assert!(fit.rho.iter().all(|r| r.is_finite()));
}
