//! Integration: Chapter-4 phrase mining through the facade — ToPMine and
//! KERT on a labeled corpus, scored with the evaluation crate.

use lesm::corpus::synth::{LabeledConfig, LabeledCorpus};
use lesm::eval::mi::mutual_information_at_k;
use lesm::phrases::kert::{Kert, KertConfig, KertVariant};
use lesm::phrases::topmine::{ToPMine, ToPMineConfig};
use lesm::topicmodel::lda::{Lda, LdaConfig};
use lesm::topicmodel::phrase_lda::PhraseLdaConfig;

fn labeled() -> LabeledCorpus {
    LabeledCorpus::generate(&LabeledConfig { n_categories: 4, n_docs: 1500, seed: 31 })
        .expect("valid config")
}

#[test]
fn topmine_topics_predict_labels() {
    let lc = labeled();
    let docs: Vec<Vec<u32>> = lc.corpus.docs.iter().map(|d| d.tokens.clone()).collect();
    let labels: Vec<u32> = lc.corpus.docs.iter().map(|d| d.label.unwrap()).collect();
    let res = ToPMine::run(
        &docs,
        lc.corpus.num_words(),
        &ToPMineConfig {
            min_support: 5,
            max_len: 4,
            seg_alpha: 2.0,
            lda: PhraseLdaConfig { k: 4, iters: 120, seed: 3, ..Default::default() },
            omega: 0.3,
            top_n: 40,
            ..Default::default()
        },
    )
    .expect("valid config");
    let topic_phrases: Vec<Vec<Vec<u32>>> = res
        .topical_phrases
        .iter()
        .map(|l| l.iter().map(|p| p.tokens.clone()).collect())
        .collect();
    let mi = mutual_information_at_k(&docs, &labels, 4, &topic_phrases);
    // 2 bits would be a perfect 4-way alignment; random topics give ~0.
    assert!(mi > 0.6, "ToPMine topics should carry label information, MI = {mi:.3}");
}

#[test]
fn kert_full_beats_purity_only_on_mi() {
    let lc = labeled();
    let docs: Vec<Vec<u32>> = lc.corpus.docs.iter().map(|d| d.tokens.clone()).collect();
    let labels: Vec<u32> = lc.corpus.docs.iter().map(|d| d.label.unwrap()).collect();
    let lda = Lda::fit(
        &docs,
        lc.corpus.num_words(),
        &LdaConfig { k: 4, iters: 120, seed: 5, ..Default::default() },
    );
    let base = KertConfig { min_support: 5, max_len: 3, top_n: 60, ..Default::default() };
    let patterns = Kert::mine(&docs, &lda.assignments, 4, &base).expect("valid config");
    let mi_of = |variant: KertVariant| -> f64 {
        let ranked = Kert::rank(&patterns, &KertConfig { variant, ..base.clone() });
        let phrases: Vec<Vec<Vec<u32>>> = ranked
            .iter()
            .map(|l| l.iter().take(60).map(|p| p.tokens.clone()).collect())
            .collect();
        mutual_information_at_k(&docs, &labels, 4, &phrases)
    };
    let full = mi_of(KertVariant::PopularityPurity);
    let pur = mi_of(KertVariant::PurityOnly);
    assert!(full > pur, "pop+pur ({full:.3}) must beat purity-only ({pur:.3})");
}

#[test]
fn segmentation_phrases_are_mostly_single_topic() {
    let lc = labeled();
    let docs: Vec<Vec<u32>> = lc.corpus.docs.iter().map(|d| d.tokens.clone()).collect();
    let res = ToPMine::run(
        &docs,
        lc.corpus.num_words(),
        &ToPMineConfig {
            min_support: 5,
            max_len: 4,
            seg_alpha: 2.0,
            lda: PhraseLdaConfig { k: 4, iters: 40, seed: 3, ..Default::default() },
            omega: 0.3,
            top_n: 40,
            ..Default::default()
        },
    )
    .expect("valid config");
    // Multi-word segments should rarely mix ground-truth topics (phrases
    // are emitted within one topic by the generator).
    let mut pure = 0usize;
    let mut total = 0usize;
    for doc in &res.segments {
        for seg in doc {
            if seg.len() < 2 {
                continue;
            }
            let owners: Vec<usize> =
                seg.iter().filter_map(|&w| lc.truth.word_topic(w)).collect();
            if owners.len() == seg.len() {
                total += 1;
                if owners.iter().all(|&o| o == owners[0]) {
                    pure += 1;
                }
            }
        }
    }
    assert!(total > 100, "enough multi-word segments to judge");
    let frac = pure as f64 / total as f64;
    assert!(frac > 0.9, "only {frac:.3} of segments are topic-pure");
}
