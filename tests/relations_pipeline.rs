//! Integration: Chapter-6 relation mining through the facade.

use lesm::corpus::synth::{Genealogy, GenealogyConfig};
use lesm::eval::relation::{pair_metrics, parent_accuracy};
use lesm::relations::baselines::{rule_predict, PairSvm, SvmConfig};
use lesm::relations::crf::{CrfConfig, HierCrf};
use lesm::relations::preprocess::{CandidateGraph, PreprocessConfig};
use lesm::relations::tpfg::{Tpfg, TpfgConfig};

fn setup() -> (Genealogy, CandidateGraph) {
    let gen = Genealogy::generate(&GenealogyConfig {
        n_authors: 300,
        seed: 41,
        ..GenealogyConfig::default()
    })
    .expect("valid config");
    let graph = CandidateGraph::build(&gen.papers, gen.n_authors, &PreprocessConfig::default())
        .expect("candidates");
    (gen, graph)
}

#[test]
fn tpfg_beats_the_crude_rule_baseline() {
    let (gen, graph) = setup();
    let tpfg = Tpfg::infer(&graph, &TpfgConfig::default()).expect("inference");
    let acc_tpfg = parent_accuracy(&tpfg.predict(1, 0.0), &gen.advisor);
    let acc_rule = parent_accuracy(&rule_predict(&graph), &gen.advisor);
    assert!(
        acc_tpfg > acc_rule,
        "TPFG ({acc_tpfg:.3}) should beat RULE ({acc_rule:.3})"
    );
    assert!(acc_tpfg > 0.75, "TPFG accuracy too low: {acc_tpfg:.3}");
}

#[test]
fn tpfg_precision_recall_tradeoff_via_theta() {
    let (gen, graph) = setup();
    let tpfg = Tpfg::infer(&graph, &TpfgConfig::default()).expect("inference");
    // Pair metrics at two thresholds.
    let metrics_at = |theta: f64| {
        let decisions: Vec<Vec<(u32, bool)>> = (0..graph.n_authors)
            .map(|i| {
                tpfg.ranking[i]
                    .iter()
                    .map(|&(a, p)| (a, p > theta && p > tpfg.root_prob[i]))
                    .collect()
            })
            .collect();
        pair_metrics(&decisions, &gen.advisor)
    };
    let loose = metrics_at(0.2);
    let strict = metrics_at(0.7);
    assert!(strict.precision() >= loose.precision() - 1e-9);
    assert!(loose.recall() >= strict.recall());
    assert!(loose.f1() > 0.6, "loose F1 = {:.3}", loose.f1());
}

#[test]
fn supervised_methods_train_and_predict() {
    let (gen, graph) = setup();
    let train: Vec<usize> = (0..gen.n_authors).filter(|i| i % 2 == 0).collect();
    let holdout: Vec<Option<u32>> = gen
        .advisor
        .iter()
        .enumerate()
        .map(|(i, a)| if i % 2 == 1 { *a } else { None })
        .collect();
    let svm = PairSvm::train(&graph, &gen.advisor, &train, &SvmConfig::default());
    let crf = HierCrf::train(&graph, &gen.advisor, &train, &CrfConfig::default())
        .expect("labels exist");
    let acc_svm = parent_accuracy(&svm.predict(&graph), &holdout);
    let acc_crf = parent_accuracy(&crf.infer(&graph).expect("inference").predict(1, 0.0), &holdout);
    assert!(acc_svm > 0.6, "SVM held-out accuracy {acc_svm:.3}");
    assert!(acc_crf > 0.6, "CRF held-out accuracy {acc_crf:.3}");
}

#[test]
fn missing_records_bound_every_method() {
    let (gen, graph) = setup();
    // Authors whose advising co-publications were dropped can never be
    // recovered: their true advisor is not even a candidate.
    for i in 0..gen.n_authors {
        if gen.missing[i] {
            if let Some(a) = gen.advisor[i] {
                assert!(
                    !graph.candidates[i].iter().any(|c| c.advisor == a),
                    "dropped pair should not surface as a candidate"
                );
            }
        }
    }
}
