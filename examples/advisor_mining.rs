//! Mine advisor–advisee relations from a temporal collaboration network
//! with TPFG (the Chapter 6 workflow), and compare against the simple
//! baselines.
//!
//! ```sh
//! cargo run --release --example advisor_mining
//! ```

use lesm::corpus::synth::{Genealogy, GenealogyConfig};
use lesm::eval::relation::parent_accuracy;
use lesm::relations::baselines::{indmax_predict, rule_predict};
use lesm::relations::preprocess::{CandidateGraph, PreprocessConfig};
use lesm::relations::tpfg::{Tpfg, TpfgConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A synthetic academic genealogy: papers with author lists and years,
    // plus hidden ground-truth advisor edges.
    let gen = Genealogy::generate(&GenealogyConfig {
        n_authors: 400,
        seed: 11,
        ..GenealogyConfig::default()
    })?;
    println!(
        "{} authors, {} papers, {} true advisor edges",
        gen.n_authors,
        gen.papers.len(),
        gen.num_relations()
    );

    // Stage 1: project to a coauthor network, compute the Kulczynski and
    // imbalance-ratio time series, filter with rules R1-R4.
    let graph = CandidateGraph::build(&gen.papers, gen.n_authors, &PreprocessConfig::default())?;
    println!("candidate DAG: {} edges (acyclic: {})", graph.num_edges(), graph.is_dag());

    // Stage 2: TPFG message passing.
    let result = Tpfg::infer(&graph, &TpfgConfig::default())?;
    println!("inference converged in {} sweeps", result.sweeps);

    // Evaluate against ground truth.
    println!("\naccuracy:");
    println!("  RULE   {:.3}", parent_accuracy(&rule_predict(&graph), &gen.advisor));
    println!("  IndMAX {:.3}", parent_accuracy(&indmax_predict(&graph), &gen.advisor));
    println!("  TPFG   {:.3}", parent_accuracy(&result.predict(1, 0.0), &gen.advisor));

    // Inspect one author's ranked advisors.
    if let Some(i) = (0..gen.n_authors).find(|&i| result.ranking[i].len() >= 2) {
        println!("\nauthor {} candidates (truth: {:?}):", i, gen.advisor[i]);
        for &(adv, p) in result.ranking[i].iter().take(3) {
            println!("  advisor {adv}: r = {p:.3}");
        }
        println!("  virtual root: r = {:.3}", result.root_prob[i]);
    }
    Ok(())
}
