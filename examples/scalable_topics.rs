//! Scalable and robust topic discovery with STROD (Chapter 7): recover an
//! LDA topic tree by moment-based tensor decomposition, without Gibbs
//! sampling, and verify seed-robustness.
//!
//! ```sh
//! cargo run --release --example scalable_topics
//! ```

use lesm::corpus::synth::{LabeledConfig, LabeledCorpus};
use lesm::strod::{Strod, StrodConfig, StrodTree, StrodTreeConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let lc = LabeledCorpus::generate(&LabeledConfig { n_categories: 4, n_docs: 4000, seed: 13 })?;
    let docs: Vec<Vec<u32>> = lc.corpus.docs.iter().map(|d| d.tokens.clone()).collect();
    let v = lc.corpus.num_words();

    // Flat STROD: whiten the second moment, run the tensor power method.
    let model = Strod::fit(&docs, v, &StrodConfig { k: 4, alpha0: Some(0.5), ..Default::default() })?;
    println!("recovered {} topics (tensor residual {:.4}):", model.k, model.residual);
    for t in 0..model.k {
        let words: Vec<String> = model
            .top_words(t, 6)
            .into_iter()
            .map(|(w, _)| lc.corpus.vocab.name_or_unk(w).to_string())
            .collect();
        println!("  topic {t} (alpha {:.3}): {}", model.alpha[t], words.join(", "));
    }

    // Robustness: a second run with different seeds recovers the same topics.
    let mut cfg2 = StrodConfig { k: 4, alpha0: Some(0.5), ..Default::default() };
    cfg2.seed = 777;
    cfg2.power.seed = 999;
    let again = Strod::fit(&docs, v, &cfg2)?;
    let drift: f64 = model.topic_word[0]
        .iter()
        .zip(&again.topic_word[0])
        .map(|(a, b)| (a - b).abs())
        .sum();
    println!("\nseed-robustness: L1 drift of topic 0 across seeds = {drift:.5}");

    // Recursive topic tree.
    let tree = StrodTree::construct(
        &docs,
        v,
        &StrodTreeConfig {
            branching: vec![2, 2],
            strod: StrodConfig { alpha0: Some(0.5), ..Default::default() },
            min_doc_weight: 50.0,
        },
    )?;
    println!("\ntopic tree ({} nodes):", tree.len());
    for t in 0..tree.len() {
        let words: Vec<String> = tree
            .top_words(t, 4)
            .into_iter()
            .map(|(w, _)| lc.corpus.vocab.name_or_unk(w).to_string())
            .collect();
        println!("  {}: {}", tree.nodes[t].path, words.join(", "));
    }
    Ok(())
}
