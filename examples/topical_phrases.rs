//! Mine topical phrases with ToPMine (Chapter 4): frequent contiguous
//! phrase mining, significance-guided segmentation, PhraseLDA, and
//! topical phrase ranking.
//!
//! ```sh
//! cargo run --release --example topical_phrases
//! ```

use lesm::corpus::synth::{LabeledConfig, LabeledCorpus};
use lesm::phrases::topmine::{ToPMine, ToPMineConfig};
use lesm::topicmodel::phrase_lda::PhraseLdaConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A labeled corpus (3 categories) stands in for the paper's titles.
    let lc = LabeledCorpus::generate(&LabeledConfig { n_categories: 3, n_docs: 2000, seed: 5 })?;
    let docs: Vec<Vec<u32>> = lc.corpus.docs.iter().map(|d| d.tokens.clone()).collect();

    let result = ToPMine::run(
        &docs,
        lc.corpus.num_words(),
        &ToPMineConfig {
            min_support: 5,
            max_len: 4,
            seg_alpha: 2.0,
            lda: PhraseLdaConfig { k: 3, iters: 150, seed: 9, ..Default::default() },
            omega: 0.3,
            top_n: 8,
            ..Default::default()
        },
    )?;

    println!("mined {} frequent phrases from {} docs", result.phrases.len(), docs.len());
    println!("\nexample segmentation:");
    println!("  raw : {}", lc.corpus.render_doc(0));
    let segs: Vec<String> = result.segments[0]
        .iter()
        .map(|s| format!("[{}]", lc.corpus.vocab.render(s)))
        .collect();
    println!("  segs: {}", segs.join(" "));

    println!("\ntopical phrases:");
    for (t, list) in result.topical_phrases.iter().enumerate() {
        println!("topic {t} (weight {:.2}):", result.model.topic_weight[t]);
        for p in list {
            println!("  {:<30} freq {:.1}", lc.corpus.vocab.render(&p.tokens), p.topic_freq);
        }
    }
    Ok(())
}
