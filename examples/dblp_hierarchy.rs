//! Construct a multi-typed topical hierarchy from a DBLP-like corpus and
//! answer Type-A / Type-B role questions about its authors and venues
//! (the Chapter 3 + Chapter 5 workflow).
//!
//! ```sh
//! cargo run --release --example dblp_hierarchy
//! ```

use lesm::core::pipeline::{LatentStructureMiner, MinerConfig};
use lesm::corpus::synth::{PapersConfig, SyntheticPapers};
use lesm::corpus::EntityRef;
use lesm::hier::em::{EmConfig, WeightMode};
use lesm::hier::hierarchy::{CathyConfig, ChildCount};
use lesm::roles::type_a::{entity_phrase_rank, entity_subtopic_distribution};
use lesm::roles::type_b::erank_pop_pur;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 2-area, 4-subarea bibliography with authors and venues.
    let mut cfg = PapersConfig::dblp(1500, 99);
    cfg.hierarchy.branching = vec![2, 2];
    let papers = SyntheticPapers::generate(&cfg)?;
    let corpus = &papers.corpus;

    let miner = MinerConfig {
        hierarchy: CathyConfig {
            children: ChildCount::PerLevel(vec![2, 2]),
            max_depth: 2,
            em: EmConfig {
                iters: 250,
                restarts: 6,
                seed: 3,
                background: true,
                weights: WeightMode::Learned,
                ..EmConfig::default()
            },
            min_links: 20,
            subnet_threshold: 0.5,
        },
        ..MinerConfig::default()
    };
    let mined = LatentStructureMiner::mine(corpus, &miner)?;

    println!("== the hierarchy ==");
    for t in 0..mined.hierarchy.len() {
        println!("{}", mined.render_topic(corpus, t, 4));
    }

    // Type-B: who are the champions of each leaf topic?
    let leaves = mined.hierarchy.leaves();
    let doc_leaf: Vec<Vec<f64>> = (0..corpus.num_docs())
        .map(|d| leaves.iter().map(|&t| mined.doc_topic[d][t]).collect())
        .collect();
    let n_authors = corpus.entities.count(0);
    let mut freq = vec![vec![0.0f64; n_authors]; leaves.len()];
    for id in 0..n_authors as u32 {
        let dist = entity_subtopic_distribution(corpus, &doc_leaf, EntityRef::new(0, id));
        for (z, &f) in dist.iter().enumerate() {
            freq[z][id as usize] = f;
        }
    }
    println!("\n== Type-B: top authors per leaf (popularity x purity) ==");
    for (z, &leaf) in leaves.iter().enumerate() {
        let names: Vec<String> = erank_pop_pur(&freq, z, 3)
            .into_iter()
            .map(|(e, _)| corpus.entities.name(EntityRef::new(0, e)).to_string())
            .collect();
        println!("{}: {}", mined.hierarchy.topics[leaf].path, names.join(", "));
    }

    // Type-A: what does the top author of leaf 0 actually work on?
    if let Some(&(star, _)) = erank_pop_pur(&freq, 0, 1).first() {
        let entity = EntityRef::new(0, star);
        let t = leaves[0];
        let w: Vec<f64> = (0..corpus.num_docs()).map(|d| mined.doc_topic[d][t]).collect();
        let phrases = entity_phrase_rank(corpus, &mined.segments, &w, entity);
        println!(
            "\n== Type-A: {}'s phrases in {} ==",
            corpus.entities.name(entity),
            mined.hierarchy.topics[t].path
        );
        for (p, score) in phrases.iter().take(5) {
            println!("  {:<30} ({score:.4})", corpus.vocab.render(p));
        }
    }
    Ok(())
}
