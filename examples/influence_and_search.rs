//! The Chapter-8 applications: topical influence analysis (opinion
//! leaders per community, §8.1.1) and relevance targeting (topic-aware
//! search, §8.1.2) on top of a mined hierarchy.
//!
//! ```sh
//! cargo run --release --example influence_and_search
//! ```

use lesm::core::pipeline::{LatentStructureMiner, MinerConfig};
use lesm::core::search::search;
use lesm::corpus::synth::{PapersConfig, SyntheticPapers};
use lesm::corpus::EntityRef;
use lesm::hier::em::{EmConfig, WeightMode};
use lesm::hier::hierarchy::{CathyConfig, ChildCount};
use lesm::roles::influence::{topical_influence, InfluenceConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut cfg = PapersConfig::dblp(1200, 77);
    cfg.hierarchy.branching = vec![2, 2];
    let papers = SyntheticPapers::generate(&cfg)?;
    let corpus = &papers.corpus;
    let mined = LatentStructureMiner::mine(
        corpus,
        &MinerConfig {
            hierarchy: CathyConfig {
                children: ChildCount::PerLevel(vec![2, 2]),
                max_depth: 2,
                em: EmConfig {
                    iters: 200,
                    restarts: 5,
                    seed: 3,
                    background: true,
                    weights: WeightMode::Learned,
                    ..EmConfig::default()
                },
                min_links: 20,
                subnet_threshold: 0.5,
            },
            ..MinerConfig::default()
        },
    )?;

    // Opinion leaders per level-1 community: same network, different
    // leaders once conditioned on the topic.
    println!("== topical influence (top-3 authors per community) ==");
    for &t in &mined.hierarchy.topics[0].children {
        let w: Vec<f64> = (0..corpus.num_docs()).map(|d| mined.doc_topic[d][t]).collect();
        let leaders = topical_influence(corpus, &w, 0, &InfluenceConfig::default());
        let names: Vec<String> = leaders
            .iter()
            .take(3)
            .map(|&(id, s)| format!("{} ({s:.3})", corpus.entities.name(EntityRef::new(0, id))))
            .collect();
        println!("{}: {}", mined.hierarchy.topics[t].path, names.join(", "));
    }

    // Relevance targeting: query with a topical word; hits come back
    // ranked by literal overlap plus topical affinity.
    let leaf = papers.truth.hierarchy.leaves[0];
    let query = corpus.vocab.name_or_unk(papers.truth.hierarchy.own_words[leaf][0]).to_string();
    println!("\n== search: \"{query}\" ==");
    for hit in search(corpus, &mined, &query, 5) {
        println!(
            "doc {:>4} (score {:.3}, topic {}): {}",
            hit.doc,
            hit.score,
            mined.hierarchy.topics[hit.topic].path,
            corpus.render_doc(hit.doc)
        );
    }
    Ok(())
}
