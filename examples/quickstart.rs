//! Quickstart: mine a phrase-represented, entity-enriched topical
//! hierarchy from a small corpus with hand-written documents.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use lesm::core::pipeline::{LatentStructureMiner, MinerConfig};
use lesm::corpus::Corpus;
use lesm::hier::em::{EmConfig, WeightMode};
use lesm::hier::hierarchy::{CathyConfig, ChildCount};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Build a corpus: short "paper titles" with author and venue links.
    //    (Real usage would load your own data; the synthetic generators in
    //    `lesm::corpus::synth` produce larger corpora with ground truth.)
    let mut corpus = Corpus::new();
    let author = corpus.entities.add_type("author");
    let venue = corpus.entities.add_type("venue");
    let db_titles = [
        "query processing in relational database systems",
        "query optimization for distributed database systems",
        "concurrency control in database transaction processing",
        "efficient query processing with learned indexes",
        "transaction concurrency control protocols",
        "query optimization using cost models",
    ];
    let ir_titles = [
        "ranking models for web search engines",
        "relevance feedback in information retrieval",
        "web search ranking with click models",
        "information retrieval evaluation measures",
        "learning to rank for web search",
        "query expansion for information retrieval",
    ];
    for (i, t) in db_titles.iter().enumerate() {
        let d = corpus.push_text(t);
        corpus.link_entity(d, author, if i % 2 == 0 { "alice" } else { "adam" })?;
        corpus.link_entity(d, venue, "SIGMOD-like")?;
    }
    for (i, t) in ir_titles.iter().enumerate() {
        let d = corpus.push_text(t);
        corpus.link_entity(d, author, if i % 2 == 0 { "bob" } else { "bella" })?;
        corpus.link_entity(d, venue, "SIGIR-like")?;
    }

    // 2. Configure the miner: a one-level split into 2 topics, small
    //    thresholds because the corpus is tiny.
    let config = MinerConfig {
        hierarchy: CathyConfig {
            children: ChildCount::Fixed(2),
            max_depth: 1,
            em: EmConfig {
                k: 2,
                iters: 200,
                restarts: 5,
                seed: 7,
                background: true,
                weights: WeightMode::Learned,
                ..EmConfig::default()
            },
            min_links: 5,
            subnet_threshold: 0.2,
        },
        phrase_min_support: 2,
        phrase_max_len: 3,
        min_topic_freq: 0.5,
        ..MinerConfig::default()
    };

    // 3. Mine and inspect.
    let mined = LatentStructureMiner::mine(&corpus, &config)?;
    println!("mined {} topics:", mined.hierarchy.len());
    for t in 1..mined.hierarchy.len() {
        println!("  {}", mined.render_topic(&corpus, t, 4));
    }

    // 4. Where does each document land?
    for d in [0usize, 6] {
        println!(
            "doc \"{}\" -> topic {}",
            corpus.render_doc(d),
            mined.hierarchy.topics[mined.doc_leaf(d)].path
        );
    }
    Ok(())
}
